"""Davey-MacKay watermark codes (ref [13]).

Reliable communication over insertion-deletion channels *without
feedback*: the transmitted stream is a pseudorandom **watermark**
``w`` XORed with a **sparse** encoding ``s`` of the payload, so the
receiver — who knows ``w`` — can track the channel drift statistically
(the received stream mostly agrees with the watermark) and recover the
sparse bits from the drift decoder's posteriors.

Pipeline::

    payload bits -> [outer convolutional code] -> coded bits
                -> [sparse mapping k bits -> ell bits, low density]
                -> XOR watermark -> channel
    received    -> drift forward-backward (priors = sparse density)
                -> sparse-block MAP -> coded-bit LLRs
                -> Viterbi -> payload estimate

This demonstrates the paper's Section 4.1 remark: such schemes work,
but their rates sit far below the feedback capacity of Theorem 5 —
quantified in experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..numerics import safe_log
from .convolutional import ConvolutionalCode
from .forward_backward import DriftChannelModel

__all__ = ["SparseCodebook", "WatermarkCode", "WatermarkDecodeResult"]


def _lowest_weight_words(length: int, count: int) -> np.ndarray:
    """The *count* binary words of given *length* with smallest Hamming
    weight (ties broken by numeric value) — the sparse symbol set."""
    if count > (1 << length):
        raise ValueError("codebook larger than the space")
    codes = np.arange(1 << length, dtype=np.int64)
    bits = ((codes[:, None] >> np.arange(length)[None, :]) & 1).astype(np.int8)
    weights = bits.sum(axis=1)
    order = np.lexsort((codes, weights))
    chosen = codes[order[:count]]
    out = ((chosen[:, None] >> np.arange(length - 1, -1, -1)[None, :]) & 1).astype(
        np.int64
    )
    return out


@dataclass(frozen=True)
class SparseCodebook:
    """Maps ``bits_in``-bit symbols to low-weight ``bits_out``-bit words."""

    bits_in: int
    bits_out: int
    words: np.ndarray

    def __init__(self, bits_in: int = 3, bits_out: int = 7) -> None:
        if bits_in < 1 or bits_out < bits_in:
            raise ValueError("need bits_out >= bits_in >= 1")
        words = _lowest_weight_words(bits_out, 1 << bits_in)
        object.__setattr__(self, "bits_in", bits_in)
        object.__setattr__(self, "bits_out", bits_out)
        object.__setattr__(self, "words", words)

    @property
    def mean_density(self) -> float:
        """Average fraction of ones across the codebook — the sparse
        prior fed to the drift decoder."""
        return float(self.words.mean())

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Map a bit stream (padded with zeros to a symbol boundary)."""
        data = np.asarray(bits, dtype=np.int64)
        if data.ndim != 1:
            raise ValueError("bits must be 1-D")
        rem = (-data.size) % self.bits_in
        if rem:
            data = np.concatenate([data, np.zeros(rem, dtype=np.int64)])
        symbols = data.reshape(-1, self.bits_in)
        powers = 1 << np.arange(self.bits_in - 1, -1, -1)
        idx = symbols @ powers
        return self.words[idx].reshape(-1)

    def map_block_posteriors(self, post_one: np.ndarray) -> np.ndarray:
        """Per-symbol posteriors from per-position ``P(bit = 1)``.

        Treats positions as independent given the drift decoding (the
        standard Davey-MacKay approximation) and returns an array of
        shape ``(num_symbols, 2**bits_in)`` of normalized symbol
        probabilities.
        """
        p = np.asarray(post_one, dtype=float)
        if p.size % self.bits_out != 0:
            raise ValueError("posterior length not a multiple of bits_out")
        blocks = np.clip(p.reshape(-1, self.bits_out), 0.0, 1.0)
        # log P(word) = sum over positions of log(p if bit else 1-p)
        eps = 1e-12
        logp = safe_log(blocks, floor=eps)
        log1m = safe_log(1 - blocks, floor=eps)
        # (num_blocks, num_words): words shape (W, bits_out)
        scores = logp @ self.words.T + log1m @ (1 - self.words).T
        scores -= scores.max(axis=1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def symbol_bit_llrs(self, symbol_probs: np.ndarray) -> np.ndarray:
        """Convert symbol posteriors into per-input-bit LLRs
        (``log P(bit=0) - log P(bit=1)``), for the outer Viterbi."""
        w = self.bits_in
        num_symbols = symbol_probs.shape[0]
        idx = np.arange(1 << w)
        llrs = np.empty(num_symbols * w)
        eps = 1e-12
        for b in range(w):
            mask = ((idx >> (w - 1 - b)) & 1).astype(bool)
            p1 = symbol_probs[:, mask].sum(axis=1)
            p0 = symbol_probs[:, ~mask].sum(axis=1)
            llrs[b::w] = safe_log(p0, floor=eps) - safe_log(p1, floor=eps)
        return llrs


@dataclass(frozen=True)
class WatermarkDecodeResult:
    """Decoded payload plus diagnostics."""

    payload: np.ndarray
    bit_error_rate: Optional[float]
    drift_map: np.ndarray
    log_likelihood: float


class WatermarkCode:
    """Full Davey-MacKay-style transmitter/receiver pair.

    Parameters
    ----------
    payload_bits:
        Number of information bits per frame.
    codebook:
        Sparse mapping (default 3 -> 7, mean density ~0.12).
    outer:
        Outer convolutional code (default constraint length 5,
        rate 1/2 — short enough for quick frames).
    watermark_seed:
        Seed of the pseudorandom watermark shared by both parties.
    """

    def __init__(
        self,
        payload_bits: int,
        *,
        codebook: Optional[SparseCodebook] = None,
        outer: Optional[ConvolutionalCode] = None,
        watermark_seed: int = 2005,
    ) -> None:
        if payload_bits < 1:
            raise ValueError("payload_bits must be >= 1")
        self.payload_bits = payload_bits
        self.codebook = codebook or SparseCodebook(3, 7)
        self.outer = outer or ConvolutionalCode((0o23, 0o35))
        self.watermark_seed = watermark_seed
        coded_len = (payload_bits + self.outer.memory) * self.outer.rate_denominator
        rem = (-coded_len) % self.codebook.bits_in
        self._coded_padded = coded_len + rem
        self._num_symbols = self._coded_padded // self.codebook.bits_in
        self.frame_length = self._num_symbols * self.codebook.bits_out
        wm_rng = np.random.default_rng(watermark_seed)
        self.watermark = wm_rng.integers(0, 2, self.frame_length).astype(np.int64)

    @property
    def rate(self) -> float:
        """Information rate in bits per transmitted bit."""
        return self.payload_bits / self.frame_length

    # ------------------------------------------------------------------
    def encode(self, payload: np.ndarray) -> np.ndarray:
        """Payload bits -> transmitted frame."""
        data = np.asarray(payload, dtype=np.int64)
        if data.shape != (self.payload_bits,):
            raise ValueError(f"payload must have shape ({self.payload_bits},)")
        coded = self.outer.encode(data)
        sparse = self.codebook.encode(coded)
        if sparse.size != self.frame_length:
            raise AssertionError("frame length bookkeeping error")
        return sparse ^ self.watermark

    def decode(
        self,
        received: np.ndarray,
        channel: DriftChannelModel,
        *,
        true_payload: Optional[np.ndarray] = None,
    ) -> WatermarkDecodeResult:
        """Received stream -> payload estimate.

        The drift decoder's priors are ``P(transmitted = 1)``
        per position: ``watermark XOR sparse`` with sparse density
        ``f`` gives ``P = 1 - f`` where the watermark bit is 1 and
        ``f`` where it is 0.
        """
        f = self.codebook.mean_density
        priors = np.where(self.watermark == 1, 1.0 - f, f)
        result = channel.decode(received, priors)
        # Posterior that the *sparse* bit is 1 = posterior the
        # transmitted bit differs from the watermark.
        post_t1 = result.posteriors
        post_sparse1 = np.where(self.watermark == 1, 1.0 - post_t1, post_t1)
        symbol_probs = self.codebook.map_block_posteriors(post_sparse1)
        llrs = self.codebook.symbol_bit_llrs(symbol_probs)
        coded_llrs = llrs[: (self.payload_bits + self.outer.memory)
                          * self.outer.rate_denominator]
        payload = self.outer.viterbi_decode(coded_llrs, terminated=True)
        ber = None
        if true_payload is not None:
            truth = np.asarray(true_payload, dtype=np.int64)
            ber = float((payload != truth).mean())
        return WatermarkDecodeResult(
            payload=payload,
            bit_error_rate=ber,
            drift_map=result.drift_map,
            log_likelihood=result.log_likelihood,
        )

    # ------------------------------------------------------------------
    def simulate_frame(
        self,
        channel: DriftChannelModel,
        rng: np.random.Generator,
    ) -> WatermarkDecodeResult:
        """Random payload end-to-end through *channel*; returns the
        decode result with its measured bit error rate."""
        payload = rng.integers(0, 2, self.payload_bits)
        tx = self.encode(payload)
        ry, _events = channel.transmit(tx, rng)
        return self.decode(ry, channel, true_payload=payload)
