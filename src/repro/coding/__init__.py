"""Coding over deletion-insertion channels without feedback.

The paper's Section 4.1 references: Zigangirov sequential decoding
(ref [12]), Davey-MacKay watermark codes (ref [13]), marker codes, and
Varshamov-Tenengolts single-deletion codes — plus the supporting
machinery (convolutional codes, drift forward-backward, LDPC,
interleavers).
"""

from .alignment import AlignmentResult, MLAlignmentDecoder
from .convolutional import NASA_CC_GENERATORS, ConvolutionalCode
from .forward_backward import DriftChannelModel, DriftDecodeResult
from .identification import ChannelEstimate, estimate_channel_parameters
from .interleaver import BlockInterleaver, RandomInterleaver
from .iterative import IterativeDecodeResult, IterativeWatermarkCode
from .ldpc import LDPCCode, make_peg_parity_check, make_regular_parity_check
from .marker import MarkerCode, MarkerDecodeResult
from .stack_decoder import StackDecodeResult, StackDecoder
from .vt import VTCode, is_vt_codeword, vt_codewords, vt_syndrome
from .watermark import SparseCodebook, WatermarkCode, WatermarkDecodeResult

__all__ = [
    "AlignmentResult",
    "MLAlignmentDecoder",
    "NASA_CC_GENERATORS",
    "ConvolutionalCode",
    "DriftChannelModel",
    "DriftDecodeResult",
    "ChannelEstimate",
    "estimate_channel_parameters",
    "BlockInterleaver",
    "RandomInterleaver",
    "IterativeDecodeResult",
    "IterativeWatermarkCode",
    "LDPCCode",
    "make_peg_parity_check",
    "make_regular_parity_check",
    "MarkerCode",
    "MarkerDecodeResult",
    "StackDecodeResult",
    "StackDecoder",
    "VTCode",
    "is_vt_codeword",
    "vt_codewords",
    "vt_syndrome",
    "SparseCodebook",
    "WatermarkCode",
    "WatermarkDecodeResult",
]
