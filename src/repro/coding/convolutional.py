"""Binary convolutional codes with Viterbi decoding.

The outer-code workhorse for the no-feedback coding experiments (E8):
Zigangirov's 1969 construction protected a dropout/insertion channel
with a convolutional code, and Davey & MacKay's watermark scheme needs
an outer code over the effective substitution channel left behind by
the inner drift decoder. This implementation supports arbitrary
rate-1/n feed-forward generators, hard-decision and soft (LLR) branch
metrics, and terminated trellises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["ConvolutionalCode", "NASA_CC_GENERATORS"]

#: The classic constraint-length-7, rate-1/2 "Voyager" generators
#: (133, 171 octal), a convenient strong default.
NASA_CC_GENERATORS = (0o133, 0o171)


def _popcount_parity(x: np.ndarray) -> np.ndarray:
    """Elementwise parity of the set bits of *x* (int array)."""
    x = x.copy()
    parity = np.zeros_like(x)
    while np.any(x):
        parity ^= x & 1
        x >>= 1
    return parity


@dataclass(frozen=True)
class ConvolutionalCode:
    """A feed-forward binary convolutional code of rate ``1/n``.

    Parameters
    ----------
    generators:
        Generator polynomials as integers; bit ``k`` (LSB = current
        input) taps the shift register ``k`` steps back. The constraint
        length is the bit-length of the largest generator.
    """

    generators: Tuple[int, ...]

    def __init__(self, generators: Sequence[int] = NASA_CC_GENERATORS) -> None:
        gens = tuple(int(g) for g in generators)
        if not gens:
            raise ValueError("need at least one generator polynomial")
        if any(g <= 0 for g in gens):
            raise ValueError("generator polynomials must be positive")
        if max(g.bit_length() for g in gens) < 2:
            raise ValueError("constraint length must be at least 2")
        object.__setattr__(self, "generators", gens)

    # ------------------------------------------------------------------
    @property
    def constraint_length(self) -> int:
        return max(g.bit_length() for g in self.generators)

    @property
    def memory(self) -> int:
        return self.constraint_length - 1

    @property
    def num_states(self) -> int:
        return 1 << self.memory

    @property
    def rate_denominator(self) -> int:
        """Output bits per input bit (the ``n`` of rate ``1/n``)."""
        return len(self.generators)

    # ------------------------------------------------------------------
    def encode(self, bits: np.ndarray, *, terminate: bool = True) -> np.ndarray:
        """Encode *bits*, optionally appending ``memory`` flush zeros.

        Returns the interleaved output stream
        ``[g0(t0), g1(t0), ..., g0(t1), ...]``.
        """
        data = np.asarray(bits, dtype=np.int64)
        if data.ndim != 1:
            raise ValueError("bits must be 1-D")
        if data.size and not np.all((data == 0) | (data == 1)):
            raise ValueError("bits must be 0/1")
        if terminate:
            data = np.concatenate([data, np.zeros(self.memory, dtype=np.int64)])
        state = 0
        out = np.empty(data.size * self.rate_denominator, dtype=np.int64)
        k = 0
        for b in data:
            register = (int(b) << self.memory) | state
            for g in self.generators:
                out[k] = bin(register & g).count("1") & 1
                k += 1
            state = register >> 1
        return out

    # ------------------------------------------------------------------
    def _build_trellis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Next-state and output tables indexed by (state, input bit)."""
        states = np.arange(self.num_states)
        next_state = np.empty((self.num_states, 2), dtype=np.int64)
        outputs = np.empty(
            (self.num_states, 2, self.rate_denominator), dtype=np.int64
        )
        for b in (0, 1):
            register = (b << self.memory) | states
            next_state[:, b] = register >> 1
            for gi, g in enumerate(self.generators):
                outputs[:, b, gi] = _popcount_parity(register & g)
        return next_state, outputs

    def viterbi_decode(
        self,
        llrs: np.ndarray,
        *,
        terminated: bool = True,
    ) -> np.ndarray:
        """Maximum-likelihood sequence decoding from channel LLRs.

        Parameters
        ----------
        llrs:
            Per-coded-bit log-likelihood ratios
            ``log P(y | bit=0) - log P(y | bit=1)`` (so positive favors
            0). Hard decisions can be decoded by passing ``+1``/``-1``.
        terminated:
            If True the encoder appended flush zeros; the decoder forces
            the final state to 0 and strips the flush bits.

        Returns
        -------
        The decoded information bits.
        """
        metric_in = np.asarray(llrs, dtype=float)
        n = self.rate_denominator
        if metric_in.ndim != 1 or metric_in.size % n != 0:
            raise ValueError("llrs length must be a multiple of the rate denominator")
        steps = metric_in.size // n
        if terminated and steps < self.memory:
            raise ValueError("terminated stream shorter than the flush tail")
        next_state, outputs = self._build_trellis()

        # Branch metric: reward agreeing with the sign of the LLR.
        # Butterfly structure: state t at time k+1 has exactly two
        # predecessors s0 = 2*(t & half-1), s1 = s0 + 1, both via input
        # bit b_t = t >> (memory - 1) (the input bit is the new high
        # bit of the register, so it is determined by the target).
        num_states = self.num_states
        half = num_states >> 1
        t_idx = np.arange(num_states)
        b_t = t_idx >> (self.memory - 1)
        s0 = (t_idx & (half - 1)) << 1
        s1 = s0 + 1
        assert np.array_equal(next_state[s0, b_t], t_idx)  # structure check

        path = np.full(num_states, -np.inf)
        path[0] = 0.0
        prev_state = np.empty((steps, num_states), dtype=np.int64)
        llr_steps = metric_in.reshape(steps, n)
        signs = 1.0 - 2.0 * outputs  # (+1 for bit 0, -1 for bit 1)
        for t in range(steps):
            step_metric = signs @ llr_steps[t]  # (states, 2)
            cand0 = path[s0] + step_metric[s0, b_t]
            cand1 = path[s1] + step_metric[s1, b_t]
            take1 = cand1 > cand0
            path = np.where(take1, cand1, cand0)
            prev_state[t] = np.where(take1, s1, s0)

        end_state = 0 if terminated else int(np.argmax(path))
        bits = np.empty(steps, dtype=np.int64)
        s = end_state
        for t in range(steps - 1, -1, -1):
            bits[t] = s >> (self.memory - 1)
            s = prev_state[t, s]
        if terminated:
            bits = bits[: steps - self.memory]
        return bits

    def decode_hard(self, coded: np.ndarray, *, terminated: bool = True) -> np.ndarray:
        """Hard-decision Viterbi: 0/1 coded bits to information bits."""
        coded = np.asarray(coded, dtype=np.int64)
        if coded.size and not np.all((coded == 0) | (coded == 1)):
            raise ValueError("coded bits must be 0/1")
        llrs = 1.0 - 2.0 * coded.astype(float)
        return self.viterbi_decode(llrs, terminated=terminated)
