"""Iterative watermark decoding: inner drift decoder + outer LDPC.

Davey & MacKay's receiver iterates between the synchronization (drift)
decoder and the outer code: the outer code's beliefs about the sparse
bits sharpen the inner decoder's priors, which re-aligns the drift
lattice, which improves the bit likelihoods, and so on. This module
implements that loop with the binary LDPC of :mod:`repro.coding.ldpc`
as the outer code:

1. position priors ``P(t_j = 1)`` are assembled from the current
   sparse-bit beliefs and the known watermark;
2. the forward-backward drift decoder produces position posteriors;
3. the *channel evidence* (posterior vs prior log-odds) per position is
   combined with the outer beliefs into coded-bit LLRs;
4. a few outer BP iterations produce updated coded-bit beliefs, which
   map back to sparse-position beliefs for the next round.

The feedback uses full posteriors with damping rather than strict
extrinsic separation — the standard engineering shortcut, noted here so
nobody mistakes it for exact message passing. Experiment E11 measures
the per-iteration BER gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..numerics import IterationGuard, SolverStatus, record_status, safe_log
from .forward_backward import DriftChannelModel
from .ldpc import LDPCCode, make_peg_parity_check
from .watermark import SparseCodebook

__all__ = ["IterativeWatermarkCode", "IterativeDecodeResult"]

_EPS = 1e-9


def _logit(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, _EPS, 1.0 - _EPS)
    return np.log(p / (1.0 - p))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -40, 40)))


@dataclass(frozen=True)
class IterativeDecodeResult:
    """Outcome of an iterative decode.

    Attributes
    ----------
    payload:
        Decoded information bits.
    bit_error_rate:
        Against ``true_payload`` when provided.
    iterations_run:
        How many inner/outer rounds executed.
    converged:
        Whether the outer code's syndrome check passed (early stop).
    per_iteration_ber:
        BER after each round (only when ``true_payload`` is given) —
        the series experiment E11 reports.
    status:
        Terminal :class:`repro.numerics.SolverStatus` of the outer
        loop; the residual tracked is the syndrome weight, so a loop
        whose syndrome weight cycles without improving is ``stalled``
        rather than merely non-``converged``.
    """

    payload: np.ndarray
    bit_error_rate: Optional[float]
    iterations_run: int
    converged: bool
    per_iteration_ber: tuple
    status: SolverStatus = SolverStatus.CONVERGED


class IterativeWatermarkCode:
    """Watermark code with an LDPC outer code and iterative decoding.

    Parameters
    ----------
    ldpc:
        Outer code; its ``message_length`` is the frame payload size.
        Defaults to a rate-1/2 PEG code of block length 96.
    codebook:
        Sparse mapping (default 3 -> 7).
    watermark_seed:
        Shared pseudorandom watermark seed.
    damping:
        Weight of the new outer beliefs when updating priors
        (1.0 = replace, smaller = smoother).
    """

    def __init__(
        self,
        *,
        ldpc: Optional[LDPCCode] = None,
        codebook: Optional[SparseCodebook] = None,
        watermark_seed: int = 2005,
        damping: float = 0.8,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if ldpc is None:
            h = make_peg_parity_check(96, 3, 48, np.random.default_rng(7))
            ldpc = LDPCCode(h)
        self.ldpc = ldpc
        self.codebook = codebook or SparseCodebook(3, 7)
        self.damping = damping
        coded_len = ldpc.block_length
        rem = (-coded_len) % self.codebook.bits_in
        self._coded_padded = coded_len + rem
        self._num_symbols = self._coded_padded // self.codebook.bits_in
        self.frame_length = self._num_symbols * self.codebook.bits_out
        wm_rng = np.random.default_rng(watermark_seed)
        self.watermark = wm_rng.integers(0, 2, self.frame_length).astype(np.int64)

    @property
    def payload_bits(self) -> int:
        return self.ldpc.message_length

    @property
    def rate(self) -> float:
        return self.payload_bits / self.frame_length

    # ------------------------------------------------------------------
    def encode(self, payload: np.ndarray) -> np.ndarray:
        data = np.asarray(payload, dtype=np.int64)
        if data.shape != (self.payload_bits,):
            raise ValueError(f"payload must have shape ({self.payload_bits},)")
        coded = self.ldpc.encode(data)
        padded = np.concatenate(
            [coded, np.zeros(self._coded_padded - coded.size, dtype=np.int64)]
        )
        sparse = self.codebook.encode(padded)
        return sparse ^ self.watermark

    # ------------------------------------------------------------------
    def _positions_from_coded_beliefs(self, coded_p1: np.ndarray) -> np.ndarray:
        """Coded-bit beliefs -> per-transmitted-position P(sparse = 1).

        For each sparse block, the symbol distribution implied by the
        (assumed independent) coded-bit beliefs is pushed through the
        codebook to position marginals.
        """
        w = self.codebook.bits_in
        blocks = coded_p1.reshape(-1, w)
        idx = np.arange(1 << w)
        bit_patterns = ((idx[:, None] >> np.arange(w - 1, -1, -1)[None, :]) & 1)
        # P(symbol) = prod over bits of belief (blocks x symbols).
        logp = safe_log(blocks, floor=_EPS)
        log1m = safe_log(1 - blocks, floor=_EPS)
        scores = logp @ bit_patterns.T + log1m @ (1 - bit_patterns).T
        scores -= scores.max(axis=1, keepdims=True)
        sym = np.exp(scores)
        sym /= sym.sum(axis=1, keepdims=True)
        # Position marginals: P(pos=1) = sum_word P(word) word[pos].
        pos = sym @ self.codebook.words.astype(float)
        return pos.reshape(-1)

    def decode(
        self,
        received: np.ndarray,
        channel: DriftChannelModel,
        *,
        iterations: int = 3,
        true_payload: Optional[np.ndarray] = None,
    ) -> IterativeDecodeResult:
        """Iterative inner/outer decoding of one frame."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        f = self.codebook.mean_density
        # Coded-bit beliefs start uniform; sparse positions at density f.
        coded_p1 = np.full(self._coded_padded, 0.5)
        pos_sparse1 = np.full(self.frame_length, f)
        truth = (
            np.asarray(true_payload, dtype=np.int64)
            if true_payload is not None
            else None
        )
        payload = np.zeros(self.payload_bits, dtype=np.int64)
        bers = []
        # The residual is the outer code's syndrome weight: zero means
        # the syndrome check passed (the legacy ``converged`` flag).
        guard = IterationGuard(
            "iterative_watermark", max_iter=iterations, tol=0.0
        )
        status: Optional[SolverStatus] = None
        while status is None:
            priors_t = np.where(
                self.watermark == 1, 1.0 - pos_sparse1, pos_sparse1
            )
            result = channel.decode(received, priors_t)
            post_t1 = result.posteriors
            post_sparse1 = np.where(
                self.watermark == 1, 1.0 - post_t1, post_t1
            )
            # Channel evidence per position (posterior minus prior odds).
            evidence = _logit(post_sparse1) - _logit(pos_sparse1)
            # Position channel-likelihood P(channel | sparse bit).
            chan_p1 = _sigmoid(evidence)
            sym_probs = self.codebook.map_block_posteriors(chan_p1)
            llrs = self.codebook.symbol_bit_llrs(sym_probs)
            coded_llrs = llrs[: self.ldpc.block_length]
            decoded, ok, posterior_llrs = self.ldpc.decode_soft(
                coded_llrs, max_iterations=30
            )
            payload = self.ldpc.extract_message(decoded)
            if truth is not None:
                bers.append(float((payload != truth).mean()))
            syndrome_weight = float(self.ldpc.syndrome(decoded).sum())
            status = guard.update(syndrome_weight, value=payload)
            if status is not None:
                break
            # Outer BP posteriors -> updated sparse-position priors
            # (damped). Temper the confidence so a wrong belief from a
            # non-converged BP round cannot lock the drift decoder in.
            outer_p1 = _sigmoid(-0.5 * posterior_llrs)
            full = np.concatenate(
                [outer_p1, np.zeros(self._coded_padded - outer_p1.size)]
            )
            new_pos = self._positions_from_coded_beliefs(full)
            pos_sparse1 = (
                self.damping * new_pos + (1 - self.damping) * pos_sparse1
            )
            pos_sparse1 = np.clip(pos_sparse1, 1e-4, 1 - 1e-4)
        record_status("iterative_watermark", status)

        ber = float((payload != truth).mean()) if truth is not None else None
        return IterativeDecodeResult(
            payload=payload,
            bit_error_rate=ber,
            iterations_run=guard.iterations,
            converged=status is SolverStatus.CONVERGED,
            per_iteration_ber=tuple(bers),
            status=status,
        )

    def simulate_frame(
        self,
        channel: DriftChannelModel,
        rng: np.random.Generator,
        *,
        iterations: int = 3,
    ) -> IterativeDecodeResult:
        """Random payload end-to-end through *channel*."""
        payload = rng.integers(0, 2, self.payload_bits)
        tx = self.encode(payload)
        ry, _ = channel.transmit(tx, rng)
        return self.decode(
            ry, channel, iterations=iterations, true_payload=payload
        )
