"""Network substrate: a packet-timing covert channel whose loss,
duplication, and jitter manufacture the paper's deletion/insertion/
substitution events in a distributed setting (experiment E13).

Note on ground truth: deletion and insertion labels are exact (derived
from per-packet fates); substitution labels are positional and become
approximate once deletions/duplicates shift the alignment, so `P_s`
should be read from jitter-only configurations.
"""

from .packet_channel import (
    FlowRecord,
    PacketFlowConfig,
    decode_gaps,
    measured_parameters,
    transmit_flow,
)

__all__ = [
    "FlowRecord",
    "PacketFlowConfig",
    "decode_gaps",
    "measured_parameters",
    "transmit_flow",
]
