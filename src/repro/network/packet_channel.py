"""A network packet-timing covert channel.

The distributed-systems counterpart of the §3.1 uniprocessor scenario:
the sender leaks information through **inter-packet gaps** of an
innocuous flow (gap of ``d_0`` seconds = symbol 0, ``d_1`` = symbol 1,
...). The network then manufactures exactly the non-synchronous effects
the paper models:

* a **lost** packet merges two adjacent gaps — the receiver sees one
  (long) gap where two symbols were sent: a *deletion* plus a likely
  substitution on the survivor;
* a **duplicated** packet splits a gap in two — the receiver sees an
  extra spurious symbol: an *insertion*;
* **jitter** perturbs gap lengths — *substitutions*.

:func:`transmit_flow` simulates the flow with ground-truth event labels
so the estimation pipeline (`repro.core.estimation`) can be validated
against known network conditions; experiment E13 sweeps loss/duplication
rates and checks the measured `(P_d, P_i, P_s)` against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..infotheory.probability import validate_probability

from ..core.events import ChannelEvent, ChannelParameters

__all__ = [
    "PacketFlowConfig",
    "FlowRecord",
    "transmit_flow",
    "decode_gaps",
    "measured_parameters",
]


@dataclass(frozen=True)
class PacketFlowConfig:
    """Network and signaling configuration.

    Attributes
    ----------
    gap_durations:
        Strictly increasing gap lengths (seconds) encoding symbols
        ``0..M-1``.
    loss_prob:
        Independent per-packet loss probability (interior packets; the
        flow's first packet is assumed protected by the transport
        handshake).
    duplicate_prob:
        Probability a packet is duplicated in flight; the copy arrives
        a uniform fraction of the *following* gap later, splitting it.
    jitter_std:
        Standard deviation of Gaussian per-packet delay jitter, in the
        same unit as the durations.
    """

    gap_durations: tuple
    loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    jitter_std: float = 0.0

    def __init__(
        self,
        gap_durations: Sequence[float],
        loss_prob: float = 0.0,
        duplicate_prob: float = 0.0,
        jitter_std: float = 0.0,
    ) -> None:
        d = tuple(float(x) for x in gap_durations)
        if len(d) < 2:
            raise ValueError("need at least two gap durations")
        if any(x <= 0 for x in d) or list(d) != sorted(set(d)):
            raise ValueError("gap durations must be positive and increasing")
        if jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")
        object.__setattr__(self, "gap_durations", d)
        object.__setattr__(self, "loss_prob", loss_prob)
        object.__setattr__(self, "duplicate_prob", duplicate_prob)
        object.__setattr__(self, "jitter_std", jitter_std)
        self.__post_init__()

    def __post_init__(self) -> None:
        # Called explicitly: a hand-written __init__ bypasses the
        # dataclass-generated call.
        for name in ("loss_prob", "duplicate_prob"):
            value = validate_probability(getattr(self, name), name)
            if value >= 1.0:
                raise ValueError(f"{name} must be in [0, 1)")

    @property
    def num_symbols(self) -> int:
        return len(self.gap_durations)

    @property
    def mean_duration(self) -> float:
        return float(np.mean(self.gap_durations))

    def synchronous_capacity(self) -> float:
        """Naive traditional estimate: the Shannon noiseless-channel
        capacity of the gap alphabet (bits per second), assuming every
        gap arrives intact — what a synchronous-model analysis reports."""
        from ..infotheory.noiseless import noiseless_capacity_per_second

        return noiseless_capacity_per_second(self.gap_durations)


@dataclass(frozen=True)
class FlowRecord:
    """Ground truth of one simulated flow.

    Attributes
    ----------
    message:
        Symbols the sender encoded.
    observed_gaps:
        Inter-arrival gaps the receiver measured, in order.
    decoded:
        Nearest-duration decoding of the observed gaps.
    events:
        Ground-truth event labels, one per *channel use* in the
        Definition-1 sense (deletions consume a sent symbol and emit
        nothing; insertions emit a spurious gap).
    duration:
        Total flow duration (seconds) at the receiver.
    """

    message: np.ndarray
    observed_gaps: np.ndarray
    decoded: np.ndarray
    events: np.ndarray
    duration: float


def _nearest_symbol(gaps: np.ndarray, durations: np.ndarray) -> np.ndarray:
    boundaries = (durations[1:] + durations[:-1]) / 2.0
    idx = np.searchsorted(boundaries, gaps, side="left")
    return np.minimum(idx, durations.size - 1).astype(np.int64)


def transmit_flow(
    message: np.ndarray,
    config: PacketFlowConfig,
    rng: np.random.Generator,
) -> FlowRecord:
    """Send *message* as packet gaps through the configured network."""
    msg = np.asarray(message, dtype=np.int64)
    if msg.ndim != 1:
        raise ValueError("message must be 1-D")
    m = config.num_symbols
    if msg.size and (msg.min() < 0 or msg.max() >= m):
        raise ValueError("message symbol out of range")
    durations = np.asarray(config.gap_durations)

    # Departure times: packet k at the cumulative sum of gaps; N symbols
    # need N+1 packets.
    gaps_sent = durations[msg]
    departures = np.concatenate([[0.0], np.cumsum(gaps_sent)])

    # Per-packet fate. The first packet always arrives (flow anchor).
    arrivals: List[float] = []
    lost = np.zeros(departures.size, dtype=bool)
    if config.loss_prob > 0 and departures.size > 1:
        lost[1:] = rng.random(departures.size - 1) < config.loss_prob
    for k, t in enumerate(departures):
        if lost[k]:
            continue
        jitter = rng.normal(0.0, config.jitter_std) if config.jitter_std else 0.0
        arrivals.append(t + jitter)
        if config.duplicate_prob and rng.random() < config.duplicate_prob:
            # Copy lands a uniform fraction into the next gap.
            next_gap = gaps_sent[k] if k < gaps_sent.size else durations[0]
            arrivals.append(t + jitter + rng.uniform(0.1, 0.9) * next_gap)
    arrivals_arr = np.sort(np.asarray(arrivals))
    observed_gaps = np.diff(arrivals_arr)

    decoded = (
        _nearest_symbol(observed_gaps, durations)
        if observed_gaps.size
        else np.empty(0, dtype=np.int64)
    )

    # Ground-truth events per sent symbol: packet k+1 closing gap k was
    # lost -> symbol k deleted (merged into the next observed gap);
    # otherwise transmitted, substituted if the decode disagrees.
    # Duplicates inject insertions.
    events: List[int] = []
    obs_iter = 0
    for k in range(msg.size):
        if lost[k + 1]:
            events.append(int(ChannelEvent.DELETION))
            continue
        if obs_iter < decoded.size and decoded[obs_iter] != msg[k]:
            events.append(int(ChannelEvent.SUBSTITUTION))
        else:
            events.append(int(ChannelEvent.TRANSMISSION))
        obs_iter += 1
    extra = observed_gaps.size - int(np.count_nonzero(~lost[1:]))
    events.extend([int(ChannelEvent.INSERTION)] * max(0, extra))

    return FlowRecord(
        message=msg,
        observed_gaps=observed_gaps,
        decoded=decoded,
        events=np.asarray(events, dtype=np.int64),
        duration=float(arrivals_arr[-1] - arrivals_arr[0]) if arrivals_arr.size else 0.0,
    )


def decode_gaps(
    gaps: Sequence[float], config: PacketFlowConfig
) -> np.ndarray:
    """Nearest-duration hard decoding of a gap sequence."""
    arr = np.asarray(gaps, dtype=float)
    if arr.ndim != 1:
        raise ValueError("gaps must be 1-D")
    if np.any(arr < 0):
        raise ValueError("gaps must be non-negative")
    return _nearest_symbol(arr, np.asarray(config.gap_durations))


def measured_parameters(record: FlowRecord) -> ChannelParameters:
    """Definition-1 parameters from the flow's ground-truth events.

    Validates the record's event labels before counting: a
    hand-constructed record with a code outside the
    :class:`repro.core.events.ChannelEvent` vocabulary would otherwise
    either crash ``bincount`` (negative codes) or silently inflate the
    total (codes above 3), skewing every rate it reports.
    """
    events = np.asarray(record.events)
    if events.size == 0:
        raise ValueError("empty flow: no channel events to measure")
    if events.ndim != 1 or not np.issubdtype(events.dtype, np.integer):
        raise ValueError("flow events must be a 1-D integer array")
    invalid = (events < 0) | (events > int(ChannelEvent.SUBSTITUTION))
    if np.any(invalid):
        bad = int(events[invalid][0])
        raise ValueError(
            f"flow events contain invalid event code {bad}; "
            "expected ChannelEvent values 0..3"
        )
    counts = np.bincount(events, minlength=4)
    total = counts.sum()
    transmitted = counts[int(ChannelEvent.TRANSMISSION)] + counts[
        int(ChannelEvent.SUBSTITUTION)
    ]
    return ChannelParameters(
        deletion=counts[int(ChannelEvent.DELETION)] / total,
        insertion=counts[int(ChannelEvent.INSERTION)] / total,
        transmission=transmitted / total,
        substitution=(
            counts[int(ChannelEvent.SUBSTITUTION)] / transmitted
            if transmitted
            else 0.0
        ),
    )
