"""repro — reproduction of Wang & Lee, "Capacity Estimation of
Non-Synchronous Covert Channels" (ICDCS Workshops 2005).

Covert channels are inherently non-synchronous: depending on scheduling,
symbols can be silently dropped or spuriously inserted. This package
models such channels as deletion-insertion channels, implements the
paper's capacity bounds (Theorems 1-5), the synchronization protocols
that achieve them, the traditional (synchronous-model) estimators they
correct, coding schemes for the no-feedback case, and an OS scheduler
substrate reproducing the paper's motivating scenario.

Quickstart
----------
>>> from repro import ChannelParameters, CapacityEstimator
>>> params = ChannelParameters.from_rates(deletion=0.1, insertion=0.05)
>>> report = CapacityEstimator(bits_per_symbol=4).estimate(params)
>>> round(report.corrected_capacity, 2)
3.6
"""

from ._version import PACKAGE_VERSION
from .core import (
    THEOREMS,
    CapacityEstimator,
    CapacityReport,
    ChannelEvent,
    ChannelParameters,
    DeletionChannel,
    DeletionInsertionChannel,
    ErasureChannelView,
    InsertionChannel,
    TransmissionRecord,
    capacity_bracket,
    converted_capacity,
    convergence_ratio,
    erasure_upper_bound,
    estimate_from_events,
    feedback_lower_bound,
    theorem1_upper_bound,
    theorem3_feedback_capacity,
    theorem5_feedback_lower_bound,
)
from .infotheory import (
    DiscreteMemorylessChannel,
    binary_entropy,
    blahut_arimoto,
    channel_capacity,
    mutual_information,
)

# Single source of truth for the version: repro._version (a leaf module
# the store keys and checkpoint fingerprints also read).
__version__ = PACKAGE_VERSION

__all__ = [
    "THEOREMS",
    "CapacityEstimator",
    "CapacityReport",
    "ChannelEvent",
    "ChannelParameters",
    "DeletionChannel",
    "DeletionInsertionChannel",
    "ErasureChannelView",
    "InsertionChannel",
    "TransmissionRecord",
    "capacity_bracket",
    "converted_capacity",
    "convergence_ratio",
    "erasure_upper_bound",
    "estimate_from_events",
    "feedback_lower_bound",
    "theorem1_upper_bound",
    "theorem3_feedback_capacity",
    "theorem5_feedback_lower_bound",
    "DiscreteMemorylessChannel",
    "binary_entropy",
    "blahut_arimoto",
    "channel_capacity",
    "mutual_information",
    "__version__",
]
