"""Millen's finite-state noiseless covert channels (1989).

Millen modeled an important class of covert channels as finite-state
machines: each transition (an operation visible to the receiver) has a
duration, and the channel is noiseless. The capacity in bits per time
unit is ``log2(W)`` where ``W`` is the unique positive root of

    det( A(W) - I ) = 0,      A(W)_{ij} = sum_{s: i->j} W^{-t_s},

the classic Shannon (1948) discrete noiseless channel result that Millen
carried over to covert-channel analysis. Equivalently, ``log2`` of the
value ``W`` for which the duration-weighted adjacency matrix ``A(W)``
has spectral radius exactly 1.

This is the flagship "traditional" estimator: it assumes every symbol
sent is received (a synchronous channel). The paper's correction
multiplies its output by ``(1 - P_d)``; see
:class:`repro.core.estimation.CapacityEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..numerics import expand_bracket, guarded_brentq

__all__ = ["Transition", "FiniteStateChannel", "fsm_capacity"]


@dataclass(frozen=True)
class Transition:
    """One FSM edge: an operation taking *duration* time units.

    Attributes
    ----------
    source, target:
        State indices.
    duration:
        Positive time the operation takes.
    label:
        Optional operation name (cosmetic).
    """

    source: int
    target: int
    duration: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("transition duration must be positive")
        if self.source < 0 or self.target < 0:
            raise ValueError("state indices must be non-negative")


@dataclass
class FiniteStateChannel:
    """A noiseless finite-state covert channel (Millen 1989).

    Parameters
    ----------
    num_states:
        Number of FSM states.
    transitions:
        The labeled, timed edges. Parallel edges are allowed (distinct
        operations between the same pair of states).
    """

    num_states: int
    transitions: List[Transition] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_states < 1:
            raise ValueError("need at least one state")
        for t in self.transitions:
            if t.source >= self.num_states or t.target >= self.num_states:
                raise ValueError(f"transition {t} references unknown state")

    def add_transition(
        self, source: int, target: int, duration: float, label: str = ""
    ) -> None:
        t = Transition(source, target, duration, label)
        if t.source >= self.num_states or t.target >= self.num_states:
            raise ValueError("state index out of range")
        self.transitions.append(t)

    # ------------------------------------------------------------------
    def weighted_adjacency(self, w: float) -> np.ndarray:
        """The matrix ``A(W)_{ij} = sum over edges i->j of W^{-t}``."""
        if w <= 0:
            raise ValueError("W must be positive")
        a = np.zeros((self.num_states, self.num_states))
        for t in self.transitions:
            a[t.source, t.target] += w ** (-t.duration)
        return a

    def spectral_radius(self, w: float) -> float:
        """Largest eigenvalue magnitude of ``A(W)``."""
        return float(np.max(np.abs(np.linalg.eigvals(self.weighted_adjacency(w)))))

    def is_strongly_connected(self) -> bool:
        """Whether every state can reach every other state."""
        adj = np.zeros((self.num_states, self.num_states), dtype=bool)
        for t in self.transitions:
            adj[t.source, t.target] = True
        reach = np.eye(self.num_states, dtype=bool) | adj
        for _ in range(int(np.ceil(np.log2(max(self.num_states, 2)))) + 1):
            reach = reach | (reach @ reach)
        return bool(reach.all())

    def out_degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_states, dtype=np.int64)
        for t in self.transitions:
            deg[t.source] += 1
        return deg

    # ------------------------------------------------------------------
    def capacity(self, *, tol: float = 1e-12) -> float:
        """Capacity in bits per time unit: ``log2(W0)`` with
        ``rho(A(W0)) = 1``.

        Returns 0 for channels that cannot encode information (at most
        one outgoing edge everywhere, i.e. rho(A(1)) <= 1).

        Raises
        ------
        repro.numerics.BracketingError
            When no root can be bracketed or polished (degenerate
            duration structure); carries the expansion trail.
        """
        if not self.transitions:
            return 0.0
        rho_at_1 = self.spectral_radius(1.0)
        if rho_at_1 <= 1.0 + 1e-12:
            return 0.0

        def f(log_w: float) -> float:
            return self.spectral_radius(float(np.exp(log_w))) - 1.0

        # rho(A(W)) is continuous and decreasing in W for W >= 1 (every
        # entry decreases). Bracket in log-space; the cap keeps
        # exp(log_w) clear of overflow.
        lo, hi = expand_bracket(
            f, 0.0, 1.0, hi_cap=700.0, solver="fsm_capacity"
        )
        root = guarded_brentq(f, lo, hi, xtol=tol, solver="fsm_capacity")
        return float(root / np.log(2.0))


def fsm_capacity(
    num_states: int, edges: Sequence[Tuple[int, int, float]], *, tol: float = 1e-12
) -> float:
    """Convenience wrapper: capacity of an FSM given ``(src, dst, t)`` edges."""
    chan = FiniteStateChannel(
        num_states, [Transition(s, d, t) for (s, d, t) in edges]
    )
    return chan.capacity(tol=tol)
