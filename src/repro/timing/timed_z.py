"""The timed Z-channel (Moskowitz, Greenwald & Kang, 1996).

A binary covert timing channel where the two outputs take different
times and the noise is one-sided: a transmitted 0 is always received as
0 (taking time ``t0``), while a transmitted 1 is received as 1 with
probability ``1 - p`` (taking time ``t1``) and degrades to a 0 with
probability ``p`` (the receiver then observes a 0 of duration ``t0``).
This models, e.g., a covert channel through a resource that sometimes
fails to be acquired.

Capacity per unit time is ``max_q I(q) / T(q)`` with

    I(q) = H(q (1-p)) - q H(p)            (bits per symbol)
    T(q) = t0 (1 - q(1-p)) + t1 q(1-p)    (expected symbol duration)

where ``q = P(X = 1)``. :func:`timed_z_capacity` maximizes this ratio;
:func:`timed_z_optimality_residual` checks the stationarity condition
used as an independent cross-check in the test suite. Setting
``t0 = t1 = 1`` recovers the classic Z-channel capacity
``log2(1 + (1-p) p^{p/(1-p)})``; setting ``p = 0`` recovers the
two-symbol noiseless timing channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..infotheory.entropy import binary_entropy

__all__ = [
    "TimedZChannel",
    "timed_z_capacity",
    "timed_z_information_rate",
    "timed_z_optimality_residual",
]


@dataclass(frozen=True)
class TimedZChannel:
    """Parameters of a timed Z-channel.

    Attributes
    ----------
    t0, t1:
        Durations of received 0s and 1s (positive).
    p:
        One-sided degradation probability of a transmitted 1.
    """

    t0: float
    t1: float
    p: float

    def __post_init__(self) -> None:
        if self.t0 <= 0 or self.t1 <= 0:
            raise ValueError("symbol durations must be positive")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("degradation probability must be in [0, 1]")

    # ------------------------------------------------------------------
    def information_per_symbol(self, q: float) -> float:
        """``I(q) = H(q(1-p)) - q H(p)`` bits per channel symbol."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        s = q * (1.0 - self.p)
        return float(binary_entropy(s)) - q * float(binary_entropy(self.p))

    def mean_time(self, q: float) -> float:
        """Expected received-symbol duration ``T(q)``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        s = q * (1.0 - self.p)
        return self.t0 * (1.0 - s) + self.t1 * s

    def information_rate(self, q: float) -> float:
        """``I(q) / T(q)`` bits per time unit."""
        return self.information_per_symbol(q) / self.mean_time(q)

    # ------------------------------------------------------------------
    def capacity(self, *, tol: float = 1e-12) -> tuple:
        """Maximize the information rate over the input distribution.

        Returns ``(capacity_bits_per_time, q_star)``.
        """
        if self.p >= 1.0:
            return 0.0, 0.0
        result = optimize.minimize_scalar(
            lambda q: -self.information_rate(q),
            bounds=(1e-12, 1.0 - 1e-12),
            method="bounded",
            options={"xatol": tol},
        )
        q_star = float(result.x)
        return float(-result.fun), q_star


def timed_z_capacity(t0: float, t1: float, p: float) -> float:
    """Capacity of the timed Z-channel in bits per time unit."""
    capacity, _ = TimedZChannel(t0, t1, p).capacity()
    return capacity


def timed_z_information_rate(t0: float, t1: float, p: float, q: float) -> float:
    """Information rate at input distribution ``P(X=1) = q``."""
    return TimedZChannel(t0, t1, p).information_rate(q)


def timed_z_optimality_residual(t0: float, t1: float, p: float, q: float) -> float:
    """Stationarity residual ``I'(q) - C(q) T'(q)`` at *q*.

    Zero (to numerical precision) exactly at the capacity-achieving
    input, giving the test suite an independent check that the bounded
    scalar optimizer found the true maximum.
    """
    chan = TimedZChannel(t0, t1, p)
    if not 0.0 < q < 1.0:
        raise ValueError("residual defined for q in (0, 1)")
    s = q * (1.0 - p)
    if s >= 1.0:
        raise ValueError("degenerate input")
    di = (1.0 - p) * float(np.log2((1.0 - s) / s)) - float(binary_entropy(p))
    dt = (1.0 - p) * (t1 - t0)
    c = chan.information_rate(q)
    return di - c * dt
