"""Traditional (synchronous-model) covert-channel capacity estimators.

Millen's finite-state noiseless channels, Moskowitz & Miller's Simple
Timing Channels, and the Moskowitz-Greenwald-Kang timed Z-channel — the
prior-work estimators whose outputs the paper's ``(1 - P_d)`` correction
adjusts for non-synchronous effects.
"""

from .fsm import FiniteStateChannel, Transition, fsm_capacity
from .stc import SimpleTimingChannel, stc_capacity, stc_capacity_bounds
from .timed_dmc import TimedDMCResult, timed_dmc_capacity
from .timed_z import (
    TimedZChannel,
    timed_z_capacity,
    timed_z_information_rate,
    timed_z_optimality_residual,
)

__all__ = [
    "FiniteStateChannel",
    "Transition",
    "fsm_capacity",
    "SimpleTimingChannel",
    "stc_capacity",
    "stc_capacity_bounds",
    "TimedDMCResult",
    "timed_dmc_capacity",
    "TimedZChannel",
    "timed_z_capacity",
    "timed_z_information_rate",
    "timed_z_optimality_residual",
]
