"""Capacity of a general DMC with input-dependent symbol durations.

Generalizes the timed Z-channel: any discrete memoryless channel whose
input ``x`` occupies the channel for ``tau(x)`` time units has capacity
(bits per time unit)

    C = max_p I(p, W) / T(p),      T(p) = sum_x p(x) tau(x).

The fractional program is solved with Dinkelbach's method: for a rate
guess ``lambda`` maximize ``F(p) = I(p, W) - lambda T(p)`` (a concave
program solved by a penalized Blahut-Arimoto iteration), then update
``lambda = I/T`` at the maximizer; ``lambda`` converges monotonically to
the capacity. Cross-checks in the test suite: the timed Z-channel and
Shannon's noiseless channels with non-uniform durations both drop out
as special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..infotheory.entropy import mutual_information
from ..numerics import (
    IterationGuard,
    SolverStatus,
    normalized_exp2,
    record_status,
    safe_log2,
    stage,
)
from ..store import cached_solve

__all__ = ["TimedDMCResult", "timed_dmc_capacity"]


@dataclass(frozen=True)
class TimedDMCResult:
    """Capacity of a timed DMC.

    Attributes
    ----------
    capacity:
        Bits per time unit.
    input_distribution:
        Capacity-achieving input distribution.
    mean_time:
        Expected symbol duration under that distribution.
    bits_per_symbol:
        ``I`` at the optimum (= capacity * mean_time).
    iterations:
        Dinkelbach outer iterations used.
    status:
        Terminal :class:`repro.numerics.SolverStatus` of the outer
        Dinkelbach loop.
    """

    capacity: float
    input_distribution: np.ndarray
    mean_time: float
    bits_per_symbol: float
    iterations: int
    status: SolverStatus = SolverStatus.CONVERGED


def _penalized_blahut_arimoto(
    w: np.ndarray,
    penalties: np.ndarray,
    log_w: np.ndarray,
    *,
    tol: float = 1e-11,
    max_iter: int = 5000,
) -> np.ndarray:
    """Maximize ``I(p, W) - sum_x p(x) penalties[x]`` over ``p``.

    Standard BA with a per-letter penalty folded into the exponent of
    the multiplicative update (the Lagrangian form used for
    cost-constrained capacity). ``log_w`` is the precomputed
    ``log2`` of the positive entries of ``w`` (zeros elsewhere) —
    it is constant across the Dinkelbach outer loop, so the caller
    computes it once instead of per solve.
    """
    nx = w.shape[0]
    p = np.full(nx, 1.0 / nx)
    for _ in range(max_iter):
        q = p @ w
        log_q = safe_log2(q)
        d = np.einsum("xy,xy->x", w, log_w - log_q[None, :]) - penalties
        value = float(p @ d)
        gap = float(d.max()) - value
        if gap < tol:
            break
        p = normalized_exp2(safe_log2(p) + d)
    return p


def _replay_timed_status(result: TimedDMCResult) -> None:
    """Report the stored Dinkelbach status on a cache hit (warm runs
    surface the same solver health as the cold solve)."""
    record_status("timed_dmc", result.status)


@cached_solve("timed_dmc", on_hit=_replay_timed_status)
def timed_dmc_capacity(
    transition: np.ndarray,
    durations: np.ndarray,
    *,
    tol: float = 1e-10,
    max_outer: int = 100,
) -> TimedDMCResult:
    """Capacity (bits per time unit) of a DMC with per-input durations.

    Memoized through :mod:`repro.store` when a result store is active;
    pass-through (bit-exact) otherwise.

    Parameters
    ----------
    transition:
        Row-stochastic ``P(y|x)`` of shape ``(nx, ny)``.
    durations:
        Positive per-input occupation times, length ``nx``.
    """
    w = np.asarray(transition, dtype=float)
    tau = np.asarray(durations, dtype=float)
    if w.ndim != 2:
        raise ValueError("transition must be a 2-D matrix")
    if np.any(w < 0) or not np.allclose(w.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("transition rows must be distributions")
    if tau.shape != (w.shape[0],):
        raise ValueError("durations must match the input alphabet")
    if np.any(tau <= 0):
        raise ValueError("durations must be positive")

    lam = 0.0
    p = np.full(w.shape[0], 1.0 / w.shape[0])
    log_w = np.where(w > 0, safe_log2(w), 0.0)
    guard = IterationGuard(
        "timed_dmc", max_iter=max_outer, tol=tol, stall_window=20
    )
    status: Optional[SolverStatus] = None
    with stage("solver"):
        while status is None:
            p = _penalized_blahut_arimoto(w, lam * tau, log_w)
            info = mutual_information(p, w)
            mean_t = float(p @ tau)
            new_lam = info / mean_t
            status = guard.update(abs(new_lam - lam), value=(new_lam, p))
            lam = new_lam
    if status is not SolverStatus.CONVERGED and guard.best_value is not None:
        lam, p = guard.best_value
    if not np.isfinite(lam):
        lam, p = 0.0, np.full(w.shape[0], 1.0 / w.shape[0])
    record_status("timed_dmc", status)
    info = mutual_information(p, w)
    mean_t = float(p @ tau)
    return TimedDMCResult(
        capacity=float(lam),
        input_distribution=p,
        mean_time=mean_t,
        bits_per_symbol=info,
        iterations=guard.iterations,
        status=status,
    )
