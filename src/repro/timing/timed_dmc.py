"""Capacity of a general DMC with input-dependent symbol durations.

Generalizes the timed Z-channel: any discrete memoryless channel whose
input ``x`` occupies the channel for ``tau(x)`` time units has capacity
(bits per time unit)

    C = max_p I(p, W) / T(p),      T(p) = sum_x p(x) tau(x).

The fractional program is solved with Dinkelbach's method: for a rate
guess ``lambda`` maximize ``F(p) = I(p, W) - lambda T(p)`` (a concave
program solved by a penalized Blahut-Arimoto iteration), then update
``lambda = I/T`` at the maximizer; ``lambda`` converges monotonically to
the capacity. The inner penalized solve is the batched kernel
:func:`repro.infotheory.kernels.penalized_blahut_arimoto_batch` on a
1-stack with the numpy step pinned — cached results must not depend on
the ambient kernel-backend selection. Cross-checks in the test suite:
the timed Z-channel and Shannon's noiseless channels with non-uniform
durations both drop out as special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..infotheory.entropy import mutual_information
from ..infotheory.kernels import penalized_blahut_arimoto_batch
from ..numerics import (
    IterationGuard,
    SolverDiagnostics,
    SolverStatus,
    masked_log2,
    record_status,
    stage,
)
from ..store import cached_solve

__all__ = ["TimedDMCResult", "timed_dmc_capacity"]

#: Status collector name for the inner penalized-BA solves; only
#: *unconverged* inner solves are recorded (an exhausted inner
#: iteration budget contaminates the outer Dinkelbach residual and
#: must be visible, not silent).
INNER_SOLVER = "timed_dmc_inner"


@dataclass(frozen=True)
class TimedDMCResult:
    """Capacity of a timed DMC.

    Attributes
    ----------
    capacity:
        Bits per time unit.
    input_distribution:
        Capacity-achieving input distribution.
    mean_time:
        Expected symbol duration under that distribution.
    bits_per_symbol:
        ``I`` at the optimum (= capacity * mean_time).
    iterations:
        Dinkelbach outer iterations used.
    status:
        Terminal :class:`repro.numerics.SolverStatus` of the outer
        Dinkelbach loop.
    inner_converged:
        ``False`` when any inner penalized Blahut-Arimoto solve
        exhausted its iteration budget — the outer residual (and hence
        ``status``) was then computed from an unconverged maximizer
        and the capacity may be less accurate than ``status``
        suggests.
    diagnostics:
        Outer-guard trace (:class:`repro.numerics.SolverDiagnostics`);
        its notes record the count of unconverged inner solves.
    """

    capacity: float
    input_distribution: np.ndarray
    mean_time: float
    bits_per_symbol: float
    iterations: int
    status: SolverStatus = SolverStatus.CONVERGED
    inner_converged: bool = True
    diagnostics: Optional[SolverDiagnostics] = None


def _penalized_blahut_arimoto(
    w: np.ndarray,
    penalties: np.ndarray,
    log_w: np.ndarray,
    *,
    tol: float = 1e-11,
    max_iter: int = 5000,
) -> Tuple[np.ndarray, bool]:
    """Maximize ``I(p, W) - sum_x p(x) penalties[x]`` over ``p``.

    Thin 1-stack wrapper over the batched penalized kernel (the numpy
    step stays pinned — see the module docstring). Returns the
    maximizer and whether the duality gap met *tol* before the
    iteration cap; an unconverged inner iterate is reported, never
    silently returned as if optimal.
    """
    result = penalized_blahut_arimoto_batch(
        w[None, :, :],
        penalties[None, :],
        log_w=log_w[None, :, :],
        tol=tol,
        max_iter=max_iter,
    )
    return result.input_distribution[0], bool(result.converged[0])


def _replay_timed_status(result: TimedDMCResult) -> None:
    """Report the stored Dinkelbach status on a cache hit (warm runs
    surface the same solver health as the cold solve)."""
    record_status("timed_dmc", result.status)
    if not result.inner_converged:
        record_status(INNER_SOLVER, SolverStatus.MAX_ITER)


@cached_solve("timed_dmc", on_hit=_replay_timed_status)
def timed_dmc_capacity(
    transition: np.ndarray,
    durations: np.ndarray,
    *,
    tol: float = 1e-10,
    max_outer: int = 100,
    inner_max_iter: int = 5000,
) -> TimedDMCResult:
    """Capacity (bits per time unit) of a DMC with per-input durations.

    Memoized through :mod:`repro.store` when a result store is active;
    pass-through (bit-exact) otherwise.

    Parameters
    ----------
    transition:
        Row-stochastic ``P(y|x)`` of shape ``(nx, ny)``. Must be
        finite; non-finite entries are rejected explicitly (the same
        admission check as :func:`repro.infotheory.blahut_arimoto`)
        rather than left to trip the row-sum check with a confusing
        "rows must be distributions" error.
    durations:
        Positive per-input occupation times, length ``nx``.
    tol, max_outer:
        Convergence tolerance and iteration cap of the outer
        Dinkelbach loop.
    inner_max_iter:
        Iteration cap of each inner penalized Blahut-Arimoto solve.
        Exhausting it does not abort the outer loop, but is surfaced
        through ``inner_converged`` and the diagnostics notes.
    """
    w = np.asarray(transition, dtype=float)
    tau = np.asarray(durations, dtype=float)
    if w.ndim != 2:
        raise ValueError("transition must be a 2-D matrix")
    if not np.all(np.isfinite(w)):
        raise ValueError("transition matrix contains non-finite entries")
    if np.any(w < 0) or not np.allclose(w.sum(axis=1), 1.0, atol=1e-9):
        raise ValueError("transition rows must be distributions")
    if tau.shape != (w.shape[0],):
        raise ValueError("durations must match the input alphabet")
    if np.any(tau <= 0):
        raise ValueError("durations must be positive")

    lam = 0.0
    p = np.full(w.shape[0], 1.0 / w.shape[0])
    log_w = masked_log2(w)
    guard = IterationGuard(
        "timed_dmc", max_iter=max_outer, tol=tol, stall_window=20
    )
    status: Optional[SolverStatus] = None
    unconverged_inner = 0
    with stage("solver"):
        while status is None:
            p, inner_ok = _penalized_blahut_arimoto(
                w, lam * tau, log_w, max_iter=inner_max_iter
            )
            if not inner_ok:
                unconverged_inner += 1
                record_status(INNER_SOLVER, SolverStatus.MAX_ITER)
            info = mutual_information(p, w)
            mean_t = float(p @ tau)
            new_lam = info / mean_t
            status = guard.update(abs(new_lam - lam), value=(new_lam, p))
            lam = new_lam
    if status is not SolverStatus.CONVERGED and guard.best_value is not None:
        lam, p = guard.best_value
    if not np.isfinite(lam):
        lam, p = 0.0, np.full(w.shape[0], 1.0 / w.shape[0])
    record_status("timed_dmc", status)
    notes = (
        (f"unconverged_inner_solves={unconverged_inner}",)
        if unconverged_inner
        else ()
    )
    info = mutual_information(p, w)
    mean_t = float(p @ tau)
    return TimedDMCResult(
        capacity=float(lam),
        input_distribution=p,
        mean_time=mean_t,
        bits_per_symbol=info,
        iterations=guard.iterations,
        status=status,
        inner_converged=unconverged_inner == 0,
        diagnostics=guard.diagnostics(notes=notes),
    )
