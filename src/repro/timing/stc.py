"""Simple Timing Channels (Moskowitz & Miller, 1994).

An STC is a discrete, noiseless, memoryless covert timing channel: the
sender chooses among ``k`` responses whose completion times are
``t_1 < t_2 < ... < t_k`` and the receiver observes the elapsed time
exactly. Moskowitz & Miller studied these as *upper-bound* models: the
capacity of a noisy or more constrained covert channel can be bounded by
the capacity of the STC with the same time alphabet.

Capacity (bits per time unit) is the Shannon noiseless-channel value
``log2(X0)`` with ``sum_i X0^{-t_i} = 1``; this module adds the
elementary bounds the 1994 paper uses for quick severity estimates and
the capacity-achieving symbol distribution ``p_i = X0^{-t_i}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..infotheory.noiseless import characteristic_root
from ..infotheory.probability import is_one

__all__ = ["SimpleTimingChannel", "stc_capacity", "stc_capacity_bounds"]


@dataclass(frozen=True)
class SimpleTimingChannel:
    """A noiseless timing channel with response times *times*."""

    times: Tuple[float, ...]

    def __init__(self, times: Sequence[float]) -> None:
        t = tuple(float(x) for x in times)
        if not t:
            raise ValueError("need at least one response time")
        if any(x <= 0 for x in t):
            raise ValueError("response times must be positive")
        object.__setattr__(self, "times", t)

    @property
    def num_symbols(self) -> int:
        return len(self.times)

    def characteristic_root(self) -> float:
        """The base ``X0 >= 1`` solving ``sum_i X0^{-t_i} = 1``."""
        return characteristic_root(self.times)

    def capacity(self) -> float:
        """Capacity in bits per time unit, ``log2(X0)``."""
        return float(np.log2(self.characteristic_root()))

    def optimal_distribution(self) -> np.ndarray:
        """Capacity-achieving symbol probabilities ``p_i = X0^{-t_i}``.

        For a memoryless noiseless timing channel the optimal input uses
        symbol ``i`` with probability ``X0^{-t_i}``; these sum to 1 by
        the characteristic equation.
        """
        x0 = self.characteristic_root()
        t = np.asarray(self.times)
        if is_one(x0):
            # Single symbol: the distribution is degenerate.
            return np.ones(1) if len(self.times) == 1 else np.full(
                len(self.times), 1.0 / len(self.times)
            )
        return x0 ** (-t)

    def mean_symbol_time(self) -> float:
        """Expected symbol duration under the optimal distribution."""
        return float(self.optimal_distribution() @ np.asarray(self.times))

    def bits_per_symbol(self) -> float:
        """Entropy of the optimal distribution, bits per symbol.

        Equals ``capacity() * mean_symbol_time()`` — a useful identity
        exercised by the test suite.
        """
        p = self.optimal_distribution()
        mask = p > 0
        return float(-(p[mask] * np.log2(p[mask])).sum())


def stc_capacity(times: Sequence[float]) -> float:
    """Capacity of the STC with response times *times*, bits/time unit."""
    return SimpleTimingChannel(times).capacity()


def stc_capacity_bounds(times: Sequence[float]) -> Tuple[float, float]:
    """Elementary (lower, upper) bounds on STC capacity.

    * upper: all ``k`` symbols at the *fastest* time — ``log2(k)/t_min``;
    * lower: uniform use of all symbols —
      ``log2(k) / mean(t)`` (rate of a code that ignores the
      duration structure).

    Both collapse onto the exact value when all times are equal.
    """
    t = np.asarray([float(x) for x in times])
    if t.size == 0:
        raise ValueError("need at least one response time")
    if np.any(t <= 0):
        raise ValueError("response times must be positive")
    k = t.size
    if k == 1:
        return 0.0, 0.0
    upper = float(np.log2(k) / t.min())
    lower = float(np.log2(k) / t.mean())
    return lower, upper
