"""Numerical capacity bounds for the (no-feedback) deletion channel.

The paper (Section 4.1) notes that the exact capacity of
deletion-insertion channels is unknown and points to the computational
bounds literature (Dobrushin; Vvedenskaya & Dobrushin; Dolgopolov).
This module implements laptop-scale versions of those computations for
the i.i.d. deletion channel, where each input symbol is independently
deleted with probability ``p_d``:

* :func:`gallager_lower_bound` — the classic achievability bound
  ``C >= 1 - H(p_d)`` (binary), from sequential-decoding arguments of
  the Gallager/Zigangirov school (ref [12]).
* :func:`exact_block_transition` / :func:`block_mutual_information_bound`
  — exact finite-block computation in the style of Vvedenskaya &
  Dobrushin (1968): build the full ``P(y|x)`` table for blocks of
  length ``n`` (outputs are all subsequences), run Blahut-Arimoto for
  ``max I_n``, and convert to a capacity *lower* bound via Dobrushin's
  near-superadditivity ``C >= (max I_n - log2(n+1)) / n``.
* :func:`erasure_upper_bound_binary` — the genie bound ``1 - p_d``
  (paper Theorem 1 with N = 1).
* :func:`fractional_upper_bound` — a simple strengthening for large
  ``p_d``: since capacity is at most the rate of the surviving symbols
  and vanishes at ``p_d = 1``, combine ``1 - p_d`` with the trivial
  cap at ``1 - H(p_d)``-style achievability gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..infotheory.blahut_arimoto import blahut_arimoto_guarded
from ..infotheory.entropy import binary_entropy, mutual_information
from ..infotheory.kernels import BATCH_SOLVER, blahut_arimoto_batch
from ..numerics import KernelBackend, SolverStatus, get_backend, record_status
from ..store import cached_batch, cached_solve, code_fingerprint

__all__ = [
    "gallager_lower_bound",
    "erasure_upper_bound_binary",
    "subsequence_embedding_counts",
    "exact_block_transition",
    "deletion_block_transition_stack",
    "BlockBoundResult",
    "block_mutual_information_bound",
    "block_bound_sweep",
    "deletion_capacity_bracket",
]

_MAX_EXACT_BLOCK = 12

#: Store namespace for the batched sweep. Distinct from the scalar
#: ``deletion_block_bound`` id on purpose: the batched kernel may
#: differ from the scalar oracle in the last ulp, so their cache
#: entries must never masquerade as one another.
BLOCK_BOUND_BATCH_FN_ID = "deletion_block_bound_batch"


def gallager_lower_bound(deletion_prob: float) -> float:
    """Gallager's achievability bound ``max(0, 1 - H(p_d))`` bits/symbol.

    Derived from random convolutional codes with sequential decoding
    over the binary deletion channel; loose for small ``p_d`` but the
    standard quick reference point.
    """
    if not 0.0 <= deletion_prob <= 1.0:
        raise ValueError("deletion_prob must be in [0, 1]")
    return max(0.0, 1.0 - float(binary_entropy(deletion_prob)))


def erasure_upper_bound_binary(deletion_prob: float) -> float:
    """The genie (erasure) bound ``1 - p_d`` — paper eq. (1), N = 1."""
    if not 0.0 <= deletion_prob <= 1.0:
        raise ValueError("deletion_prob must be in [0, 1]")
    return 1.0 - deletion_prob


def _all_binary_strings(max_len: int) -> List[np.ndarray]:
    """All binary strings of length 0..max_len, grouped by length."""
    groups = []
    for m in range(max_len + 1):
        if m == 0:
            groups.append(np.zeros((1, 0), dtype=np.int8))
            continue
        count = 1 << m
        codes = np.arange(count, dtype=np.int64)
        bits = ((codes[:, None] >> np.arange(m - 1, -1, -1)[None, :]) & 1).astype(
            np.int8
        )
        groups.append(bits)
    return groups


def subsequence_embedding_counts(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Count subsequence embeddings ``N(x, y)`` for all pairs.

    Parameters
    ----------
    xs:
        Array of shape ``(num_x, n)`` of input strings.
    ys:
        Array of shape ``(num_y, m)`` with ``m <= n``.

    Returns
    -------
    ndarray of shape ``(num_x, num_y)`` where entry ``(a, b)`` is the
    number of ways ``ys[b]`` occurs as a subsequence of ``xs[a]`` —
    the combinatorial core of the deletion-channel likelihood
    ``P(y|x) = N(x, y) p_d^{n-m} (1-p_d)^m``.
    """
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if xs.ndim != 2 or ys.ndim != 2:
        raise ValueError("xs and ys must be 2-D (batch, length) arrays")
    num_x, n = xs.shape
    num_y, m = ys.shape
    if m > n:
        return np.zeros((num_x, num_y), dtype=np.float64)
    # dp[j] = number of embeddings of y[:j] into the processed prefix of
    # x, vectorized over all (x, y) pairs. Iterate j descending so each
    # x-position is used at most once per embedding.
    dp = [np.zeros((num_x, num_y), dtype=np.float64) for _ in range(m + 1)]
    dp[0][:] = 1.0
    for i in range(n):
        xi = xs[:, i][:, None]  # (num_x, 1)
        for j in range(min(i + 1, m), 0, -1):
            match = (xi == ys[:, j - 1][None, :]).astype(np.float64)
            dp[j] += match * dp[j - 1]
    return dp[m]


def exact_block_transition(
    n: int, deletion_prob: float
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Exact block transition matrix of the binary deletion channel.

    Inputs are all ``2^n`` binary strings of length *n*; outputs are all
    binary strings of length ``0..n``. Entry ``(x, y)`` is
    ``N(x, y) p_d^{n-|y|} (1 - p_d)^{|y|}``.

    Returns ``(transition, output_groups)`` where *output_groups* lists
    the output strings by length (matching the column blocks).
    """
    if not 1 <= n <= _MAX_EXACT_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_EXACT_BLOCK}]")
    if not 0.0 <= deletion_prob <= 1.0:
        raise ValueError("deletion_prob must be in [0, 1]")
    pd = deletion_prob
    xs = _all_binary_strings(n)[n]
    groups = _all_binary_strings(n)
    blocks = []
    for m, ys in enumerate(groups):
        counts = subsequence_embedding_counts(xs, ys)
        weight = (pd ** (n - m)) * ((1.0 - pd) ** m)
        blocks.append(counts * weight)
    transition = np.concatenate(blocks, axis=1)
    # Rows sum to 1 exactly: sum_y N(x,y) pd^{n-m}(1-pd)^m = 1.
    return transition, groups


def deletion_block_transition_stack(
    n: int, deletion_probs: Sequence[float]
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Block transition tables for a whole ``p_d`` grid as one stack.

    The expensive part of :func:`exact_block_transition` — the
    subsequence embedding counts ``N(x, y)`` — does not depend on
    ``p_d`` at all; only the scalar weight ``p_d^{n-m} (1-p_d)^m``
    does. This builder therefore runs the counting DP **once** per
    output length and broadcasts the per-point weights over a leading
    grid axis, producing the ``(k, 2^n, num_outputs)`` stack the
    batched Blahut-Arimoto kernel consumes directly.

    Returns ``(stack, output_groups)`` with *output_groups* as in the
    scalar builder (shared by every grid point).
    """
    if not 1 <= n <= _MAX_EXACT_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_EXACT_BLOCK}]")
    pds = np.asarray(list(deletion_probs), dtype=float)
    if pds.ndim != 1 or pds.size == 0:
        raise ValueError("deletion_probs must be a non-empty 1-D sequence")
    if np.any(pds < 0) or np.any(pds > 1):
        raise ValueError("deletion_prob must be in [0, 1]")
    groups = _all_binary_strings(n)
    xs = groups[n]
    blocks = []
    for m, ys in enumerate(groups):
        counts = subsequence_embedding_counts(xs, ys)
        # Python-float powers, not vectorized ones: numpy's small-
        # integer-power fast path differs from libm pow by an ulp, and
        # the stack must be bitwise what the scalar builder produces.
        weights = np.array(
            [(pd ** (n - m)) * ((1.0 - pd) ** m) for pd in pds.tolist()]
        )
        blocks.append(counts[None, :, :] * weights[:, None, None])
    return np.concatenate(blocks, axis=2), groups


@dataclass(frozen=True)
class BlockBoundResult:
    """Finite-block information bound for the deletion channel.

    Attributes
    ----------
    block_length:
        ``n``.
    max_block_information:
        ``max_{p(x^n)} I(X^n; Y)`` in bits (Blahut-Arimoto).
    iid_block_information:
        ``I`` under i.i.d. uniform inputs, in bits.
    lower_bound:
        Dobrushin-corrected capacity lower bound
        ``(max I_n - log2(n+1)) / n`` bits/symbol.
    iid_rate:
        ``iid_block_information / n`` — the rate i.i.d. inputs achieve
        ignoring the block-boundary penalty (a useful diagnostic, not a
        formal bound).
    status:
        :class:`repro.numerics.SolverStatus` of the inner
        Blahut-Arimoto solve; a non-``converged`` status means the
        bound came from the best-so-far iterate.
    """

    block_length: int
    max_block_information: float
    iid_block_information: float
    lower_bound: float
    iid_rate: float
    status: SolverStatus = SolverStatus.CONVERGED


def _replay_block_status(result: BlockBoundResult) -> None:
    """Report the stored inner-solve status on a cache hit."""
    record_status("blahut_arimoto", result.status)


@cached_solve("deletion_block_bound", on_hit=_replay_block_status)
def block_mutual_information_bound(
    n: int, deletion_prob: float, *, tol: float = 1e-9
) -> BlockBoundResult:
    """Vvedenskaya-Dobrushin-style exact finite-block bound.

    Memoized through :mod:`repro.store` when a result store is active —
    the block table build and the Blahut-Arimoto solve are both skipped
    on a hit (this is the E9 grid's dominant cost).

    Computes the exact ``P(y|x)`` table for blocks of length *n*,
    maximizes block mutual information with Blahut-Arimoto, and applies
    the boundary correction ``log2(n+1)`` (the receiver can be told how
    many symbols of each block survived at a cost of at most
    ``log2(n+1)`` bits) to produce a true capacity lower bound.
    """
    transition, _groups = exact_block_transition(n, deletion_prob)
    result = blahut_arimoto_guarded(transition, tol=tol)
    uniform = np.full(transition.shape[0], 1.0 / transition.shape[0])
    iid_info = mutual_information(uniform, transition)
    lower = max(0.0, (result.capacity - np.log2(n + 1)) / n)
    return BlockBoundResult(
        block_length=n,
        max_block_information=result.capacity,
        iid_block_information=iid_info,
        lower_bound=float(lower),
        iid_rate=iid_info / n,
        status=result.status,
    )


def _replay_batch_block_status(result: BlockBoundResult) -> None:
    """Report the stored per-point solver status on a sweep cache hit."""
    record_status(BATCH_SOLVER, result.status)


def _solve_block_points(
    n: int, pds: Sequence[float], tol: float, backend: KernelBackend
) -> List[BlockBoundResult]:
    """Solve a set of grid points with one batched kernel invocation.

    Channels whose batched solve ends non-``converged`` fall back to
    the guarded scalar oracle (:func:`blahut_arimoto_guarded` and its
    damping/tolerance degradation ladder) — the batched fast path never
    weakens the sweep's worst-case answer quality.
    """
    stack, _groups = deletion_block_transition_stack(n, pds)
    batch = blahut_arimoto_batch(stack, tol=tol, backend=backend)
    uniform = np.full(stack.shape[1], 1.0 / stack.shape[1])
    results = []
    for i in range(len(pds)):
        capacity = float(batch.capacity[i])
        status = batch.statuses[i]
        if status is not SolverStatus.CONVERGED:
            guarded = blahut_arimoto_guarded(stack[i], tol=tol)
            capacity, status = guarded.capacity, guarded.status
        iid_info = mutual_information(uniform, stack[i])
        lower = max(0.0, (capacity - np.log2(n + 1)) / n)
        results.append(
            BlockBoundResult(
                block_length=n,
                max_block_information=capacity,
                iid_block_information=iid_info,
                lower_bound=float(lower),
                iid_rate=iid_info / n,
                status=status,
            )
        )
    return results


_SWEEP_FINGERPRINT: List[str] = []  # lazily computed, cached


def block_bound_sweep(
    deletion_probs: Sequence[float],
    *,
    block_length: int = 8,
    tol: float = 1e-9,
    backend: Optional[Union[str, KernelBackend]] = None,
) -> List[BlockBoundResult]:
    """Finite-block bounds for a whole ``p_d`` grid, batched.

    The sweep twin of :func:`block_mutual_information_bound`: the
    embedding counts are built once
    (:func:`deletion_block_transition_stack`) and every grid point's
    Blahut-Arimoto runs inside one
    :func:`repro.infotheory.kernels.blahut_arimoto_batch` invocation.
    Memoized per point through :func:`repro.store.cached_batch` under
    the ``deletion_block_bound_batch`` namespace when a store is active
    — a warm sweep does zero solver work, and a partially-warm sweep
    batch-solves exactly its missing points. The resolved kernel
    backend's name is part of each cache key: two backends may differ
    in the last ulp, so their entries never mix.
    """
    be = get_backend(backend)
    pds = [float(p) for p in deletion_probs]
    if not pds:
        return []
    if not _SWEEP_FINGERPRINT:
        _SWEEP_FINGERPRINT.append(code_fingerprint(_solve_block_points))
    params = [
        {
            "block_length": block_length,
            "deletion_prob": pd,
            "tol": tol,
            "backend": be.name,
        }
        for pd in pds
    ]
    return cached_batch(
        BLOCK_BOUND_BATCH_FN_ID,
        params,
        lambda misses: _solve_block_points(
            block_length, [pds[i] for i in misses], tol, be
        ),
        fingerprint=_SWEEP_FINGERPRINT[0],
        on_hit=_replay_batch_block_status,
    )


def deletion_capacity_bracket(
    deletion_prob: float,
    *,
    block_length: int = 8,
    include_block_bound: bool = True,
) -> Dict[str, float]:
    """Bracket the binary deletion-channel capacity.

    Returns a dict with the Gallager lower bound, the optional
    finite-block lower bound, their max (best lower), and the erasure
    upper bound — the series plotted by experiment E9.
    """
    lower_gallager = gallager_lower_bound(deletion_prob)
    result: Dict[str, float] = {
        "gallager_lower": lower_gallager,
        "erasure_upper": erasure_upper_bound_binary(deletion_prob),
    }
    if include_block_bound:
        block = block_mutual_information_bound(block_length, deletion_prob)
        result["block_lower"] = block.lower_bound
        result["iid_rate"] = block.iid_rate
        result["best_lower"] = max(lower_gallager, block.lower_bound)
    else:
        result["best_lower"] = lower_gallager
    return result
