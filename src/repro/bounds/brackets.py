"""Capacity-bracket sweeps combining all bound families (experiment E9).

For each deletion probability in a sweep this produces the full ladder

    Gallager lower <= block lower <= (true capacity) <= erasure upper

plus the feedback-assisted capacities from the paper's theorems, so the
cost of *not* having feedback is visible in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..core.capacity import feedback_lower_bound
from ..infotheory.probability import validate_probability
from ..numerics import KernelBackend, SolverStatus
from .deletion import (
    block_bound_sweep,
    erasure_upper_bound_binary,
    gallager_lower_bound,
)

__all__ = ["BracketRow", "capacity_bracket_sweep"]


@dataclass(frozen=True)
class BracketRow:
    """One row of the E9 bracket table (binary alphabet, N = 1).

    ``solver_status`` is the :class:`repro.numerics.SolverStatus` of
    the finite-block Blahut-Arimoto solve behind ``block_lower`` — a
    non-``converged`` row flags a bound built from a best-so-far
    iterate (the ordering checks still apply).
    """

    deletion_prob: float
    gallager_lower: float
    block_lower: float
    best_lower: float
    erasure_upper: float
    feedback_capacity: float
    solver_status: SolverStatus = SolverStatus.CONVERGED

    def __post_init__(self) -> None:
        validate_probability(self.deletion_prob, "deletion_prob")

    def is_consistent(self) -> bool:
        """All bounds in the right order (lower <= upper ladder)."""
        return (
            0.0 <= self.best_lower <= self.erasure_upper + 1e-12
            and self.best_lower >= max(self.gallager_lower, self.block_lower) - 1e-12
            and abs(self.feedback_capacity - self.erasure_upper) < 1e-12
        )


def capacity_bracket_sweep(
    deletion_probs: Sequence[float],
    *,
    block_length: int = 8,
    backend: Optional[Union[str, KernelBackend]] = None,
) -> List[BracketRow]:
    """Compute the bound ladder for each ``p_d`` in *deletion_probs*.

    The feedback capacity column is the paper's Theorem 3 value
    ``1 - p_d`` (N = 1) — with feedback the bracket collapses to its
    upper edge, the quantitative content of Section 4.2.1.

    The finite-block column is computed for the whole grid at once by
    :func:`repro.bounds.deletion.block_bound_sweep` — one shared table
    build plus a single batched Blahut-Arimoto invocation (memoized
    per point when a result store is active); *backend* selects the
    kernel backend for that solve.
    """
    rows = []
    blocks = block_bound_sweep(
        deletion_probs, block_length=block_length, backend=backend
    )
    for pd, block in zip(deletion_probs, blocks):
        pd = float(pd)
        gallager = gallager_lower_bound(pd)
        rows.append(
            BracketRow(
                deletion_prob=pd,
                gallager_lower=gallager,
                block_lower=block.lower_bound,
                best_lower=max(gallager, block.lower_bound),
                erasure_upper=erasure_upper_bound_binary(pd),
                feedback_capacity=feedback_lower_bound(1, pd, 0.0),
                solver_status=block.status,
            )
        )
    return rows
