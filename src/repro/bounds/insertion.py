"""Numerical bounds for the (no-feedback) random-insertion channel.

The Definition-1 insertion process: at each channel use, with
probability ``p_i`` a uniformly random symbol is emitted *without*
consuming the input queue; otherwise the next queued symbol is
transmitted. Over a block of ``n`` input symbols, the output is the
input with a Geometric(1 - p_i) number of random symbols slipped in
before each transmitted symbol. The channel stops when the last input
symbol is transmitted, so no trailing insertions occur.

:func:`insertion_block_transition` builds the exact ``P(y|x)`` table up
to a configurable insertion budget; :func:`insertion_block_bound` runs
Blahut-Arimoto on it for a finite-block information estimate, mirroring
the deletion-side computation in :mod:`repro.bounds.deletion`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..infotheory.blahut_arimoto import blahut_arimoto
from ..infotheory.entropy import mutual_information

__all__ = [
    "insertion_block_transition",
    "InsertionBlockResult",
    "insertion_block_bound",
    "insertion_tail_mass",
]

_MAX_BLOCK = 8
_MAX_EXTRA = 8


def _strings_of_length(m: int) -> np.ndarray:
    if m == 0:
        return np.zeros((1, 0), dtype=np.int8)
    codes = np.arange(1 << m, dtype=np.int64)
    return ((codes[:, None] >> np.arange(m - 1, -1, -1)[None, :]) & 1).astype(np.int8)


def insertion_tail_mass(n: int, insertion_prob: float, max_extra: int) -> float:
    """Probability that a block of *n* symbols suffers more than
    *max_extra* insertions — the mass truncated from the exact table.

    The total number of insertions is NegativeBinomial(n, 1 - p_i).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= insertion_prob < 1.0:
        raise ValueError("insertion_prob must be in [0, 1)")
    if max_extra < 0:
        raise ValueError("max_extra must be non-negative")
    pi = insertion_prob
    q = 1.0 - pi
    # P(K = k) = C(n + k - 1, k) pi^k q^n
    mass = 0.0
    coeff = 1.0
    for k in range(max_extra + 1):
        if k > 0:
            coeff *= (n + k - 1) / k
        mass += coeff * (pi**k) * (q**n)
    return max(0.0, 1.0 - mass)


def _pair_probabilities(
    xs: np.ndarray, ys: np.ndarray, insertion_prob: float
) -> np.ndarray:
    """Exact ``P(y|x)`` for all pairs via the two-index DP.

    ``f(i, j)`` = probability the channel has consumed ``i`` input
    symbols and emitted the first ``j`` output symbols. Transitions:
    insertion (prob ``p_i / 2`` for the matching bit value) or
    transmission (prob ``1 - p_i``, requires ``x_i == y_j``). The final
    event must be the transmission of ``x_n``, so the last column is
    filled by the transmission term only.
    """
    num_x, n = xs.shape
    num_y, m = ys.shape
    pi = insertion_prob
    if m < n:
        return np.zeros((num_x, num_y))
    trans = 1.0 - pi
    half_ins = pi / 2.0
    # f has shape (n + 1, num_x, num_y) over output prefix j; roll j.
    f_prev = np.zeros((n + 1, num_x, num_y))
    f_prev[0] = 1.0  # j = 0: nothing emitted, nothing consumed
    # f_prev[i > 0] at j = 0 stays 0: consuming input emits a symbol.
    for j in range(1, m + 1):
        f_cur = np.zeros_like(f_prev)
        yj = ys[:, j - 1][None, :]  # (1, num_y)
        for i in range(0, n + 1):
            acc = np.zeros((num_x, num_y))
            if i < n:
                # Insertion before consuming input i+1 (only legal while
                # input remains): emitted bit is uniform, must match y_j.
                acc += half_ins * f_prev[i]
            if i > 0:
                match = (xs[:, i - 1][:, None] == yj).astype(float)
                acc += trans * match * f_prev[i - 1]
            f_cur[i] = acc
        f_prev = f_cur
    return f_prev[n]


def insertion_block_transition(
    n: int, insertion_prob: float, *, max_extra: int = 4
) -> Tuple[np.ndarray, List[np.ndarray], float]:
    """Exact (truncated) block transition table for the insertion channel.

    Outputs are all binary strings of length ``n .. n + max_extra``; the
    truncated tail mass is folded into a dedicated "overflow" column so
    rows still sum to 1 (the overflow output tells the receiver nothing,
    which slightly *under*-estimates the block information — keeping the
    lower-bound direction honest).

    Returns ``(transition, output_groups, tail_mass_max)`` where
    *tail_mass_max* is the largest per-row truncated probability.
    """
    if not 1 <= n <= _MAX_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_BLOCK}]")
    if not 0 <= max_extra <= _MAX_EXTRA:
        raise ValueError(f"max_extra must be in [0, {_MAX_EXTRA}]")
    if not 0.0 <= insertion_prob < 1.0:
        raise ValueError("insertion_prob must be in [0, 1)")
    xs = _strings_of_length(n)
    blocks = []
    groups = []
    for m in range(n, n + max_extra + 1):
        ys = _strings_of_length(m)
        groups.append(ys)
        blocks.append(_pair_probabilities(xs, ys, insertion_prob))
    transition = np.concatenate(blocks, axis=1)
    row_sums = transition.sum(axis=1)
    overflow = np.clip(1.0 - row_sums, 0.0, 1.0)[:, None]
    transition = np.concatenate([transition, overflow], axis=1)
    return transition, groups, float(overflow.max())


@dataclass(frozen=True)
class InsertionBlockResult:
    """Finite-block information estimate for the insertion channel."""

    block_length: int
    max_block_information: float
    iid_block_information: float
    rate_per_symbol: float
    truncated_mass: float


def insertion_block_bound(
    n: int, insertion_prob: float, *, max_extra: int = 4, tol: float = 1e-9
) -> InsertionBlockResult:
    """Blahut-Arimoto on the exact truncated block table.

    ``rate_per_symbol`` is ``max I_n / n`` — an estimate of the
    achievable rate per input symbol for i.i.d.-block coding; the
    overflow-column truncation only lowers it.
    """
    transition, _groups, tail = insertion_block_transition(
        n, insertion_prob, max_extra=max_extra
    )
    result = blahut_arimoto(transition, tol=tol)
    uniform = np.full(transition.shape[0], 1.0 / transition.shape[0])
    iid_info = mutual_information(uniform, transition)
    return InsertionBlockResult(
        block_length=n,
        max_block_information=result.capacity,
        iid_block_information=iid_info,
        rate_per_symbol=result.capacity / n,
        truncated_mass=tail,
    )
