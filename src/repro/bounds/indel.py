"""Exact finite-block computation for the joint deletion-insertion
channel — the paper's actual channel, no feedback.

Combines the subsequence machinery of :mod:`repro.bounds.deletion` and
the interleaving DP of :mod:`repro.bounds.insertion`: each channel use
deletes the next queued bit (``p_d``), inserts a uniform bit (``p_i``),
or transmits (``p_t = 1 - p_d - p_i``); the block table enumerates all
outputs up to an insertion budget, with the truncated tail folded into
an uninformative overflow column (keeping the lower-bound direction
honest). Blahut-Arimoto on the table then gives the finite-block
information, and Dobrushin's boundary correction a true capacity lower
bound for the joint channel — the quantity the Theorem-1 erasure bound
upper-bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.capacity import erasure_upper_bound
from ..infotheory.blahut_arimoto import blahut_arimoto
from ..infotheory.entropy import mutual_information
from ..infotheory.probability import validate_probability
from ..store import cached_solve

__all__ = ["indel_block_transition", "IndelBlockResult", "indel_block_bound"]

_MAX_BLOCK = 8
_MAX_EXTRA = 6


def _strings_of_length(m: int) -> np.ndarray:
    if m == 0:
        return np.zeros((1, 0), dtype=np.int8)
    codes = np.arange(1 << m, dtype=np.int64)
    return ((codes[:, None] >> np.arange(m - 1, -1, -1)[None, :]) & 1).astype(np.int8)


def _pair_probabilities(
    xs: np.ndarray,
    ys: np.ndarray,
    deletion_prob: float,
    insertion_prob: float,
) -> np.ndarray:
    """Exact ``P(y|x)`` for all pairs via the two-index DP.

    ``f(i, j)`` = probability of having consumed ``i`` input bits and
    emitted the first ``j`` output bits. Insertions are only possible
    while input remains (the channel stops once the queue is empty).
    """
    num_x, n = xs.shape
    num_y, m = ys.shape
    pd = deletion_prob
    pi = insertion_prob
    pt = 1.0 - pd - pi
    half_ins = pi / 2.0

    f_prev_j = np.zeros((n + 1, num_x, num_y))  # f(., j-1)
    f_cur_j = np.zeros((n + 1, num_x, num_y))  # f(., j)
    # j = 0 column: only deletions can have consumed inputs.
    f_cur_j[0] = 1.0
    for i in range(1, n + 1):
        f_cur_j[i] = f_cur_j[i - 1] * pd
    for j in range(1, m + 1):
        f_prev_j, f_cur_j = f_cur_j, np.zeros_like(f_cur_j)
        yj = ys[:, j - 1][None, :]
        for i in range(0, n + 1):
            acc = np.zeros((num_x, num_y))
            if i < n:
                # Insertion emitting y_j, input untouched.
                acc += half_ins * f_prev_j[i]
            if i > 0:
                match = (xs[:, i - 1][:, None] == yj).astype(float)
                acc += pt * match * f_prev_j[i - 1]
                # Deletion consumes input i without emitting: same j.
                acc += pd * f_cur_j[i - 1]
            f_cur_j[i] = acc
    return f_cur_j[n]


def indel_block_transition(
    n: int,
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_extra: int = 4,
) -> Tuple[np.ndarray, List[np.ndarray], float]:
    """Exact (truncated) block table for the deletion-insertion channel.

    Outputs are all binary strings of length ``0 .. n + max_extra``
    plus one overflow column absorbing the truncated insertion tail.
    Returns ``(transition, output_groups, max_tail_mass)``.
    """
    if not 1 <= n <= _MAX_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_BLOCK}]")
    if not 0 <= max_extra <= _MAX_EXTRA:
        raise ValueError(f"max_extra must be in [0, {_MAX_EXTRA}]")
    if not 0.0 <= deletion_prob <= 1.0 or not 0.0 <= insertion_prob < 1.0:
        raise ValueError("probabilities out of range")
    if deletion_prob + insertion_prob > 1.0:
        raise ValueError("P_d + P_i must not exceed 1")
    xs = _strings_of_length(n)
    blocks = []
    groups = []
    for m in range(0, n + max_extra + 1):
        ys = _strings_of_length(m)
        groups.append(ys)
        blocks.append(
            _pair_probabilities(xs, ys, deletion_prob, insertion_prob)
        )
    transition = np.concatenate(blocks, axis=1)
    row_sums = transition.sum(axis=1)
    overflow = np.clip(1.0 - row_sums, 0.0, 1.0)[:, None]
    transition = np.concatenate([transition, overflow], axis=1)
    return transition, groups, float(overflow.max())


@dataclass(frozen=True)
class IndelBlockResult:
    """Finite-block bound for the joint deletion-insertion channel."""

    block_length: int
    deletion_prob: float
    insertion_prob: float
    max_block_information: float
    iid_block_information: float
    lower_bound: float
    erasure_upper: float
    truncated_mass: float

    def __post_init__(self) -> None:
        validate_probability(self.deletion_prob, "deletion_prob")
        validate_probability(self.insertion_prob, "insertion_prob")

    @property
    def bracket_width(self) -> float:
        return self.erasure_upper - self.lower_bound


@cached_solve("indel_block_bound")
def indel_block_bound(
    n: int,
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_extra: int = 4,
    tol: float = 1e-9,
) -> IndelBlockResult:
    """Blahut-Arimoto block bound plus the Theorem-1 upper bound.

    The lower bound applies Dobrushin's boundary correction
    ``log2`` of the number of possible per-block output lengths.
    Memoized through :mod:`repro.store` when a result store is active
    (one entry per ``(n, P_d, P_i, max_extra, tol)`` grid point).
    """
    transition, groups, tail = indel_block_transition(
        n, deletion_prob, insertion_prob, max_extra=max_extra
    )
    result = blahut_arimoto(transition, tol=tol)
    uniform = np.full(transition.shape[0], 1.0 / transition.shape[0])
    iid_info = mutual_information(uniform, transition)
    num_lengths = len(groups) + 1  # possible output lengths + overflow
    lower = max(0.0, (result.capacity - np.log2(num_lengths)) / n)
    return IndelBlockResult(
        block_length=n,
        deletion_prob=deletion_prob,
        insertion_prob=insertion_prob,
        max_block_information=result.capacity,
        iid_block_information=iid_info,
        lower_bound=float(lower),
        erasure_upper=erasure_upper_bound(1, deletion_prob),
        truncated_mass=tail,
    )
