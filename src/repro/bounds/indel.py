"""Exact finite-block computation for the joint deletion-insertion
channel — the paper's actual channel, no feedback.

Combines the subsequence machinery of :mod:`repro.bounds.deletion` and
the interleaving DP of :mod:`repro.bounds.insertion`: each channel use
deletes the next queued bit (``p_d``), inserts a uniform bit (``p_i``),
or transmits (``p_t = 1 - p_d - p_i``); the block table enumerates all
outputs up to an insertion budget, with the truncated tail folded into
an uninformative overflow column (keeping the lower-bound direction
honest). Blahut-Arimoto on the table then gives the finite-block
information, and Dobrushin's boundary correction a true capacity lower
bound for the joint channel — the quantity the Theorem-1 erasure bound
upper-bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.capacity import erasure_upper_bound
from ..infotheory.blahut_arimoto import blahut_arimoto
from ..infotheory.entropy import mutual_information
from ..infotheory.kernels import BATCH_SOLVER, blahut_arimoto_batch
from ..infotheory.probability import validate_probability
from ..numerics import KernelBackend, SolverStatus, get_backend, record_status
from ..store import cached_batch, cached_solve, code_fingerprint

__all__ = [
    "indel_block_transition",
    "indel_block_transition_stack",
    "IndelBlockResult",
    "indel_block_bound",
    "indel_block_bound_sweep",
]

_MAX_BLOCK = 8
_MAX_EXTRA = 6

#: Store namespace for the batched (P_d, P_i) grid sweep; separate
#: from the scalar ``indel_block_bound`` id (ulp-level honesty).
INDEL_BATCH_FN_ID = "indel_block_bound_batch"


def _strings_of_length(m: int) -> np.ndarray:
    if m == 0:
        return np.zeros((1, 0), dtype=np.int8)
    codes = np.arange(1 << m, dtype=np.int64)
    return ((codes[:, None] >> np.arange(m - 1, -1, -1)[None, :]) & 1).astype(np.int8)


def _pair_probabilities(
    xs: np.ndarray,
    ys: np.ndarray,
    deletion_prob: float,
    insertion_prob: float,
) -> np.ndarray:
    """Exact ``P(y|x)`` for all pairs via the two-index DP.

    ``f(i, j)`` = probability of having consumed ``i`` input bits and
    emitted the first ``j`` output bits. Insertions are only possible
    while input remains (the channel stops once the queue is empty).
    """
    num_x, n = xs.shape
    num_y, m = ys.shape
    pd = deletion_prob
    pi = insertion_prob
    pt = 1.0 - pd - pi
    half_ins = pi / 2.0

    f_prev_j = np.zeros((n + 1, num_x, num_y))  # f(., j-1)
    f_cur_j = np.zeros((n + 1, num_x, num_y))  # f(., j)
    # j = 0 column: only deletions can have consumed inputs.
    f_cur_j[0] = 1.0
    for i in range(1, n + 1):
        f_cur_j[i] = f_cur_j[i - 1] * pd
    for j in range(1, m + 1):
        f_prev_j, f_cur_j = f_cur_j, np.zeros_like(f_cur_j)
        yj = ys[:, j - 1][None, :]
        for i in range(0, n + 1):
            acc = np.zeros((num_x, num_y))
            if i < n:
                # Insertion emitting y_j, input untouched.
                acc += half_ins * f_prev_j[i]
            if i > 0:
                match = (xs[:, i - 1][:, None] == yj).astype(float)
                acc += pt * match * f_prev_j[i - 1]
                # Deletion consumes input i without emitting: same j.
                acc += pd * f_cur_j[i - 1]
            f_cur_j[i] = acc
    return f_cur_j[n]


def _pair_probabilities_stack(
    xs: np.ndarray,
    ys: np.ndarray,
    deletion_probs: np.ndarray,
    insertion_probs: np.ndarray,
) -> np.ndarray:
    """The two-index DP of :func:`_pair_probabilities`, vectorized over
    a leading ``(k,)`` parameter axis.

    All ``(P_d, P_i)`` grid points share the same match structure
    (which depends only on ``xs``/``ys``), so the per-point
    probabilities enter the recursion purely as ``(k, 1, 1)``
    broadcasts — one DP pass prices every grid point at once. Returns
    shape ``(k, num_x, num_y)``.
    """
    num_x, n = xs.shape
    num_y, m = ys.shape
    pd = np.asarray(deletion_probs, dtype=float)[:, None, None]
    pi = np.asarray(insertion_probs, dtype=float)[:, None, None]
    k = pd.shape[0]
    pt = 1.0 - pd - pi
    half_ins = pi / 2.0

    f_prev_j = np.zeros((n + 1, k, num_x, num_y))  # f(., j-1)
    f_cur_j = np.zeros((n + 1, k, num_x, num_y))  # f(., j)
    # j = 0 column: only deletions can have consumed inputs.
    f_cur_j[0] = 1.0
    for i in range(1, n + 1):
        f_cur_j[i] = f_cur_j[i - 1] * pd
    for j in range(1, m + 1):
        f_prev_j, f_cur_j = f_cur_j, np.zeros_like(f_cur_j)
        yj = ys[:, j - 1][None, :]
        for i in range(0, n + 1):
            acc = np.zeros((k, num_x, num_y))
            if i < n:
                # Insertion emitting y_j, input untouched.
                acc += half_ins * f_prev_j[i]
            if i > 0:
                match = (xs[:, i - 1][:, None] == yj).astype(float)[None]
                acc += pt * match * f_prev_j[i - 1]
                # Deletion consumes input i without emitting: same j.
                acc += pd * f_cur_j[i - 1]
            f_cur_j[i] = acc
    return f_cur_j[n]


def indel_block_transition_stack(
    n: int,
    grid: Sequence[Tuple[float, float]],
    *,
    max_extra: int = 4,
) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
    """Truncated block tables for a whole ``(P_d, P_i)`` grid as a stack.

    Every grid point at the same ``(n, max_extra)`` shares the output
    alphabet and column layout, so the stack builder runs each output
    length's DP once (vectorized over the parameter axis via
    :func:`_pair_probabilities_stack`) and stacks the results into the
    ``(k, 2^n, num_outputs + 1)`` array the batched kernel consumes.
    Returns ``(stack, output_groups, max_tail_mass_per_point)``.
    """
    if not 1 <= n <= _MAX_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_BLOCK}]")
    if not 0 <= max_extra <= _MAX_EXTRA:
        raise ValueError(f"max_extra must be in [0, {_MAX_EXTRA}]")
    points = [(float(pd), float(pi)) for pd, pi in grid]
    if not points:
        raise ValueError("grid must be non-empty")
    for pd, pi in points:
        if not 0.0 <= pd <= 1.0 or not 0.0 <= pi < 1.0:
            raise ValueError("probabilities out of range")
        if pd + pi > 1.0:
            raise ValueError("P_d + P_i must not exceed 1")
    pds = np.array([pd for pd, _ in points])
    pis = np.array([pi for _, pi in points])
    xs = _strings_of_length(n)
    blocks = []
    groups = []
    for m in range(0, n + max_extra + 1):
        ys = _strings_of_length(m)
        groups.append(ys)
        blocks.append(_pair_probabilities_stack(xs, ys, pds, pis))
    transition = np.concatenate(blocks, axis=2)
    row_sums = transition.sum(axis=2)
    overflow = np.clip(1.0 - row_sums, 0.0, 1.0)[:, :, None]
    transition = np.concatenate([transition, overflow], axis=2)
    return transition, groups, overflow.max(axis=(1, 2))


def indel_block_transition(
    n: int,
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_extra: int = 4,
) -> Tuple[np.ndarray, List[np.ndarray], float]:
    """Exact (truncated) block table for the deletion-insertion channel.

    Outputs are all binary strings of length ``0 .. n + max_extra``
    plus one overflow column absorbing the truncated insertion tail.
    Returns ``(transition, output_groups, max_tail_mass)``.
    """
    if not 1 <= n <= _MAX_BLOCK:
        raise ValueError(f"block length must be in [1, {_MAX_BLOCK}]")
    if not 0 <= max_extra <= _MAX_EXTRA:
        raise ValueError(f"max_extra must be in [0, {_MAX_EXTRA}]")
    if not 0.0 <= deletion_prob <= 1.0 or not 0.0 <= insertion_prob < 1.0:
        raise ValueError("probabilities out of range")
    if deletion_prob + insertion_prob > 1.0:
        raise ValueError("P_d + P_i must not exceed 1")
    xs = _strings_of_length(n)
    blocks = []
    groups = []
    for m in range(0, n + max_extra + 1):
        ys = _strings_of_length(m)
        groups.append(ys)
        blocks.append(
            _pair_probabilities(xs, ys, deletion_prob, insertion_prob)
        )
    transition = np.concatenate(blocks, axis=1)
    row_sums = transition.sum(axis=1)
    overflow = np.clip(1.0 - row_sums, 0.0, 1.0)[:, None]
    transition = np.concatenate([transition, overflow], axis=1)
    return transition, groups, float(overflow.max())


@dataclass(frozen=True)
class IndelBlockResult:
    """Finite-block bound for the joint deletion-insertion channel.

    ``status`` is the terminal :class:`repro.numerics.SolverStatus` of
    the inner Blahut-Arimoto solve (scalar or batched); a
    non-``converged`` value flags a bound built from a best-so-far
    iterate.
    """

    block_length: int
    deletion_prob: float
    insertion_prob: float
    max_block_information: float
    iid_block_information: float
    lower_bound: float
    erasure_upper: float
    truncated_mass: float
    status: SolverStatus = SolverStatus.CONVERGED

    def __post_init__(self) -> None:
        validate_probability(self.deletion_prob, "deletion_prob")
        validate_probability(self.insertion_prob, "insertion_prob")

    @property
    def bracket_width(self) -> float:
        return self.erasure_upper - self.lower_bound


@cached_solve("indel_block_bound")
def indel_block_bound(
    n: int,
    deletion_prob: float,
    insertion_prob: float,
    *,
    max_extra: int = 4,
    tol: float = 1e-9,
) -> IndelBlockResult:
    """Blahut-Arimoto block bound plus the Theorem-1 upper bound.

    The lower bound applies Dobrushin's boundary correction
    ``log2`` of the number of possible per-block output lengths.
    Memoized through :mod:`repro.store` when a result store is active
    (one entry per ``(n, P_d, P_i, max_extra, tol)`` grid point).
    """
    transition, groups, tail = indel_block_transition(
        n, deletion_prob, insertion_prob, max_extra=max_extra
    )
    result = blahut_arimoto(transition, tol=tol)
    uniform = np.full(transition.shape[0], 1.0 / transition.shape[0])
    iid_info = mutual_information(uniform, transition)
    num_lengths = len(groups) + 1  # possible output lengths + overflow
    lower = max(0.0, (result.capacity - np.log2(num_lengths)) / n)
    return IndelBlockResult(
        block_length=n,
        deletion_prob=deletion_prob,
        insertion_prob=insertion_prob,
        max_block_information=result.capacity,
        iid_block_information=iid_info,
        lower_bound=float(lower),
        erasure_upper=erasure_upper_bound(1, deletion_prob),
        truncated_mass=tail,
        status=result.status,
    )


def _replay_indel_batch_status(result: IndelBlockResult) -> None:
    """Report the stored per-point solver status on a sweep cache hit."""
    record_status(BATCH_SOLVER, result.status)


def _solve_indel_points(
    n: int,
    points: Sequence[Tuple[float, float]],
    max_extra: int,
    tol: float,
    backend: KernelBackend,
) -> List[IndelBlockResult]:
    """Solve a set of grid points with one batched kernel invocation."""
    stack, groups, tails = indel_block_transition_stack(
        n, points, max_extra=max_extra
    )
    batch = blahut_arimoto_batch(stack, tol=tol, backend=backend)
    uniform = np.full(stack.shape[1], 1.0 / stack.shape[1])
    num_lengths = len(groups) + 1  # possible output lengths + overflow
    results = []
    for i, (pd, pi) in enumerate(points):
        capacity = float(batch.capacity[i])
        lower = max(0.0, (capacity - np.log2(num_lengths)) / n)
        results.append(
            IndelBlockResult(
                block_length=n,
                deletion_prob=pd,
                insertion_prob=pi,
                max_block_information=capacity,
                iid_block_information=mutual_information(uniform, stack[i]),
                lower_bound=float(lower),
                erasure_upper=erasure_upper_bound(1, pd),
                truncated_mass=float(tails[i]),
                status=batch.statuses[i],
            )
        )
    return results


_SWEEP_FINGERPRINT: List[str] = []  # lazily computed, cached


def indel_block_bound_sweep(
    grid: Sequence[Tuple[float, float]],
    *,
    block_length: int = 6,
    max_extra: int = 4,
    tol: float = 1e-9,
    backend: Optional[Union[str, KernelBackend]] = None,
) -> List[IndelBlockResult]:
    """Finite-block indel bounds over a ``(P_d, P_i)`` grid, batched.

    The sweep twin of :func:`indel_block_bound`: every grid point's
    table comes out of one parameter-axis DP pass
    (:func:`indel_block_transition_stack`) and every Blahut-Arimoto
    solve runs inside one batched kernel invocation. Memoized per point
    through :func:`repro.store.cached_batch` under the
    ``indel_block_bound_batch`` namespace (the kernel backend's name is
    part of each key), so warm sweeps do zero solver work and
    partially-warm sweeps batch-solve only their missing points.
    """
    be = get_backend(backend)
    points = [(float(pd), float(pi)) for pd, pi in grid]
    if not points:
        return []
    if not _SWEEP_FINGERPRINT:
        _SWEEP_FINGERPRINT.append(code_fingerprint(_solve_indel_points))
    params = [
        {
            "block_length": block_length,
            "deletion_prob": pd,
            "insertion_prob": pi,
            "max_extra": max_extra,
            "tol": tol,
            "backend": be.name,
        }
        for pd, pi in points
    ]
    return cached_batch(
        INDEL_BATCH_FN_ID,
        params,
        lambda misses: _solve_indel_points(
            block_length, [points[i] for i in misses], max_extra, tol, be
        ),
        fingerprint=_SWEEP_FINGERPRINT[0],
        on_hit=_replay_indel_batch_status,
    )
