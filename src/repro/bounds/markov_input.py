"""Markov-input achievable rates for the deletion channel.

The capacity-achieving inputs of a deletion channel are *bursty*: long
runs survive deletions recognizably, so a first-order Markov input with
a low flip probability beats i.i.d. coin flips (Dobrushin's school
already computed such improvements numerically; modern work pushed the
same idea much further). This module optimizes the block information of
a symmetric binary Markov source through the exact finite-block
transition table of :mod:`repro.bounds.deletion`, giving a strictly
better laptop-scale lower bound than the i.i.d. computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import optimize

from ..infotheory.entropy import mutual_information
from ..infotheory.probability import is_one, is_zero, validate_probability
from .deletion import deletion_block_transition_stack, exact_block_transition

__all__ = [
    "markov_block_distribution",
    "markov_block_information",
    "MarkovInputBound",
    "optimize_markov_input",
    "optimize_markov_input_sweep",
]


def markov_block_distribution(n: int, flip_prob: float) -> np.ndarray:
    """Distribution over all ``2^n`` binary blocks from a symmetric
    first-order Markov source with transition (flip) probability *f*.

    The stationary distribution is uniform, so
    ``P(x^n) = (1/2) f^k (1-f)^{n-1-k}`` where ``k`` counts the
    adjacent disagreements in the block.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= flip_prob <= 1.0:
        raise ValueError("flip_prob must be in [0, 1]")
    codes = np.arange(1 << n, dtype=np.int64)
    bits = ((codes[:, None] >> np.arange(n - 1, -1, -1)[None, :]) & 1).astype(
        np.int8
    )
    if n == 1:
        return np.full(2, 0.5)
    flips = (bits[:, 1:] != bits[:, :-1]).sum(axis=1)
    f = flip_prob
    # Guard the degenerate endpoints: 0^0 = 1 by convention here.
    with np.errstate(divide="ignore"):
        probs = 0.5 * np.where(
            is_zero(f) & (flips > 0),
            0.0,
            np.where(
                is_one(f) & (flips < n - 1),
                0.0,
                (f**flips) * ((1 - f) ** (n - 1 - flips)),
            ),
        )
    return probs


def markov_block_information(n: int, deletion_prob: float, flip_prob: float) -> float:
    """Exact block mutual information ``I(X^n; Y)`` under the Markov
    input, in bits."""
    transition, _ = exact_block_transition(n, deletion_prob)
    dist = markov_block_distribution(n, flip_prob)
    return mutual_information(dist, transition)


@dataclass(frozen=True)
class MarkovInputBound:
    """Optimized Markov-input bound for one ``(n, p_d)`` point.

    Attributes
    ----------
    block_length, deletion_prob:
        The computation point.
    best_flip_prob:
        Optimal Markov flip probability (``0.5`` recovers i.i.d.).
    block_information:
        ``I(X^n; Y)`` at the optimum, bits.
    lower_bound:
        Dobrushin-corrected capacity lower bound
        ``(I_n - log2(n+1)) / n``.
    iid_information:
        ``I`` at ``flip = 0.5`` for comparison.
    """

    block_length: int
    deletion_prob: float
    best_flip_prob: float
    block_information: float
    lower_bound: float
    iid_information: float

    def __post_init__(self) -> None:
        validate_probability(self.deletion_prob, "deletion_prob")
        validate_probability(self.best_flip_prob, "best_flip_prob")

    @property
    def improvement_over_iid(self) -> float:
        """Bits of block information gained over the i.i.d. input."""
        return self.block_information - self.iid_information


def _optimize_over_flip(
    n: int, deletion_prob: float, transition: np.ndarray, tol: float
) -> MarkovInputBound:
    """The 1-D flip-probability search over a prebuilt block table."""

    def objective(f: float) -> float:
        dist = markov_block_distribution(n, f)
        return -mutual_information(dist, transition)

    result = optimize.minimize_scalar(
        objective, bounds=(1e-4, 0.9999), method="bounded",
        options={"xatol": tol},
    )
    best_f = float(result.x)
    best_info = float(-result.fun)
    iid_info = float(-objective(0.5))
    lower = max(0.0, (best_info - np.log2(n + 1)) / n)
    return MarkovInputBound(
        block_length=n,
        deletion_prob=deletion_prob,
        best_flip_prob=best_f,
        block_information=best_info,
        lower_bound=float(lower),
        iid_information=iid_info,
    )


def optimize_markov_input(
    n: int, deletion_prob: float, *, tol: float = 1e-6
) -> MarkovInputBound:
    """Maximize block information over the Markov flip probability.

    A 1-D bounded search; the objective is smooth and unimodal in
    practice over ``f in (0, 1)`` for the deletion channel.
    """
    transition, _ = exact_block_transition(n, deletion_prob)
    return _optimize_over_flip(n, deletion_prob, transition, tol)


def optimize_markov_input_sweep(
    n: int, deletion_probs: Sequence[float], *, tol: float = 1e-6
) -> List[MarkovInputBound]:
    """Optimize the Markov input for a whole ``p_d`` grid at once.

    The per-point search is the same 1-D optimization as
    :func:`optimize_markov_input`, but the exact block tables for the
    grid come from one
    :func:`repro.bounds.deletion.deletion_block_transition_stack` call
    — the subsequence-counting DP (the dominant cost at ``n = 8``) runs
    once instead of once per grid point.
    """
    pds = [float(p) for p in deletion_probs]
    stack, _groups = deletion_block_transition_stack(n, pds)
    return [
        _optimize_over_flip(n, pd, stack[i], tol)
        for i, pd in enumerate(pds)
    ]
