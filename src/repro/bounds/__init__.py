"""Numerical capacity bounds for no-feedback deletion/insertion channels
(the computational-bounds literature the paper cites in Section 4.1)."""

from .brackets import BracketRow, capacity_bracket_sweep
from .deletion import (
    BlockBoundResult,
    block_bound_sweep,
    block_mutual_information_bound,
    deletion_block_transition_stack,
    deletion_capacity_bracket,
    erasure_upper_bound_binary,
    exact_block_transition,
    gallager_lower_bound,
    subsequence_embedding_counts,
)
from .markov_input import (
    MarkovInputBound,
    markov_block_distribution,
    markov_block_information,
    optimize_markov_input,
    optimize_markov_input_sweep,
)
from .indel import (
    IndelBlockResult,
    indel_block_bound,
    indel_block_bound_sweep,
    indel_block_transition,
    indel_block_transition_stack,
)
from .insertion import (
    InsertionBlockResult,
    insertion_block_bound,
    insertion_block_transition,
    insertion_tail_mass,
)

__all__ = [
    "BracketRow",
    "capacity_bracket_sweep",
    "BlockBoundResult",
    "block_bound_sweep",
    "block_mutual_information_bound",
    "deletion_block_transition_stack",
    "deletion_capacity_bracket",
    "erasure_upper_bound_binary",
    "exact_block_transition",
    "gallager_lower_bound",
    "subsequence_embedding_counts",
    "MarkovInputBound",
    "markov_block_distribution",
    "markov_block_information",
    "optimize_markov_input",
    "optimize_markov_input_sweep",
    "IndelBlockResult",
    "indel_block_bound",
    "indel_block_bound_sweep",
    "indel_block_transition",
    "indel_block_transition_stack",
    "InsertionBlockResult",
    "insertion_block_bound",
    "insertion_block_transition",
    "insertion_tail_mass",
]
