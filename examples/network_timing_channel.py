#!/usr/bin/env python
"""A packet-timing covert channel over a lossy network (extension).

The distributed-systems version of the paper's story: a sender leaks
bits through inter-packet gaps; packet loss deletes symbols, duplicates
insert them, jitter substitutes them. The paper's estimation recipe
(traditional estimate x (1 - P_d)) applies unchanged, and the
maximum-likelihood alignment decoder reconstructs what happened to the
flow packet by packet.

Run:  python examples/network_timing_channel.py
"""

import numpy as np

from repro.coding.alignment import MLAlignmentDecoder
from repro.core.estimation import CapacityEstimator
from repro.experiments.tables import format_table
from repro.network import (
    PacketFlowConfig,
    measured_parameters,
    transmit_flow,
)


def main() -> None:
    rng = np.random.default_rng(31)
    durations = (1.0, 2.0)

    print("=== Estimation recipe across network conditions ===")
    rows = []
    naive = PacketFlowConfig(durations).synchronous_capacity()
    for loss, dup, jitter in [
        (0.0, 0.0, 0.0),
        (0.05, 0.0, 0.0),
        (0.1, 0.05, 0.1),
        (0.25, 0.1, 0.15),
    ]:
        cfg = PacketFlowConfig(
            durations, loss_prob=loss, duplicate_prob=dup, jitter_std=jitter
        )
        msg = rng.integers(0, 2, 20_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        report = CapacityEstimator(1, physical_capacity=naive).estimate(params)
        rows.append(
            {
                "loss": loss,
                "dup": dup,
                "jitter": jitter,
                "P_d": params.deletion,
                "P_i": params.insertion,
                "naive C [b/s]": naive,
                "corrected C [b/s]": report.corrected_physical,
            }
        )
    print(
        format_table(
            ["loss", "dup", "jitter", "P_d", "P_i", "naive C [b/s]", "corrected C [b/s]"],
            rows,
        )
    )

    print("\n=== Forensic alignment of one corrupted flow ===")
    # A short watermarked flow: 80% of positions are a known pattern,
    # 20% carry unknown covert payload bits.
    from repro.coding.forward_backward import DriftChannelModel

    n = 120
    bits = rng.integers(0, 2, n)
    channel = DriftChannelModel(
        insertion_prob=0.04, deletion_prob=0.04, max_drift=16
    )
    received, events = channel.transmit(bits, rng)
    known = rng.random(n) < 0.8
    priors = np.where(known, bits.astype(float), 0.5)
    decoder = MLAlignmentDecoder(
        0.04, 0.04, substitution_prob=1e-3, max_drift=16
    )
    result = decoder.decode(received, priors)
    true_ins = int((events == "i").sum())
    true_del = int((events == "d").sum())
    print(f"sent {n} bits, received {received.size}")
    print(
        f"MAP alignment: {result.insertions.size} insertions "
        f"(truth {true_ins}), {(result.alignment == -1).sum()} deletions "
        f"(truth {true_del})"
    )
    unknown_ok = (result.decoded[~known] == bits[~known]).mean()
    print(f"covert payload bits recovered: {unknown_ok:.1%}")


if __name__ == "__main__":
    main()
