#!/usr/bin/env python
"""Capacity survey: every bound in the library on one grid.

For a grid of (P_d, P_i) and symbol widths N, prints:

* the synchronous (traditional) capacity ``N``;
* the Theorem 1/4 erasure upper bound ``N (1 - P_d)``;
* the Theorem 5 feedback lower bound (paper form and exact form);
* for the binary no-feedback case, the Gallager and finite-block lower
  bounds;

plus the convergence series of eqs. (6)-(7). This regenerates, as text
series, every quantitative curve implied by the paper's analysis.

Run:  python examples/capacity_survey.py
"""

from repro.bounds import deletion_capacity_bracket
from repro.core.capacity import (
    converted_capacity,
    convergence_ratio,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
)
from repro.experiments.tables import format_table


def main() -> None:
    print("=== Feedback-synchronized bounds (Theorems 1-5) ===")
    rows = []
    for n in (1, 2, 4, 8):
        for pd, pi in [(0.05, 0.05), (0.1, 0.05), (0.2, 0.1), (0.3, 0.3)]:
            rows.append(
                {
                    "N": n,
                    "P_d": pd,
                    "P_i": pi,
                    "sync C": float(n),
                    "UB N(1-Pd)": erasure_upper_bound(n, pd),
                    "LB paper": feedback_lower_bound(n, pd, pi),
                    "LB exact": feedback_lower_bound_exact(n, pd, pi),
                    "C_conv": converted_capacity(n, pi),
                }
            )
    print(
        format_table(
            ["N", "P_d", "P_i", "sync C", "UB N(1-Pd)", "LB paper", "LB exact", "C_conv"],
            rows,
        )
    )

    print("\n=== No-feedback deletion channel bracket (binary) ===")
    rows = []
    for pd in (0.05, 0.1, 0.2, 0.3, 0.5):
        bracket = deletion_capacity_bracket(pd, block_length=8)
        rows.append({"p_d": pd, **bracket})
    print(
        format_table(
            ["p_d", "gallager_lower", "block_lower", "iid_rate", "best_lower", "erasure_upper"],
            rows,
        )
    )

    print("\n=== Convergence of C_lower/C_upper at P_i = P_d (eqs. 6-7) ===")
    rows = []
    for p in (0.05, 0.1, 0.2):
        row = {"p": p}
        for n in (1, 2, 4, 8, 16, 32):
            row[f"N={n}"] = convergence_ratio(n, p)
        rows.append(row)
    print(format_table(["p"] + [f"N={n}" for n in (1, 2, 4, 8, 16, 32)], rows))


if __name__ == "__main__":
    main()
