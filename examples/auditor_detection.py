#!/usr/bin/env python
"""The auditor's side: detecting the §3.1 covert channel in a trace.

Covert-channel *identification* is the discipline the paper's related
work opens with. This example runs the oblivious storage channel under
two schedulers, then audits the kernel traces:

* interleaving analysis flags the suspiciously regular write/read
  alternation of a synchronized pair;
* value-coupling analysis (pairing each read with the most recent
  write, as reconstructed from the trace) flags oblivious pairs even
  when scheduling noise hides the interleaving;
* an independent workload with the same access volume is shown NOT to
  trip the detector.

Run:  python examples/auditor_detection.py
"""

import numpy as np

from repro.os_model import (
    KernelTrace,
    ObliviousReceiver,
    ObliviousSender,
    RandomScheduler,
    RoundRobinScheduler,
    UniprocessorKernel,
    detect_covert_pair,
)


def run_pair(scheduler, rng, symbols=5000):
    msg = rng.integers(0, 2, symbols)
    sender = ObliviousSender(0, msg)
    receiver = ObliviousReceiver(1)
    kernel = UniprocessorKernel([sender, receiver], scheduler)
    kernel.run(16 * symbols, rng, stop_condition=lambda _k: sender.done)
    return kernel.trace, msg, receiver.received


def auditor_pairing(trace, written, read):
    """Pair each read with the most recent write (trace order)."""
    paired_w, paired_r = [], []
    w_pos = r_pos = 0
    last = None
    for note in trace.annotations:
        if note == "send":
            last = int(written[w_pos])
            w_pos += 1
        elif note == "recv":
            if last is not None:
                paired_w.append(last)
                paired_r.append(int(read[r_pos]))
            r_pos += 1
    return paired_w, paired_r


def main() -> None:
    rng = np.random.default_rng(101)

    print("=== Covert pair under round-robin (synchronized) ===")
    trace, w, r = run_pair(RoundRobinScheduler(), rng)
    print(" ", detect_covert_pair(trace, w, r).summary())

    print("\n=== Covert pair under random scheduling (scrambled) ===")
    trace, w, r = run_pair(RandomScheduler(), rng)
    naive = detect_covert_pair(trace, w, r)
    print("  naive positional pairing :", naive.summary())
    pw, pr = auditor_pairing(trace, w, r)
    informed = detect_covert_pair(trace, pw, pr)
    print("  auditor's pairing        :", informed.summary())

    print("\n=== Independent workload (control) ===")
    n = 10_000
    kinds = np.where(rng.random(n) < 0.5, "send", "recv")
    control_trace = KernelTrace(
        schedule=list(rng.integers(0, 2, n)), annotations=list(kinds)
    )
    control = detect_covert_pair(
        control_trace, rng.integers(0, 2, n), rng.integers(0, 2, n)
    )
    print(" ", control.summary())

    print(
        "\nThe same alignment collapse that protects the covert pair from "
        "a naive auditor (E1) is undone once the auditor reconstructs the "
        "write-to-read pairing from the trace."
    )


if __name__ == "__main__":
    main()
