#!/usr/bin/env python
"""The paper's motivating scenario (§3.1): a storage covert channel
between two processes on a uniprocessor, shaped by the scheduler.

Simulates the oblivious sender/receiver pair under several scheduling
policies, measures the induced deletion/insertion rates, and prints the
capacity each scheduler leaves to the covert pair — the design-
evaluation use case of §3.2. Then shows the Figure-1 handshake variant:
zero loss, paid for in waiting quanta.

Run:  python examples/scheduler_covert_channel.py
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.os_model import (
    FuzzyTimeScheduler,
    HandshakeReceiver,
    HandshakeSender,
    IdleProcess,
    LotteryScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    UniprocessorKernel,
    run_oblivious_channel,
)


def main() -> None:
    rng = np.random.default_rng(7)
    rows = []
    for label, scheduler in [
        ("round-robin", RoundRobinScheduler()),
        ("lottery", LotteryScheduler()),
        ("random", RandomScheduler()),
        ("fuzzy-time 0.3", FuzzyTimeScheduler(0.3)),
        ("fuzzy-time 0.6", FuzzyTimeScheduler(0.6)),
    ]:
        m = run_oblivious_channel(scheduler, rng, message_symbols=20_000)
        rows.append(
            {
                "scheduler": label,
                "P_d": m.params.deletion,
                "P_i": m.params.insertion,
                "corrected C [bits/use]": m.report.corrected_capacity,
                "achievable [bits/quantum]": m.achievable_per_quantum,
            }
        )
    print("Oblivious channel under different schedulers")
    print(
        format_table(
            [
                "scheduler",
                "P_d",
                "P_i",
                "corrected C [bits/use]",
                "achievable [bits/quantum]",
            ],
            rows,
        )
    )

    # Background load dilutes the covert pair's scheduling share.
    print("\nWith background load (random scheduler):")
    rows = []
    for idle in (0, 2, 6):
        m = run_oblivious_channel(
            RandomScheduler(),
            rng,
            message_symbols=20_000,
            extra_processes=[IdleProcess(10 + k) for k in range(idle)],
        )
        rows.append(
            {
                "idle procs": idle,
                "P_d": m.params.deletion,
                "P_i": m.params.insertion,
                "achievable [bits/quantum]": m.achievable_per_quantum,
            }
        )
    print(
        format_table(
            ["idle procs", "P_d", "P_i", "achievable [bits/quantum]"], rows
        )
    )

    # The Figure-1 handshake: lossless at the cost of waiting.
    message = rng.integers(0, 2, 20_000)
    sender = HandshakeSender(0, message)
    receiver = HandshakeReceiver(1)
    kernel = UniprocessorKernel([sender, receiver], RandomScheduler())
    kernel.run(64 * message.size, rng, stop_condition=lambda _k: sender.done)
    delivered = receiver.received
    print(
        f"\nFigure-1 handshake under the random scheduler:\n"
        f"  delivered {delivered.size}/{message.size} symbols losslessly: "
        f"{bool(np.array_equal(delivered, message[:delivered.size]))}\n"
        f"  throughput {delivered.size / kernel.time:.3f} bits/quantum "
        f"(waits: sender {sender.waits}, receiver {receiver.waits})"
    )


if __name__ == "__main__":
    main()
