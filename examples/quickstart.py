#!/usr/bin/env python
"""Quickstart: estimate the real capacity of a non-synchronous covert channel.

The paper's workflow in four steps:

1. model the covert channel's non-synchronous behavior as a
   deletion-insertion channel (Definition 1);
2. estimate the physical capacity with a *traditional* synchronous-model
   method (here: Millen's FSM estimator);
3. measure (or posit) the deletion/insertion probabilities;
4. correct: ``C_real = C_traditional * (1 - P_d)``, plus the full
   Theorem 4/5 bracket for the feedback-synchronized protocol.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CapacityEstimator,
    ChannelParameters,
    DeletionInsertionChannel,
    capacity_bracket,
)
from repro.core.events import empirical_parameters
from repro.timing import fsm_capacity


def main() -> None:
    rng = np.random.default_rng(2005)

    # -- Step 1: the channel model --------------------------------------
    # Suppose profiling showed that 8% of send attempts are overwritten
    # before the receiver runs (deletions) and 5% of reads are stale
    # (insertions).
    params = ChannelParameters.from_rates(deletion=0.08, insertion=0.05)
    print("Channel parameters:", params, "\n")

    # -- Step 2: a traditional estimate ----------------------------------
    # A two-state covert channel: a fast operation (1 tick) and a slow
    # one (3 ticks), both usable from either state. Millen's FSM method
    # gives its synchronous capacity in bits per tick.
    physical = fsm_capacity(1, [(0, 0, 1.0), (0, 0, 3.0)])
    print(f"Traditional (Millen FSM) capacity: {physical:.4f} bits/tick")

    # -- Steps 3-4: the non-synchronous correction ------------------------
    estimator = CapacityEstimator(bits_per_symbol=1, physical_capacity=physical)
    report = estimator.estimate(params)
    print(report.summary())

    lower, upper = capacity_bracket(1, params.deletion, params.insertion)
    print(f"\nFeedback-protocol bracket: [{lower:.4f}, {upper:.4f}] bits")

    # -- Bonus: measure parameters from a simulated run -------------------
    channel = DeletionInsertionChannel(params, bits_per_symbol=1)
    record = channel.transmit(rng.integers(0, 2, 50_000), rng)
    measured = empirical_parameters(record.events)
    print(
        f"\nMeasured from a 50k-symbol run: "
        f"P_d={measured.deletion:.4f}  P_i={measured.insertion:.4f}"
    )
    print(
        "Corrected capacity from measured parameters: "
        f"{estimator.estimate(measured).corrected_physical:.4f} bits/tick"
    )


if __name__ == "__main__":
    main()
