#!/usr/bin/env python
"""Attacker vs. defender, end to end.

The full cat-and-mouse loop the paper's machinery supports:

1. the **defender** tunes a fuzzy-time scheduler and reads the
   countermeasure trade-off table (covert capacity removed vs. latency
   tail paid);
2. the **attacker**, facing whatever channel results, probes it with
   pilot frames, ML-estimates `(P_i, P_d)`, and runs the Theorem-5
   counter protocol — reporting an effective rate that includes the
   estimation overhead;
3. the attacker also picks the best symbol width for a timing-style
   channel under the measured conditions.

Run:  python examples/adaptive_attack_defense.py
"""

import numpy as np

from repro.core.design import optimal_symbol_width
from repro.core.events import ChannelParameters
from repro.experiments.tables import format_table
from repro.os_model.countermeasures import fuzzy_scheduler_tradeoff
from repro.sync.adaptive import run_adaptive_session


def main() -> None:
    rng = np.random.default_rng(77)

    # ---- Defender's view ------------------------------------------------
    print("=== Defender: fuzzy-time countermeasure trade-off ===")
    points = fuzzy_scheduler_tradeoff(
        (0.0, 0.2, 0.4, 0.6), rng, message_symbols=8000
    )
    rows = [
        {
            "fuzz": p.fuzz,
            "covert rate [b/quantum]": p.covert_rate_per_quantum,
            "capacity cut": p.capacity_reduction,
            "p99 delay [quanta]": p.p99_delay,
        }
        for p in points
    ]
    print(
        format_table(
            ["fuzz", "covert rate [b/quantum]", "capacity cut", "p99 delay [quanta]"],
            rows,
        )
    )
    chosen = points[2]
    print(
        f"\nDefender picks fuzz={chosen.fuzz}: cuts "
        f"{chosen.capacity_reduction:.0%} of covert capacity for a p99 "
        f"delay of {chosen.p99_delay:.0f} quanta.\n"
    )

    # ---- Attacker's view ------------------------------------------------
    print("=== Attacker: probe, estimate, transmit ===")
    channel = ChannelParameters.from_rates(
        deletion=chosen.deletion, insertion=chosen.insertion
    )
    session = run_adaptive_session(
        channel,
        rng,
        pilot_frames=3,
        pilot_length=150,
        payload_symbols=25_000,
    )
    print(session.summary())

    # ---- Attacker's channel design --------------------------------------
    best = optimal_symbol_width(
        channel.deletion, channel.insertion, cost_model="timing", max_bits=8
    )
    print(
        f"\nBest timing-channel symbol width under these conditions: "
        f"N = {best.bits_per_symbol} "
        f"({best.rate_per_time:.4f} bits per time unit; wider symbols "
        "pay exponentially in delay)."
    )


if __name__ == "__main__":
    main()
