#!/usr/bin/env python
"""Communicating over a non-synchronous channel WITHOUT feedback.

The paper (§4.1) notes that Dobrushin's theorem guarantees reliable
communication over deletion-insertion channels exists even with no
synchronization mechanism — but that practical schemes need
"sophisticated coding techniques" and land far below the synchronized
capacity. This example runs the three classic schemes side by side:

* Davey-MacKay watermark code (drift-tracking inner decoder + outer
  convolutional code);
* marker code (periodic known patterns pin the drift);
* Zigangirov-style sequential decoding of a convolutional code.

Run:  python examples/watermark_decoding.py
"""

import numpy as np

from repro.coding import (
    ConvolutionalCode,
    DriftChannelModel,
    MarkerCode,
    StackDecoder,
    WatermarkCode,
)
from repro.core.capacity import erasure_upper_bound, feedback_lower_bound_exact


def main() -> None:
    rng = np.random.default_rng(13)
    pi, pd = 0.03, 0.03
    channel = DriftChannelModel(
        insertion_prob=pi, deletion_prob=pd, substitution_prob=0.0, max_drift=16
    )
    print(f"Channel: P_i={pi}, P_d={pd}, noiseless data path")
    print(
        f"Synchronized (Theorem 5, feedback) rate: "
        f"{feedback_lower_bound_exact(1, pd, pi):.3f} bits/bit; "
        f"upper bound {erasure_upper_bound(1, pd):.3f}\n"
    )

    frames = 5
    payload_bits = 48

    # Watermark --------------------------------------------------------
    wm = WatermarkCode(payload_bits=payload_bits)
    bers = []
    for _ in range(frames):
        result = wm.simulate_frame(channel, rng)
        bers.append(result.bit_error_rate)
    print(
        f"watermark code   rate={wm.rate:.3f} bits/bit  "
        f"mean BER={np.mean(bers):.4f} over {frames} frames"
    )

    # Marker -----------------------------------------------------------
    mk = MarkerCode(payload_bits, period=9, outer=ConvolutionalCode((0o23, 0o35)))
    bers = []
    for _ in range(frames):
        result = mk.simulate_frame(channel, rng)
        bers.append(result.bit_error_rate)
    print(
        f"marker code      rate={mk.rate:.3f} bits/bit  "
        f"mean BER={np.mean(bers):.4f} over {frames} frames"
    )

    # Sequential decoding ------------------------------------------------
    code = ConvolutionalCode((0o23, 0o35))
    decoder = StackDecoder(
        code,
        insertion_prob=pi,
        deletion_prob=pd,
        substitution_prob=1e-3,
        max_nodes=200_000,
    )
    errors = []
    rate = None
    for _ in range(frames):
        bits = rng.integers(0, 2, payload_bits)
        tx = code.encode(bits)
        rate = payload_bits / tx.size
        ry, _ = channel.transmit(tx, rng)
        result = decoder.decode(ry, payload_bits)
        errors.append(float((result.payload != bits).mean()))
    print(
        f"conv + stack     rate={rate:.3f} bits/bit  "
        f"mean BER={np.mean(errors):.4f} over {frames} frames"
    )

    print(
        "\nAll three communicate reliably with zero feedback — but at "
        "1/3 to 1/2 of the rate a feedback-synchronized sender achieves, "
        "which is the paper's Section 4.1 point."
    )


if __name__ == "__main__":
    main()
