"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "E4"],
            ["estimate", "--pd", "0.1"],
            ["bounds", "--pd", "0.1"],
            ["theorems"],
            ["faults", "list"],
            ["faults", "run", "bursty_loss", "--symbols", "500"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E9" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "--pd", "0.1", "--pi", "0.05", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "3.6000" in out

    def test_estimate_with_physical(self, capsys):
        assert main(
            ["estimate", "--pd", "0.2", "--physical", "10"]
        ) == 0
        assert "8.0000" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "--pd", "0.1", "--pi", "0.1", "--bits", "3"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out

    def test_theorems(self, capsys):
        assert main(["theorems"]) == 0
        out = capsys.readouterr().out
        for k in range(1, 6):
            assert f"Theorem {k}" in out

    def test_run_deterministic_experiment(self, capsys):
        assert main(["run", "E4"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out
        assert "PASS" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "E5", "--seed", "3"]) == 0

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "bursty_loss" in out
        assert "stress" in out

    def test_faults_run(self, capsys):
        code = main(
            ["faults", "run", "counter_desync", "--symbols", "4000", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed          : True" in out
        assert "within bound       : True" in out
        assert "desyncs_injected" in out

    def test_faults_unknown_scenario(self):
        with pytest.raises(KeyError):
            main(["faults", "run", "no_such_scenario"])

    def test_faults_without_subcommand(self, capsys):
        assert main(["faults"]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_report_writes_file(self, tmp_path, capsys):
        # Only deterministic experiments are cheap enough here; patch
        # the registry to a subset for speed.
        import repro.cli as cli_mod
        from repro.experiments.registry import EXPERIMENTS

        out = tmp_path / "report.txt"
        original = dict(EXPERIMENTS)
        try:
            for key in list(EXPERIMENTS):
                if key not in ("E4", "E5"):
                    del EXPERIMENTS[key]
            code = cli_mod.main(["report", "--output", str(out)])
        finally:
            EXPERIMENTS.clear()
            EXPERIMENTS.update(original)
        assert code == 0
        text = out.read_text()
        assert "[E4]" in text and "[E5]" in text
        assert "2/2 experiments passed" in text
