"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "E4"],
            ["estimate", "--pd", "0.1"],
            ["bounds", "--pd", "0.1"],
            ["theorems"],
            ["faults", "list"],
            ["faults", "run", "bursty_loss", "--symbols", "500"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E9" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "--pd", "0.1", "--pi", "0.05", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "3.6000" in out

    def test_estimate_with_physical(self, capsys):
        assert main(
            ["estimate", "--pd", "0.2", "--physical", "10"]
        ) == 0
        assert "8.0000" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds", "--pd", "0.1", "--pi", "0.1", "--bits", "3"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out

    def test_theorems(self, capsys):
        assert main(["theorems"]) == 0
        out = capsys.readouterr().out
        for k in range(1, 6):
            assert f"Theorem {k}" in out

    def test_run_deterministic_experiment(self, capsys):
        assert main(["run", "E4"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out
        assert "PASS" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "E5", "--seed", "3"]) == 0

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "bursty_loss" in out
        assert "stress" in out

    def test_faults_run(self, capsys):
        code = main(
            ["faults", "run", "counter_desync", "--symbols", "4000", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed          : True" in out
        assert "within bound       : True" in out
        assert "desyncs_injected" in out

    def test_faults_unknown_scenario(self):
        with pytest.raises(KeyError):
            main(["faults", "run", "no_such_scenario"])

    def test_faults_without_subcommand(self, capsys):
        assert main(["faults"]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_report_writes_file(self, tmp_path, capsys):
        # Only deterministic experiments are cheap enough here; patch
        # the registry to a subset for speed.
        import repro.cli as cli_mod
        from repro.experiments.registry import EXPERIMENTS

        out = tmp_path / "report.txt"
        original = dict(EXPERIMENTS)
        try:
            for key in list(EXPERIMENTS):
                if key not in ("E4", "E5"):
                    del EXPERIMENTS[key]
            code = cli_mod.main(["report", "--output", str(out)])
        finally:
            EXPERIMENTS.clear()
            EXPERIMENTS.update(original)
        assert code == 0
        text = out.read_text()
        assert "[E4]" in text and "[E5]" in text
        assert "2/2 experiments passed" in text


class TestStoreCommands:
    @pytest.fixture
    def populated_dir(self, tmp_path):
        from repro.store import ResultStore, canonical_key

        store = ResultStore(tmp_path / "cache")
        store.put(
            canonical_key("toy", {"i": 1}),
            {"v": 1},
            fn_id="toy",
            compute_seconds=2.5,
        )
        return str(tmp_path / "cache")

    def test_store_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["store", "ls"],
            ["store", "ls", "--dir", "/tmp/x"],
            ["store", "inspect", "abc123"],
            ["store", "gc", "--max-age-days", "30", "--dry-run"],
            ["store", "gc", "--max-bytes", "1000000"],
            ["store", "verify"],
            ["store", "stats"],
            ["run", "E4", "--format", "json"],
        ):
            assert parser.parse_args(argv) is not None

    def test_store_without_subcommand(self, capsys):
        assert main(["store"]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_store_without_dir_or_env_errors(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["store", "ls"]) == 2
        assert "no store configured" in capsys.readouterr().err

    def test_store_ls_and_stats(self, populated_dir, capsys):
        assert main(["store", "ls", "--dir", populated_dir]) == 0
        out = capsys.readouterr().out
        assert "toy" in out and "1 entries" in out
        assert main(["store", "stats", "--dir", populated_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert "toy" in out

    def test_store_env_var_is_honored(self, populated_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", populated_dir)
        assert main(["store", "stats"]) == 0
        assert "entries    : 1" in capsys.readouterr().out

    def test_store_inspect_by_prefix(self, populated_dir, capsys):
        from repro.store import canonical_key

        key = canonical_key("toy", {"i": 1})
        assert main(["store", "inspect", key[:10], "--dir", populated_dir]) == 0
        out = capsys.readouterr().out
        assert '"fn_id": "toy"' in out

    def test_store_inspect_unknown_prefix(self, populated_dir, capsys):
        assert main(["store", "inspect", "ffff", "--dir", populated_dir]) == 2
        assert "no entry matches" in capsys.readouterr().err

    def test_store_gc_dry_run_then_real(self, populated_dir, capsys):
        assert main(
            ["store", "gc", "--max-bytes", "0", "--dry-run", "--dir", populated_dir]
        ) == 0
        assert "would evict 1 entries" in capsys.readouterr().out
        assert main(
            ["store", "gc", "--max-bytes", "0", "--dir", populated_dir]
        ) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert main(["store", "ls", "--dir", populated_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_store_verify_clean_and_corrupt(self, populated_dir, capsys):
        assert main(["store", "verify", "--dir", populated_dir]) == 0
        assert "all entries verify" in capsys.readouterr().out
        from pathlib import Path

        from repro.store import ResultStore

        store = ResultStore(populated_dir)
        [key] = store.keys()
        (store.path_for(key) / "payload.json").write_text('{"tampered": 1}')
        assert main(["store", "verify", "--dir", populated_dir]) == 1
        assert "1 problems" in capsys.readouterr().out


class TestRunJsonFormat:
    def test_run_format_json_emits_parseable_results(self, capsys):
        import json as json_mod

        assert main(["run", "E4", "--format", "json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["experiment_id"] == "E4"
        assert payload[0]["passed"] is True


class TestRunBudgetFlag:
    def test_budget_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E4", "--budget", "30"])
        assert args.budget == 30.0
        assert parser.parse_args(["run", "E4"]).budget is None

    def test_budget_kwarg_reaches_the_experiment(self):
        from repro.cli import _runner_kwargs

        kwargs = _runner_kwargs("E4", seed=1, workers=2, budget=30.0)
        assert kwargs["budget"] == 30.0
        # Deterministic-table experiments never see the knob.
        assert "budget" not in _runner_kwargs("E1", seed=1, budget=30.0)

    def test_exhausted_budget_fails_the_experiment_gracefully(self, capsys):
        # A budget this small cannot finish the Monte-Carlo spot-check:
        # the run must report FAILURE in prose, not raise.
        code = main(["run", "E4", "--budget", "0.000001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "budget" in out.lower()


class TestServiceCommands:
    def test_service_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["service", "run"],
            ["service", "run", "--n", "100", "--scenario", "chaos"],
            ["service", "run", "--format", "json", "--output", "/tmp/r.json"],
            ["service", "stats", "--n", "50"],
            ["service", "replay", "--n", "50", "--seed", "3"],
            ["service", "scenarios"],
        ):
            assert parser.parse_args(argv) is not None

    def test_service_without_subcommand(self, capsys):
        assert main(["service"]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_service_scenarios_lists_registry(self, capsys):
        assert main(["service", "scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "chaos", "crashy_workers"):
            assert name in out
        assert "crash" in out and "malformed" in out

    def test_service_run_text_report(self, capsys):
        code = main(
            ["service", "run", "--n", "80", "--scenario", "none",
             "--concurrency", "16", "--deadline", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lost              : 0" in out
        assert "statuses" in out

    def test_service_run_json_and_output_file(self, tmp_path, capsys):
        import json as json_mod

        out_file = tmp_path / "report.json"
        code = main(
            ["service", "run", "--n", "60", "--concurrency", "16",
             "--deadline", "30", "--format", "json",
             "--output", str(out_file)]
        )
        assert code == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["lost"] == 0
        assert payload == json_mod.loads(out_file.read_text())

    def test_service_stats_prints_counters(self, capsys):
        code = main(
            ["service", "stats", "--n", "60", "--concurrency", "16",
             "--deadline", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "breaker state" in out
        assert "queue depth peak" in out
        assert "submitted         : 60" in out

    def test_service_replay_verifies_determinism(self, capsys):
        code = main(
            ["service", "replay", "--n", "60", "--concurrency", "16",
             "--deadline", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 value mismatches" in out
