"""Public-API hygiene: every __all__ name resolves; re-exports align."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.infotheory",
    "repro.numerics",
    "repro.timing",
    "repro.bounds",
    "repro.coding",
    "repro.sync",
    "repro.os_model",
    "repro.network",
    "repro.simulation",
    "repro.estimation",
    "repro.store",
    "repro.service",
    "repro.faults",
    "repro.experiments",
    "repro.analysis",
    "repro.analysis.graph",
    "repro.analysis.rules",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_has_no_duplicates(package):
    mod = importlib.import_module(package)
    assert len(mod.__all__) == len(set(mod.__all__))


def test_top_level_reexports_are_canonical():
    """Names re-exported from `repro` must be the same objects as their
    canonical definitions."""
    import repro
    import repro.core as core
    import repro.infotheory as it

    assert repro.ChannelParameters is core.ChannelParameters
    assert repro.CapacityEstimator is core.CapacityEstimator
    assert repro.DiscreteMemorylessChannel is it.DiscreteMemorylessChannel
    assert repro.erasure_upper_bound is core.erasure_upper_bound


def test_docstrings_on_public_callables():
    """Every public function/class carries a docstring."""
    for package in PACKAGES:
        mod = importlib.import_module(package)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
