"""Cross-cutting invariants, property-tested across random parameters.

These are the relations that must hold between *different* subsystems —
the orderings and conservation laws the paper's whole argument hangs
on. Each property is tested over hypothesis-generated parameter points
rather than hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import (
    converted_capacity,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
)
from repro.core.events import ChannelParameters
from repro.core.noisy import noisy_feedback_lower_bound
from repro.infotheory.blahut_arimoto import channel_capacity
from repro.infotheory.channels import converted_channel
from repro.sync.feedback import CounterProtocol
from repro.sync.imperfect_feedback import lossy_feedback_capacity

probs = st.floats(min_value=0.0, max_value=0.45)
small_n = st.integers(min_value=1, max_value=8)


class TestBoundHierarchy:
    """synchronous >= erasure UB >= paper LB >= exact LB >= noisy LB >= 0."""

    @given(small_n, probs, probs, st.floats(min_value=0.0, max_value=0.4))
    @settings(max_examples=80)
    def test_full_ordering(self, n, pd, pi, ps):
        sync = float(n)
        upper = erasure_upper_bound(n, pd)
        paper = feedback_lower_bound(n, pd, pi)
        exact = feedback_lower_bound_exact(n, pd, pi)
        noisy = noisy_feedback_lower_bound(n, pd, pi, ps)
        assert sync >= upper - 1e-12
        assert upper >= paper - 1e-9
        assert paper >= exact - 1e-9
        assert exact >= noisy - 1e-9
        assert noisy >= -1e-9

    @given(small_n, probs)
    @settings(max_examples=40)
    def test_converted_capacity_matches_blahut_arimoto(self, n, pi):
        if n > 5:  # keep the BA matrix small
            n = 5
        closed = converted_capacity(n, pi)
        numeric = channel_capacity(
            converted_channel(n, pi).transition_matrix, tol=1e-9
        )
        assert closed == pytest.approx(numeric, abs=1e-6)

    @given(probs, probs)
    @settings(max_examples=40)
    def test_lossy_feedback_below_perfect(self, pd, q):
        assert lossy_feedback_capacity(2, pd, q) <= erasure_upper_bound(
            2, pd
        ) + 1e-12


class TestProtocolConservation:
    """Event-count conservation laws of the counter protocol."""

    @given(
        st.floats(min_value=0.0, max_value=0.35),
        st.floats(min_value=0.0, max_value=0.35),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_counter_protocol_ledger(self, pd, pi, seed):
        rng = np.random.default_rng(seed)
        proto = CounterProtocol(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=2
        )
        msg = rng.integers(0, 4, 5000)
        run = proto.run(msg, rng)
        # Every use is exactly one event.
        assert run.channel_uses == (
            run.deletions + run.insertions + run.transmissions
        )
        # Every delivered position came from an insertion or a
        # transmission; sender slots are the complement of insertions.
        assert run.symbols_delivered == run.insertions + run.transmissions
        assert run.sender_slots == run.channel_uses - run.insertions
        # Errors happen only at insertion positions.
        assert run.symbol_errors <= run.insertions

    @given(
        st.floats(min_value=0.0, max_value=0.35),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_rate_within_bracket(self, pd, seed):
        """Measured counter-protocol information rate stays inside the
        [exact LB, erasure UB] bracket (with Monte-Carlo slack)."""
        rng = np.random.default_rng(seed)
        pi = 0.1
        proto = CounterProtocol(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=2
        )
        from repro.sync.harness import measure_protocol

        m = measure_protocol(proto, rng.integers(0, 4, 30_000), rng)
        assert m.empirical_information_per_slot <= m.theoretical_upper + 0.1
        assert m.empirical_information_per_slot >= (
            m.theoretical_lower_exact - 0.1
        )


class TestChannelStatistics:
    @given(
        st.floats(min_value=0.05, max_value=0.3),
        st.floats(min_value=0.05, max_value=0.3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_received_length_distribution(self, pd, pi, seed):
        """E[received length] = n (Pi + Pt) / (Pd + Pt)."""
        from repro.core.channels import DeletionInsertionChannel

        rng = np.random.default_rng(seed)
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=1
        )
        n = 20_000
        rec = chan.transmit(rng.integers(0, 2, n), rng)
        expected = n * (pi + (1 - pd - pi)) / (pd + (1 - pd - pi))
        assert rec.received.size == pytest.approx(expected, rel=0.05)
