"""Numerical insertion-channel bounds."""

import numpy as np
import pytest

from repro.bounds.insertion import (
    insertion_block_bound,
    insertion_block_transition,
    insertion_tail_mass,
)


class TestTailMass:
    def test_zero_insertions_no_tail(self):
        assert insertion_tail_mass(5, 0.0, 0) == pytest.approx(0.0)

    def test_tail_decreases_with_budget(self):
        masses = [insertion_tail_mass(6, 0.2, k) for k in range(6)]
        assert masses == sorted(masses, reverse=True)

    def test_tail_matches_simulation(self, rng):
        n, pi, k = 5, 0.3, 3
        # Simulate number of insertions in a block: each of n inputs is
        # preceded by Geometric insertions.
        trials = 200_000
        total = rng.negative_binomial(n, 1 - pi, size=trials)
        sim = (total > k).mean()
        assert insertion_tail_mass(n, pi, k) == pytest.approx(sim, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            insertion_tail_mass(0, 0.1, 2)
        with pytest.raises(ValueError):
            insertion_tail_mass(5, 1.0, 2)
        with pytest.raises(ValueError):
            insertion_tail_mass(5, 0.1, -1)


class TestBlockTransition:
    def test_rows_stochastic_with_overflow(self):
        t, groups, tail = insertion_block_transition(5, 0.15, max_extra=3)
        assert np.allclose(t.sum(axis=1), 1.0)
        assert tail == pytest.approx(insertion_tail_mass(5, 0.15, 3), abs=1e-12)

    def test_zero_insertion_identity(self):
        t, _groups, tail = insertion_block_transition(4, 0.0, max_extra=2)
        assert tail == 0.0
        # Only the length-4 block is populated, as identity.
        block = t[:, :16]
        assert np.allclose(block, np.eye(16))
        assert np.allclose(t[:, 16:], 0.0)

    def test_likelihood_consistency_with_simulation(self, rng):
        """P(y|x) from the DP matches Monte-Carlo frequency."""
        n, pi = 4, 0.25
        x = np.array([1, 0, 1, 1])
        # Simulate the Definition-1 insertion process.
        from collections import Counter

        counts = Counter()
        trials = 120_000
        for _ in range(trials):
            out = []
            for b in x:
                while rng.random() < pi:
                    out.append(int(rng.integers(0, 2)))
                out.append(int(b))
            counts[tuple(out)] += 1
        t, groups, _tail = insertion_block_transition(n, pi, max_extra=4)
        # Locate x's row and a few output columns.
        x_index = int("".join(map(str, x)), 2)
        col = 0
        for m, ys in zip(range(n, n + 5), groups):
            for row_idx in range(ys.shape[0]):
                y = tuple(int(v) for v in ys[row_idx])
                expected = t[x_index, col]
                if expected > 0.005:
                    sim = counts[y] / trials
                    assert sim == pytest.approx(expected, abs=0.01)
                col += 1

    def test_validation(self):
        with pytest.raises(ValueError):
            insertion_block_transition(0, 0.1)
        with pytest.raises(ValueError):
            insertion_block_transition(4, 0.1, max_extra=99)
        with pytest.raises(ValueError):
            insertion_block_transition(4, 1.0)


class TestBlockBound:
    def test_zero_insertion_full_rate(self):
        r = insertion_block_bound(5, 0.0, max_extra=2)
        assert r.rate_per_symbol == pytest.approx(1.0, abs=1e-6)

    def test_rate_decreases_with_insertion(self):
        r1 = insertion_block_bound(5, 0.05)
        r2 = insertion_block_bound(5, 0.25)
        assert r2.rate_per_symbol < r1.rate_per_symbol

    def test_rate_in_unit_interval(self):
        r = insertion_block_bound(6, 0.15)
        assert 0.0 < r.rate_per_symbol <= 1.0
        assert r.truncated_mass < 0.05
