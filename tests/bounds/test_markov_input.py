"""Markov-input deletion bounds (extension E12)."""

import numpy as np
import pytest

from repro.bounds.deletion import block_mutual_information_bound
from repro.bounds.markov_input import (
    markov_block_distribution,
    markov_block_information,
    optimize_markov_input,
)


class TestBlockDistribution:
    @pytest.mark.parametrize("f", [0.0, 0.2, 0.5, 1.0])
    def test_normalized(self, f):
        assert markov_block_distribution(6, f).sum() == pytest.approx(1.0)

    def test_half_flip_is_iid_uniform(self):
        d = markov_block_distribution(5, 0.5)
        assert np.allclose(d, 1 / 32)

    def test_zero_flip_only_constant_blocks(self):
        d = markov_block_distribution(4, 0.0)
        support = np.nonzero(d)[0]
        assert list(support) == [0, 15]  # 0000 and 1111
        assert d[support] == pytest.approx([0.5, 0.5])

    def test_one_flip_only_alternating(self):
        d = markov_block_distribution(4, 1.0)
        support = np.nonzero(d)[0]
        assert sorted(support) == [0b0101, 0b1010]

    def test_n_one(self):
        assert np.allclose(markov_block_distribution(1, 0.3), [0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            markov_block_distribution(0, 0.5)
        with pytest.raises(ValueError):
            markov_block_distribution(4, 1.5)


class TestInformation:
    def test_iid_point_matches_deletion_module(self):
        b = block_mutual_information_bound(6, 0.2)
        info = markov_block_information(6, 0.2, 0.5)
        assert info == pytest.approx(b.iid_block_information, abs=1e-9)

    def test_no_deletion_gives_source_entropy(self):
        # Channel is the identity: I = H(X^n) of the Markov source.
        from repro.infotheory.entropy import binary_entropy

        n, f = 5, 0.2
        info = markov_block_information(n, 0.0, f)
        assert info == pytest.approx(1 + (n - 1) * binary_entropy(f), abs=1e-9)


class TestOptimization:
    def test_bursty_optimum_under_deletions(self):
        bound = optimize_markov_input(7, 0.3)
        assert bound.best_flip_prob < 0.5
        assert bound.improvement_over_iid > 0

    def test_gain_grows_with_deletion_rate(self):
        g1 = optimize_markov_input(7, 0.1).improvement_over_iid
        g2 = optimize_markov_input(7, 0.4).improvement_over_iid
        assert g2 > g1

    def test_markov_never_below_iid(self):
        for pd in (0.05, 0.2, 0.5):
            bound = optimize_markov_input(6, pd)
            assert bound.block_information >= bound.iid_information - 1e-9

    def test_lower_bound_below_erasure(self):
        bound = optimize_markov_input(7, 0.2)
        assert bound.lower_bound <= 0.8 + 1e-9
