"""Joint deletion-insertion block bounds."""

import numpy as np
import pytest

from repro.bounds.deletion import exact_block_transition
from repro.bounds.indel import indel_block_bound, indel_block_transition
from repro.bounds.insertion import insertion_block_transition


class TestReductions:
    def test_pi_zero_reduces_to_deletion_table(self):
        t_joint, _g, tail = indel_block_transition(6, 0.2, 0.0, max_extra=0)
        t_del, _g2 = exact_block_transition(6, 0.2)
        assert tail == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(t_joint[:, :-1], t_del)

    def test_pd_zero_reduces_to_insertion_table(self):
        t_joint, _g, _tail = indel_block_transition(5, 0.0, 0.15, max_extra=3)
        t_ins, _g2, _t2 = insertion_block_transition(5, 0.15, max_extra=3)
        offset = sum(2**m for m in range(5))  # lengths 0..4 unreachable
        assert np.allclose(t_joint[:, :offset], 0.0)
        assert np.allclose(t_joint[:, offset:-1], t_ins[:, :-1])

    def test_synchronous_identity(self):
        t, groups, tail = indel_block_transition(4, 0.0, 0.0, max_extra=0)
        # Only length-4 outputs, identity.
        block = t[:, -17:-1]
        assert np.allclose(block, np.eye(16))
        assert tail == 0.0


class TestTable:
    def test_rows_stochastic(self):
        t, _g, _tail = indel_block_transition(5, 0.15, 0.1, max_extra=4)
        assert np.allclose(t.sum(axis=1), 1.0)

    def test_tail_small_for_moderate_pi(self):
        _t, _g, tail = indel_block_transition(6, 0.1, 0.1, max_extra=4)
        assert tail < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            indel_block_transition(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            indel_block_transition(4, 0.6, 0.6)
        with pytest.raises(ValueError):
            indel_block_transition(4, 0.1, 0.1, max_extra=99)


class TestBound:
    def test_below_erasure_bound(self):
        for pd, pi in [(0.1, 0.05), (0.2, 0.1)]:
            r = indel_block_bound(6, pd, pi)
            assert r.lower_bound <= r.erasure_upper + 1e-9
            assert r.bracket_width >= 0

    def test_matches_deletion_only_information(self):
        """With pi = 0 the block information must match the
        deletion-module computation."""
        from repro.bounds.deletion import block_mutual_information_bound

        r_joint = indel_block_bound(6, 0.2, 0.0, max_extra=0)
        r_del = block_mutual_information_bound(6, 0.2)
        assert r_joint.max_block_information == pytest.approx(
            r_del.max_block_information, abs=1e-6
        )

    def test_information_decreases_with_insertions(self):
        r0 = indel_block_bound(6, 0.1, 0.0)
        r1 = indel_block_bound(6, 0.1, 0.15)
        assert r1.max_block_information < r0.max_block_information

    def test_synchronous_full_information(self):
        r = indel_block_bound(5, 0.0, 0.0, max_extra=0)
        assert r.max_block_information == pytest.approx(5.0, abs=1e-6)
