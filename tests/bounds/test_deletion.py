"""Numerical deletion-channel bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.deletion import (
    block_mutual_information_bound,
    deletion_capacity_bracket,
    erasure_upper_bound_binary,
    exact_block_transition,
    gallager_lower_bound,
    subsequence_embedding_counts,
)


class TestGallager:
    def test_endpoints(self):
        assert gallager_lower_bound(0.0) == 1.0
        assert gallager_lower_bound(0.5) == 0.0
        assert gallager_lower_bound(1.0) == 1.0  # clamped H(1)=0 artifact

    def test_known_value(self):
        assert gallager_lower_bound(0.1) == pytest.approx(0.531, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            gallager_lower_bound(-0.1)


class TestEmbeddingCounts:
    def test_simple_cases(self):
        xs = np.array([[0, 1, 0]], dtype=np.int8)
        ys = np.array([[0]], dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 2
        ys = np.array([[0, 0]], dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 1
        ys = np.array([[1, 0]], dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 1
        ys = np.array([[1, 1]], dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 0

    def test_empty_subsequence(self):
        xs = np.array([[0, 1]], dtype=np.int8)
        ys = np.zeros((1, 0), dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 1

    def test_longer_y_zero(self):
        xs = np.array([[0]], dtype=np.int8)
        ys = np.array([[0, 0]], dtype=np.int8)
        assert subsequence_embedding_counts(xs, ys)[0, 0] == 0

    def test_total_count_identity(self):
        """Sum over all y of N(x, y) = 2^n (each deletion pattern gives
        exactly one subsequence... counted with multiplicity)."""
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, 8).astype(np.int8)[None, :]
        total = 0.0
        for m in range(9):
            if m == 0:
                ys = np.zeros((1, 0), dtype=np.int8)
            else:
                codes = np.arange(1 << m)
                ys = ((codes[:, None] >> np.arange(m - 1, -1, -1)) & 1).astype(
                    np.int8
                )
            total += subsequence_embedding_counts(x, ys).sum()
        # Each of the C(8, m) deletion patterns yields one y.
        assert total == pytest.approx(2**8)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 6, 3
        x = rng.integers(0, 2, n).astype(np.int8)
        y = rng.integers(0, 2, m).astype(np.int8)
        # Brute force over deletion patterns.
        import itertools

        count = sum(
            1
            for keep in itertools.combinations(range(n), m)
            if np.array_equal(x[list(keep)], y)
        )
        got = subsequence_embedding_counts(x[None, :], y[None, :])[0, 0]
        assert got == count


class TestBlockTransition:
    @pytest.mark.parametrize("pd", [0.0, 0.1, 0.5, 1.0])
    def test_rows_stochastic(self, pd):
        t, _ = exact_block_transition(6, pd)
        assert np.allclose(t.sum(axis=1), 1.0)

    def test_shape(self):
        t, groups = exact_block_transition(5, 0.2)
        assert t.shape == (32, sum(2**m for m in range(6)))
        assert len(groups) == 6

    def test_zero_deletion_is_identity_block(self):
        t, _ = exact_block_transition(4, 0.0)
        # All mass on the length-4 outputs, diagonal.
        full_block = t[:, -16:]
        assert np.allclose(full_block, np.eye(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_block_transition(0, 0.1)
        with pytest.raises(ValueError):
            exact_block_transition(50, 0.1)
        with pytest.raises(ValueError):
            exact_block_transition(4, 1.5)


class TestBlockBound:
    def test_zero_deletion_full_rate(self):
        b = block_mutual_information_bound(6, 0.0)
        assert b.max_block_information == pytest.approx(6.0, abs=1e-6)
        assert b.iid_rate == pytest.approx(1.0, abs=1e-6)

    def test_bound_below_erasure(self):
        for pd in (0.1, 0.3, 0.5):
            b = block_mutual_information_bound(7, pd)
            assert b.lower_bound <= erasure_upper_bound_binary(pd) + 1e-9
            assert b.iid_rate <= erasure_upper_bound_binary(pd) + 1e-9

    def test_max_at_least_iid(self):
        b = block_mutual_information_bound(6, 0.2)
        assert b.max_block_information >= b.iid_block_information - 1e-9

    def test_block_information_grows_with_n(self):
        b5 = block_mutual_information_bound(5, 0.2)
        b8 = block_mutual_information_bound(8, 0.2)
        assert b8.max_block_information > b5.max_block_information
        # The per-symbol iid rate *decreases* with n: short blocks get
        # disproportionate help from the known block boundary.
        assert b8.iid_rate <= b5.iid_rate + 1e-9
        # The corrected lower bound improves as the log2(n+1)/n penalty
        # amortizes.
        assert b8.lower_bound >= b5.lower_bound - 1e-9


class TestBracket:
    def test_keys_and_order(self):
        out = deletion_capacity_bracket(0.2, block_length=6)
        assert out["best_lower"] <= out["erasure_upper"] + 1e-12
        assert out["best_lower"] == pytest.approx(
            max(out["gallager_lower"], out["block_lower"])
        )

    def test_without_block_bound(self):
        out = deletion_capacity_bracket(0.2, include_block_bound=False)
        assert "block_lower" not in out
        assert out["best_lower"] == out["gallager_lower"]
