"""Batched bound sweeps vs. their scalar twins.

Every ``*_sweep`` function promises the same numbers as calling its
scalar counterpart point by point (to 1e-12 — batched and scalar solves
share arithmetic paths down to BLAS reduction order), with the whole
grid's tables built once and all Blahut-Arimoto solves inside one
batched kernel invocation.
"""

import numpy as np
import pytest

from repro.bounds import (
    block_bound_sweep,
    block_mutual_information_bound,
    deletion_block_transition_stack,
    exact_block_transition,
    indel_block_bound,
    indel_block_bound_sweep,
    indel_block_transition,
    indel_block_transition_stack,
    optimize_markov_input,
    optimize_markov_input_sweep,
)

PARITY = 1e-12

PDS = (0.05, 0.15, 0.3, 0.5)
INDEL_GRID = ((0.05, 0.02), (0.15, 0.05), (0.3, 0.1))


class TestDeletionStack:
    def test_stack_matches_scalar_tables(self):
        stack, groups = deletion_block_transition_stack(4, PDS)
        assert stack.shape[0] == len(PDS)
        for i, pd in enumerate(PDS):
            table, scalar_groups = exact_block_transition(4, pd)
            np.testing.assert_array_equal(stack[i], table)
            assert len(groups) == len(scalar_groups)

    def test_sweep_matches_scalar_bounds(self):
        sweep = block_bound_sweep(PDS, block_length=4)
        for pd, row in zip(PDS, sweep):
            scalar = block_mutual_information_bound(4, pd)
            assert abs(row.lower_bound - scalar.lower_bound) < PARITY
            assert (
                abs(row.max_block_information - scalar.max_block_information)
                < PARITY
            )
            assert (
                abs(row.iid_block_information - scalar.iid_block_information)
                < PARITY
            )

    def test_empty_grid_is_empty_sweep(self):
        assert block_bound_sweep([], block_length=4) == []


class TestIndelStack:
    def test_stack_matches_scalar_tables(self):
        stack, groups, tails = indel_block_transition_stack(
            3, INDEL_GRID, max_extra=2
        )
        assert stack.shape[0] == len(INDEL_GRID)
        for i, (pd, pi) in enumerate(INDEL_GRID):
            table, scalar_groups, tail = indel_block_transition(
                3, pd, pi, max_extra=2
            )
            np.testing.assert_allclose(stack[i], table, atol=1e-15)
            assert abs(tails[i] - tail) < 1e-15
            assert len(groups) == len(scalar_groups)

    def test_sweep_matches_scalar_bounds(self):
        sweep = indel_block_bound_sweep(
            INDEL_GRID, block_length=3, max_extra=2
        )
        for (pd, pi), row in zip(INDEL_GRID, sweep):
            scalar = indel_block_bound(3, pd, pi, max_extra=2)
            assert abs(row.lower_bound - scalar.lower_bound) < PARITY
            assert (
                abs(row.max_block_information - scalar.max_block_information)
                < PARITY
            )
            assert abs(row.truncated_mass - scalar.truncated_mass) < 1e-15
            assert row.erasure_upper == scalar.erasure_upper

    def test_rejects_bad_grids(self):
        with pytest.raises(ValueError, match="non-empty"):
            indel_block_transition_stack(3, [])
        with pytest.raises(ValueError, match="out of range"):
            indel_block_transition_stack(3, [(1.2, 0.0)])
        with pytest.raises(ValueError, match="exceed 1"):
            indel_block_transition_stack(3, [(0.7, 0.6)])


class TestMarkovSweep:
    def test_sweep_matches_scalar_optimization(self):
        pds = (0.1, 0.3)
        sweep = optimize_markov_input_sweep(4, pds)
        for pd, bound in zip(pds, sweep):
            scalar = optimize_markov_input(4, pd)
            assert abs(bound.best_flip_prob - scalar.best_flip_prob) < 1e-8
            assert (
                abs(bound.block_information - scalar.block_information) < 1e-10
            )
            assert abs(bound.lower_bound - scalar.lower_bound) < 1e-10
