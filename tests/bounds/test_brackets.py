"""Combined bound ladders (experiment E9 backend)."""

import pytest

from repro.bounds.brackets import BracketRow, capacity_bracket_sweep


class TestSweep:
    def test_rows_consistent(self):
        rows = capacity_bracket_sweep([0.1, 0.3, 0.5], block_length=6)
        assert len(rows) == 3
        for row in rows:
            assert row.is_consistent()

    def test_feedback_equals_erasure(self):
        for row in capacity_bracket_sweep([0.2], block_length=6):
            assert row.feedback_capacity == pytest.approx(row.erasure_upper)

    def test_bounds_decrease_with_pd(self):
        rows = capacity_bracket_sweep([0.1, 0.2, 0.4], block_length=6)
        uppers = [r.erasure_upper for r in rows]
        assert uppers == sorted(uppers, reverse=True)

    def test_inconsistent_row_detected(self):
        bad = BracketRow(
            deletion_prob=0.1,
            gallager_lower=0.9,
            block_lower=0.0,
            best_lower=0.9,
            erasure_upper=0.5,  # below the lower bound
            feedback_capacity=0.5,
        )
        assert not bad.is_consistent()
