"""General timed-DMC capacity (Dinkelbach + penalized Blahut-Arimoto)."""

import numpy as np
import pytest

from repro.infotheory.channels import (
    binary_symmetric_channel,
    bsc_capacity,
    z_channel,
)
from repro.infotheory.noiseless import noiseless_capacity_per_second
from repro.timing.timed_dmc import timed_dmc_capacity
from repro.timing.timed_z import timed_z_capacity


class TestSpecialCases:
    def test_unit_durations_recover_plain_capacity(self):
        w = binary_symmetric_channel(0.1).transition_matrix
        r = timed_dmc_capacity(w, np.array([1.0, 1.0]))
        assert r.capacity == pytest.approx(bsc_capacity(0.1), abs=1e-8)

    def test_noiseless_channel(self):
        r = timed_dmc_capacity(np.eye(2), np.array([1.0, 2.0]))
        assert r.capacity == pytest.approx(
            noiseless_capacity_per_second([1, 2]), abs=1e-8
        )

    def test_noiseless_three_symbols(self):
        r = timed_dmc_capacity(np.eye(3), np.array([1.0, 2.0, 3.0]))
        assert r.capacity == pytest.approx(
            noiseless_capacity_per_second([1, 2, 3]), abs=1e-8
        )

    @pytest.mark.parametrize(
        "t0,t1,p", [(1.0, 2.5, 0.15), (2.0, 1.0, 0.3), (1.0, 1.0, 0.4)]
    )
    def test_timed_z_channel(self, t0, t1, p):
        w = z_channel(p).transition_matrix
        # Per-input expected durations (output-attached times).
        tau = np.array([t0, (1 - p) * t1 + p * t0])
        r = timed_dmc_capacity(w, tau)
        assert r.capacity == pytest.approx(
            timed_z_capacity(t0, t1, p), abs=1e-7
        )


class TestStructure:
    def test_identity_relation(self):
        w = binary_symmetric_channel(0.05).transition_matrix
        r = timed_dmc_capacity(w, np.array([1.0, 3.0]))
        assert r.capacity == pytest.approx(
            r.bits_per_symbol / r.mean_time, abs=1e-10
        )

    def test_scaling_durations(self):
        w = z_channel(0.2).transition_matrix
        tau = np.array([1.0, 2.0])
        r1 = timed_dmc_capacity(w, tau)
        r2 = timed_dmc_capacity(w, 2 * tau)
        assert r2.capacity == pytest.approx(r1.capacity / 2, abs=1e-8)

    def test_favors_fast_symbols(self):
        # Make symbol 0 very cheap: it should be used more than 1.
        r = timed_dmc_capacity(np.eye(2), np.array([1.0, 10.0]))
        assert r.input_distribution[0] > 0.8

    def test_dominates_uniform_input(self):
        from repro.infotheory.entropy import mutual_information

        w = z_channel(0.25).transition_matrix
        tau = np.array([1.0, 2.0])
        r = timed_dmc_capacity(w, tau)
        uniform_rate = mutual_information([0.5, 0.5], w) / 1.5
        assert r.capacity >= uniform_rate - 1e-9


class TestValidation:
    def test_rejects_bad_transition(self):
        with pytest.raises(ValueError):
            timed_dmc_capacity(np.array([[0.9, 0.2], [0.1, 0.9]]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            timed_dmc_capacity(np.array([0.5, 0.5]), np.array([1.0]))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_transition_entries(self, bad):
        # Regression: a NaN row previously fell through to the row-sum
        # check (NaN comparisons are False), producing the misleading
        # "rows must be distributions" — or, for a NaN that summed
        # plausibly, reaching the solver. Non-finite entries must be
        # named as such.
        w = np.array([[0.9, 0.1], [bad, 0.5]])
        with pytest.raises(ValueError, match="non-finite"):
            timed_dmc_capacity(w, np.array([1.0, 1.0]))

    def test_rejects_bad_durations(self):
        w = binary_symmetric_channel(0.1).transition_matrix
        with pytest.raises(ValueError):
            timed_dmc_capacity(w, np.array([1.0]))
        with pytest.raises(ValueError):
            timed_dmc_capacity(w, np.array([1.0, 0.0]))


class TestInnerConvergenceSurfacing:
    def test_healthy_solve_reports_inner_converged(self):
        w = z_channel(0.2).transition_matrix
        r = timed_dmc_capacity(w, np.array([1.0, 2.0]))
        assert r.inner_converged is True
        assert r.diagnostics is not None
        assert not any(
            "unconverged_inner" in note for note in r.diagnostics.notes
        )

    def test_exhausted_inner_budget_is_not_silent(self):
        # Regression: the inner penalized solve used to hit max_iter
        # and hand its last iterate to the outer Dinkelbach loop with
        # no trace. It must now be visible on the result.
        from repro.numerics import collect_solver_statuses
        from repro.timing.timed_dmc import INNER_SOLVER

        w = z_channel(0.2).transition_matrix
        with collect_solver_statuses() as statuses:
            r = timed_dmc_capacity(
                w, np.array([1.0, 2.0]), inner_max_iter=2
            )
        assert r.inner_converged is False
        assert any(
            "unconverged_inner_solves=" in note
            for note in r.diagnostics.notes
        )
        assert statuses[f"{INNER_SOLVER}:max_iter"] >= 1
        # The answer is still finite and sane — degraded, not garbage.
        assert np.isfinite(r.capacity) and r.capacity >= 0.0
