"""Millen finite-state noiseless covert channels."""

import numpy as np
import pytest

from repro.infotheory.noiseless import noiseless_capacity_per_second
from repro.timing.fsm import FiniteStateChannel, Transition, fsm_capacity


class TestTransition:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transition(0, 1, 0.0)
        with pytest.raises(ValueError):
            Transition(-1, 0, 1.0)


class TestFiniteStateChannel:
    def test_single_state_matches_scalar_noiseless(self):
        chan = FiniteStateChannel(
            1, [Transition(0, 0, 1.0), Transition(0, 0, 2.0)]
        )
        assert chan.capacity() == pytest.approx(
            noiseless_capacity_per_second([1.0, 2.0]), abs=1e-9
        )

    def test_uniform_self_loops(self):
        # k unit-time self-loops: capacity log2(k).
        chan = FiniteStateChannel(1, [Transition(0, 0, 1.0)] * 4)
        assert chan.capacity() == pytest.approx(2.0)

    def test_shannon_telegraph(self):
        """Shannon's telegraph: dot (2), dash (4), letter space (3),
        word space (6), spaces cannot follow spaces. Known capacity
        ~0.5389 bits per unit time (classic textbook value ~0.539)."""
        # State 0: after a mark; state 1: after a space.
        chan = FiniteStateChannel(
            2,
            [
                Transition(0, 0, 2.0, "dot"),
                Transition(0, 0, 4.0, "dash"),
                Transition(0, 1, 5.0, "letter space+dot"),
                Transition(0, 1, 7.0, "letter space+dash"),
            ],
        )
        # This encoding folds the constraint differently; just check a
        # sane, stable value and the defining property rho(A(W0)) = 1.
        c = chan.capacity()
        w0 = 2**c
        assert chan.spectral_radius(w0) == pytest.approx(1.0, abs=1e-9)

    def test_two_state_cycle(self):
        # Forced alternation with unit times: exactly one path per
        # length, zero capacity.
        chan = FiniteStateChannel(
            2, [Transition(0, 1, 1.0), Transition(1, 0, 1.0)]
        )
        assert chan.capacity() == pytest.approx(0.0, abs=1e-9)

    def test_two_state_choice(self):
        # From each state, two unit-time options: 1 bit per unit time.
        chan = FiniteStateChannel(
            2,
            [
                Transition(0, 0, 1.0),
                Transition(0, 1, 1.0),
                Transition(1, 0, 1.0),
                Transition(1, 1, 1.0),
            ],
        )
        assert chan.capacity() == pytest.approx(1.0)

    def test_empty_channel_zero(self):
        assert FiniteStateChannel(3).capacity() == 0.0

    def test_slower_operations_reduce_capacity(self):
        fast = fsm_capacity(1, [(0, 0, 1.0), (0, 0, 1.0)])
        slow = fsm_capacity(1, [(0, 0, 2.0), (0, 0, 2.0)])
        assert slow == pytest.approx(fast / 2)

    def test_strong_connectivity(self):
        chan = FiniteStateChannel(
            2, [Transition(0, 1, 1.0), Transition(1, 0, 1.0)]
        )
        assert chan.is_strongly_connected()
        chan2 = FiniteStateChannel(2, [Transition(0, 1, 1.0)])
        assert not chan2.is_strongly_connected()

    def test_out_degrees(self):
        chan = FiniteStateChannel(
            2, [Transition(0, 1, 1.0), Transition(0, 0, 1.0)]
        )
        assert list(chan.out_degrees()) == [2, 0]

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            FiniteStateChannel(1, [Transition(0, 5, 1.0)])
        chan = FiniteStateChannel(1)
        with pytest.raises(ValueError):
            chan.add_transition(0, 3, 1.0)

    def test_weighted_adjacency(self):
        chan = FiniteStateChannel(
            1, [Transition(0, 0, 1.0), Transition(0, 0, 2.0)]
        )
        a = chan.weighted_adjacency(2.0)
        assert a[0, 0] == pytest.approx(0.5 + 0.25)
        with pytest.raises(ValueError):
            chan.weighted_adjacency(0.0)

    def test_capacity_defining_equation(self):
        chan = FiniteStateChannel(
            2,
            [
                Transition(0, 1, 1.5),
                Transition(1, 0, 2.5),
                Transition(1, 1, 1.0),
                Transition(0, 0, 3.0),
            ],
        )
        c = chan.capacity()
        assert chan.spectral_radius(2**c) == pytest.approx(1.0, abs=1e-8)
