"""Simple Timing Channels (Moskowitz & Miller 1994)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.stc import SimpleTimingChannel, stc_capacity, stc_capacity_bounds


class TestSTC:
    def test_uniform_times(self):
        stc = SimpleTimingChannel([2.0, 2.0, 2.0, 2.0])
        assert stc.capacity() == pytest.approx(1.0)

    def test_golden_case(self):
        assert stc_capacity([1, 2]) == pytest.approx(0.6942, abs=1e-4)

    def test_optimal_distribution_sums_to_one(self):
        stc = SimpleTimingChannel([1.0, 2.0, 3.0])
        p = stc.optimal_distribution()
        assert p.sum() == pytest.approx(1.0)
        # Faster symbols are used more.
        assert p[0] > p[1] > p[2]

    def test_capacity_identity(self):
        """C = H(p*) / E[T] under the optimal distribution."""
        stc = SimpleTimingChannel([1.0, 1.5, 4.0])
        assert stc.capacity() == pytest.approx(
            stc.bits_per_symbol() / stc.mean_symbol_time()
        )

    def test_single_symbol_zero_capacity(self):
        assert stc_capacity([5.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleTimingChannel([])
        with pytest.raises(ValueError):
            SimpleTimingChannel([1.0, -1.0])

    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=8.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40)
    def test_bounds_bracket_capacity(self, times):
        lower, upper = stc_capacity_bounds(times)
        c = stc_capacity(times)
        assert lower - 1e-9 <= c <= upper + 1e-9

    def test_bounds_tight_for_uniform(self):
        lower, upper = stc_capacity_bounds([3.0, 3.0])
        assert lower == pytest.approx(upper)
        assert lower == pytest.approx(stc_capacity([3.0, 3.0]))

    def test_bounds_single_symbol(self):
        assert stc_capacity_bounds([2.0]) == (0.0, 0.0)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            stc_capacity_bounds([])
        with pytest.raises(ValueError):
            stc_capacity_bounds([0.0, 1.0])

    def test_adding_symbol_never_hurts(self):
        assert stc_capacity([1, 2, 5]) >= stc_capacity([1, 2]) - 1e-12
