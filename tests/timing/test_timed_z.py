"""Timed Z-channel (Moskowitz, Greenwald & Kang 1996)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.channels import z_channel_capacity
from repro.infotheory.noiseless import noiseless_capacity_per_second
from repro.timing.timed_z import (
    TimedZChannel,
    timed_z_capacity,
    timed_z_information_rate,
    timed_z_optimality_residual,
)


class TestReductions:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.3, 0.5, 0.8])
    def test_unit_times_recover_classic_z(self, p):
        assert timed_z_capacity(1.0, 1.0, p) == pytest.approx(
            z_channel_capacity(p), abs=1e-8
        )

    @pytest.mark.parametrize("t0,t1", [(1.0, 2.0), (2.0, 1.0), (1.0, 5.0)])
    def test_noiseless_recovers_shannon(self, t0, t1):
        assert timed_z_capacity(t0, t1, 0.0) == pytest.approx(
            noiseless_capacity_per_second([t0, t1]), abs=1e-7
        )

    def test_total_noise_zero_capacity(self):
        assert timed_z_capacity(1.0, 2.0, 1.0) == 0.0


class TestStructure:
    def test_capacity_decreasing_in_noise(self):
        caps = [timed_z_capacity(1, 2, p) for p in (0.0, 0.1, 0.3, 0.6, 0.9)]
        assert caps == sorted(caps, reverse=True)

    def test_faster_one_symbol_higher_capacity(self):
        assert timed_z_capacity(1, 1.5, 0.1) > timed_z_capacity(1, 3.0, 0.1)

    def test_time_scaling(self):
        # Doubling all durations halves bits per time unit.
        assert timed_z_capacity(2, 4, 0.2) == pytest.approx(
            timed_z_capacity(1, 2, 0.2) / 2, abs=1e-8
        )

    def test_information_rate_at_endpoints(self):
        ch = TimedZChannel(1, 2, 0.2)
        assert ch.information_per_symbol(0.0) == 0.0
        assert ch.information_rate(1.0) >= 0.0

    def test_stationarity_residual_zero_at_optimum(self):
        c, q = TimedZChannel(1.0, 2.5, 0.15).capacity()
        assert timed_z_optimality_residual(1.0, 2.5, 0.15, q) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_residual_nonzero_off_optimum(self):
        _, q = TimedZChannel(1.0, 2.5, 0.15).capacity()
        off = min(0.9, q + 0.2)
        assert abs(timed_z_optimality_residual(1.0, 2.5, 0.15, off)) > 1e-4

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_dominates_any_input(self, t0, t1, p, q):
        c = timed_z_capacity(t0, t1, p)
        assert c >= timed_z_information_rate(t0, t1, p, q) - 1e-7


class TestValidation:
    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            TimedZChannel(0.0, 1.0, 0.1)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            TimedZChannel(1.0, 1.0, 1.5)

    def test_rejects_bad_q(self):
        ch = TimedZChannel(1, 2, 0.1)
        with pytest.raises(ValueError):
            ch.information_per_symbol(1.5)
        with pytest.raises(ValueError):
            timed_z_optimality_residual(1, 2, 0.1, 0.0)
