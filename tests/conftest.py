"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent generators with distinct seeds."""

    def make(seed: int = 0):
        return np.random.default_rng(seed)

    return make
