"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _no_ambient_result_store(monkeypatch):
    """Keep the result store opt-in: tests only see caching when they
    activate a store themselves (use_store or an explicit env set)."""
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent generators with distinct seeds."""

    def make(seed: int = 0):
        return np.random.default_rng(seed)

    return make
