"""Golden regression values.

Frozen numeric outputs of the deterministic computations: any change to
these values means a formula changed, intentionally or not. Values were
produced by the initial validated implementation (cross-checked against
Blahut-Arimoto and Monte-Carlo simulation; see EXPERIMENTS.md).
"""

import pytest

from repro.bounds.deletion import (
    block_mutual_information_bound,
    gallager_lower_bound,
)
from repro.bounds.markov_input import optimize_markov_input
from repro.core.capacity import (
    converted_capacity,
    convergence_ratio,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
)
from repro.core.noisy import noisy_feedback_lower_bound
from repro.infotheory.channels import z_channel_capacity
from repro.infotheory.noiseless import noiseless_capacity_per_second
from repro.timing.stc import stc_capacity
from repro.timing.timed_z import timed_z_capacity


GOLDEN = [
    # (description, value_fn, expected)
    ("erasure UB N=4 pd=.1", lambda: erasure_upper_bound(4, 0.1), 3.6),
    (
        "C_conv N=3 pi=.1",
        lambda: converted_capacity(3, 0.1),
        2.326286815091,
    ),
    (
        "paper LB N=4 pd=pi=.1",
        lambda: feedback_lower_bound(4, 0.1, 0.1),
        3.184864517939,
    ),
    (
        "exact LB N=4 pd=pi=.1",
        lambda: feedback_lower_bound_exact(4, 0.1, 0.1),
        3.110966081541,
    ),
    (
        "noisy LB N=3 pd=pi=.1 ps=.05",
        lambda: noisy_feedback_lower_bound(3, 0.1, 0.1, 0.05),
        2.013704312109,
    ),
    (
        "convergence ratio N=8 p=.1",
        lambda: convergence_ratio(8, 0.1),
        0.935546018527,
    ),
    ("Gallager LB pd=.1", lambda: gallager_lower_bound(0.1), 0.531004406410),
    (
        "telegraph capacity {1,2}",
        lambda: noiseless_capacity_per_second([1, 2]),
        0.694241913631,
    ),
    ("STC {1,2,3}", lambda: stc_capacity([1, 2, 3]), 0.879146421607),
    (
        "Z-channel p=.3",
        lambda: z_channel_capacity(0.3),
        0.503691933485,
    ),
    (
        "timed Z t0=1 t1=2 p=.2",
        lambda: timed_z_capacity(1.0, 2.0, 0.2),
        0.470925051116,
    ),
]


@pytest.mark.parametrize(
    "description,value_fn,expected", GOLDEN, ids=[g[0] for g in GOLDEN]
)
def test_golden_value(description, value_fn, expected):
    assert value_fn() == pytest.approx(expected, abs=1e-9)


class TestGoldenBlockBounds:
    """Heavier deterministic computations, looser freeze tolerance."""

    def test_block8_deletion_info(self):
        b = block_mutual_information_bound(8, 0.2)
        assert b.max_block_information == pytest.approx(4.52990915, abs=1e-6)
        assert b.iid_block_information == pytest.approx(4.33610051, abs=1e-6)

    def test_markov_block8(self):
        b = optimize_markov_input(8, 0.3)
        assert b.block_information == pytest.approx(3.4634, abs=2e-3)
        assert b.best_flip_prob == pytest.approx(0.297, abs=0.01)
