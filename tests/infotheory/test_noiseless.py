"""Shannon noiseless channels with non-uniform symbol durations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.noiseless import (
    characteristic_root,
    noiseless_capacity_per_second,
    uniform_duration_capacity,
)


class TestCharacteristicRoot:
    def test_golden_ratio_case(self):
        # Durations {1, 2}: X0 is the golden ratio.
        root = characteristic_root([1.0, 2.0])
        assert root == pytest.approx((1 + np.sqrt(5)) / 2, abs=1e-10)

    def test_uniform_durations(self):
        # k symbols of duration t: X0^t = k.
        root = characteristic_root([2.0, 2.0, 2.0, 2.0])
        assert root == pytest.approx(2.0)

    def test_single_symbol_is_one(self):
        assert characteristic_root([3.0]) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            characteristic_root([1.0, 0.0])
        with pytest.raises(ValueError):
            characteristic_root([])

    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=10.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40)
    def test_root_satisfies_equation(self, durations):
        x0 = characteristic_root(durations)
        assert sum(x0 ** (-t) for t in durations) == pytest.approx(1.0, abs=1e-8)


class TestCapacity:
    def test_uniform_matches_direct_formula(self):
        assert noiseless_capacity_per_second([1.0] * 8) == pytest.approx(3.0)
        assert uniform_duration_capacity(8, 1.0) == pytest.approx(3.0)

    def test_slower_symbols_lower_capacity(self):
        fast = noiseless_capacity_per_second([1.0, 1.0])
        slow = noiseless_capacity_per_second([2.0, 2.0])
        assert slow == pytest.approx(fast / 2)

    def test_telegraph_classic(self):
        # Shannon's 1948 value for durations {1,2}: log2(golden) ~ 0.6942.
        assert noiseless_capacity_per_second([1, 2]) == pytest.approx(
            0.6942, abs=1e-4
        )

    def test_adding_a_symbol_increases_capacity(self):
        assert noiseless_capacity_per_second([1, 2, 3]) > \
            noiseless_capacity_per_second([1, 2])

    def test_uniform_duration_capacity_validation(self):
        with pytest.raises(ValueError):
            uniform_duration_capacity(0)
        with pytest.raises(ValueError):
            uniform_duration_capacity(4, -1.0)
