"""Markov-chain utilities."""

import numpy as np
import pytest

from repro.infotheory.entropy import binary_entropy
from repro.infotheory.markov import (
    entropy_rate,
    is_irreducible,
    simulate_chain,
    stationary_distribution,
    validate_stochastic_matrix,
)


def two_state(a: float, b: float) -> np.ndarray:
    """P(0->1)=a, P(1->0)=b."""
    return np.array([[1 - a, a], [b, 1 - b]])


class TestValidation:
    def test_accepts_valid(self):
        validate_stochastic_matrix(two_state(0.3, 0.4))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            validate_stochastic_matrix(np.ones((2, 3)) / 3)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            validate_stochastic_matrix(np.array([[0.5, 0.6], [0.5, 0.5]]))


class TestStationary:
    def test_two_state_closed_form(self):
        a, b = 0.3, 0.1
        pi = stationary_distribution(two_state(a, b))
        assert pi == pytest.approx([b / (a + b), a / (a + b)])

    def test_doubly_stochastic_uniform(self):
        p = np.array([[0.5, 0.3, 0.2], [0.2, 0.5, 0.3], [0.3, 0.2, 0.5]])
        pi = stationary_distribution(p)
        assert pi == pytest.approx([1 / 3] * 3)

    def test_fixed_point(self):
        rng = np.random.default_rng(0)
        p = rng.random((5, 5))
        p /= p.sum(axis=1, keepdims=True)
        pi = stationary_distribution(p)
        assert np.allclose(pi @ p, pi, atol=1e-10)


class TestEntropyRate:
    def test_iid_chain(self):
        # Rows identical => i.i.d. process; rate = H(row).
        p = np.array([[0.7, 0.3], [0.7, 0.3]])
        assert entropy_rate(p) == pytest.approx(binary_entropy(0.3))

    def test_deterministic_cycle_zero(self):
        p = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert entropy_rate(p) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_two_state(self):
        p = two_state(0.2, 0.2)
        assert entropy_rate(p) == pytest.approx(binary_entropy(0.2))


class TestIrreducibility:
    def test_connected(self):
        assert is_irreducible(two_state(0.5, 0.5))

    def test_absorbing_not_irreducible(self):
        p = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert not is_irreducible(p)


class TestSimulation:
    def test_trajectory_length_and_range(self, rng):
        traj = simulate_chain(two_state(0.3, 0.3), 500, rng)
        assert traj.shape == (500,)
        assert set(np.unique(traj)) <= {0, 1}

    def test_occupancy_matches_stationary(self, rng):
        p = two_state(0.3, 0.1)
        traj = simulate_chain(p, 100_000, rng)
        pi = stationary_distribution(p)
        assert traj.mean() == pytest.approx(pi[1], abs=0.01)

    def test_initial_state_respected(self, rng):
        traj = simulate_chain(two_state(0.0, 0.0), 10, rng, initial_state=1)
        assert np.all(traj == 1)

    def test_rejects_bad_initial(self, rng):
        with pytest.raises(ValueError):
            simulate_chain(two_state(0.1, 0.1), 5, rng, initial_state=7)

    def test_zero_steps(self, rng):
        assert simulate_chain(two_state(0.1, 0.1), 0, rng).size == 0
