"""Guarded Blahut-Arimoto behaviour: input validation, initial-input
smoothing policy, and the degradation ladder."""

import numpy as np
import pytest

from repro.infotheory import (
    binary_symmetric_channel,
    blahut_arimoto,
    blahut_arimoto_guarded,
    mutual_information,
)
from repro.numerics import SolverStatus, collect_solver_statuses

BSC = binary_symmetric_channel(0.1).transition_matrix


class TestInputValidation:
    def test_non_finite_transition_rejected_explicitly(self):
        w = np.array([[0.5, 0.5], [np.nan, 1.0]])
        with pytest.raises(ValueError, match="non-finite"):
            blahut_arimoto(w)
        w_inf = np.array([[0.5, 0.5], [np.inf, 0.0]])
        with pytest.raises(ValueError, match="non-finite"):
            blahut_arimoto(w_inf)

    def test_damping_domain(self):
        with pytest.raises(ValueError, match="damping"):
            blahut_arimoto(BSC, damping=1.0)
        with pytest.raises(ValueError, match="damping"):
            blahut_arimoto(BSC, damping=-0.1)
        assert blahut_arimoto(BSC, damping=0.5).converged


class TestInitialInputPolicy:
    def test_zero_entries_are_smoothed_and_recover(self):
        # A [1, 0] start point is absorbing under the plain
        # multiplicative update; smoothing must let it reach capacity.
        result = blahut_arimoto(BSC, initial_input=np.array([1.0, 0.0]))
        assert result.converged
        exact = 1.0 - (-0.1 * np.log2(0.1) - 0.9 * np.log2(0.9))
        assert result.capacity == pytest.approx(exact, abs=1e-8)
        assert result.input_distribution == pytest.approx([0.5, 0.5], abs=1e-4)

    def test_strictly_positive_start_used_exactly(self):
        # With max_iter=1 the reported lower bound is I(p0, W) for the
        # *given* p0 — any smoothing of a strictly positive start would
        # perturb it.
        p0 = np.array([0.3, 0.7])
        result = blahut_arimoto(BSC, initial_input=p0, max_iter=1)
        assert result.capacity == pytest.approx(
            mutual_information(p0, BSC), abs=1e-12
        )

    def test_invalid_initial_input(self):
        with pytest.raises(ValueError, match="shape"):
            blahut_arimoto(BSC, initial_input=np.array([1.0, 0.0, 0.0]))
        with pytest.raises(ValueError, match="distribution"):
            blahut_arimoto(BSC, initial_input=np.array([0.6, 0.6]))
        with pytest.raises(ValueError, match="distribution"):
            blahut_arimoto(BSC, initial_input=np.array([1.5, -0.5]))


class TestGuardedLadder:
    def test_nominal_channel_converges_without_retries(self):
        result = blahut_arimoto_guarded(BSC)
        assert result.converged
        assert result.status is SolverStatus.CONVERGED
        assert result.diagnostics is not None
        assert result.diagnostics.retries == 0

    def test_result_matches_plain_solver_on_nominal_channel(self):
        plain = blahut_arimoto(BSC)
        guarded = blahut_arimoto_guarded(BSC)
        assert guarded.capacity == pytest.approx(plain.capacity, abs=1e-12)
        assert guarded.iterations == plain.iterations

    def test_status_recorded_for_collector(self):
        with collect_solver_statuses() as counts:
            blahut_arimoto_guarded(BSC)
        assert counts == {"blahut_arimoto:converged": 1}

    def test_diagnostics_describe_names_the_solver(self):
        result = blahut_arimoto(BSC)
        assert "blahut_arimoto" in result.diagnostics.describe()
