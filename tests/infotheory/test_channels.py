"""Standard channel factories and their closed-form capacities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.channels import (
    bec_capacity,
    binary_erasure_channel,
    binary_symmetric_channel,
    bsc_capacity,
    converted_channel,
    converted_channel_capacity,
    m_ary_erasure_capacity,
    m_ary_erasure_channel,
    m_ary_symmetric_capacity,
    m_ary_symmetric_channel,
    z_channel,
    z_channel_capacity,
)
from repro.infotheory.entropy import binary_entropy


class TestBSC:
    def test_capacity_endpoints(self):
        assert bsc_capacity(0.0) == 1.0
        assert bsc_capacity(0.5) == pytest.approx(0.0)
        assert bsc_capacity(1.0) == pytest.approx(1.0)  # invertible flip

    def test_matrix(self):
        w = binary_symmetric_channel(0.2).transition_matrix
        assert w[0, 1] == pytest.approx(0.2)
        assert w[1, 0] == pytest.approx(0.2)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            binary_symmetric_channel(1.5)
        with pytest.raises(ValueError):
            bsc_capacity(-0.1)


class TestErasure:
    @pytest.mark.parametrize("m,eps", [(2, 0.2), (4, 0.5), (8, 0.0)])
    def test_capacity_formula(self, m, eps):
        assert m_ary_erasure_capacity(m, eps) == pytest.approx(
            np.log2(m) * (1 - eps)
        )

    def test_bec_is_m2(self):
        assert bec_capacity(0.3) == m_ary_erasure_capacity(2, 0.3)

    def test_matrix_structure(self):
        w = m_ary_erasure_channel(4, 0.25).transition_matrix
        assert w.shape == (4, 5)
        assert np.allclose(np.diag(w[:, :4]), 0.75)
        assert np.allclose(w[:, 4], 0.25)
        # No cross-symbol confusion.
        off = w[:, :4] - np.diag(np.diag(w[:, :4]))
        assert np.allclose(off, 0.0)

    def test_rejects_small_alphabet(self):
        with pytest.raises(ValueError):
            m_ary_erasure_channel(1, 0.1)
        with pytest.raises(ValueError):
            m_ary_erasure_capacity(1, 0.1)


class TestZChannel:
    def test_capacity_endpoints(self):
        assert z_channel_capacity(0.0) == 1.0
        assert z_channel_capacity(1.0) == 0.0

    def test_known_value(self):
        # C(Z, p=0.5) = log2(5/4) ~ 0.3219
        assert z_channel_capacity(0.5) == pytest.approx(np.log2(1.25), abs=1e-9)

    def test_zero_row_noiseless(self):
        w = z_channel(0.4).transition_matrix
        assert w[0, 0] == 1.0
        assert w[0, 1] == 0.0

    @given(st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=40)
    def test_above_bsc(self, p):
        # One-sided noise beats symmetric noise of the same rate (for
        # p <= 1/2; beyond that the BSC flip becomes invertible again).
        assert z_channel_capacity(p) >= bsc_capacity(p) - 1e-12


class TestMArySymmetric:
    def test_reduces_to_bsc(self):
        assert m_ary_symmetric_capacity(2, 0.2) == pytest.approx(
            bsc_capacity(0.2)
        )

    def test_zero_error_full_capacity(self):
        assert m_ary_symmetric_capacity(8, 0.0) == pytest.approx(3.0)

    def test_matrix_rows(self):
        w = m_ary_symmetric_channel(4, 0.3).transition_matrix
        assert np.allclose(np.diag(w), 0.7)
        assert np.allclose(w.sum(axis=1), 1.0)


class TestConvertedChannel:
    """The Appendix-A / Figure-5 channel of the paper."""

    def test_alpha_scaling(self):
        # N=1: alpha = 1/2, so error prob is pi/2.
        w = converted_channel(1, 0.4).transition_matrix
        assert w[0, 1] == pytest.approx(0.2)

    def test_matches_m_ary_formula(self):
        n, pi = 3, 0.15
        alpha = (2**n - 1) / 2**n
        assert converted_channel_capacity(n, pi) == pytest.approx(
            m_ary_symmetric_capacity(2**n, alpha * pi)
        )

    def test_paper_equation_3_form(self):
        # C_conv = N - alpha*Pi*log2(2^N - 1) - H(alpha*Pi)
        n, pi = 4, 0.1
        alpha = (2**n - 1) / 2**n
        e = alpha * pi
        expected = n - e * np.log2(2**n - 1) - binary_entropy(e)
        assert converted_channel_capacity(n, pi) == pytest.approx(expected)

    def test_no_insertions_full_capacity(self):
        assert converted_channel_capacity(5, 0.0) == pytest.approx(5.0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_capacity_in_range_and_decreasing_near_zero(self, n, pi):
        c = converted_channel_capacity(n, pi)
        assert -1e-9 <= c <= n
        if pi <= 0.5:
            assert c <= converted_channel_capacity(n, pi / 2) + 1e-12

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            converted_channel(0, 0.1)
        with pytest.raises(ValueError):
            converted_channel_capacity(3, 1.5)
