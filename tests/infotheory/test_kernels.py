"""Batched kernels vs. the scalar oracle: property-style parity at 1e-12.

The batched kernels promise *semantic* equality with the scalar
Blahut-Arimoto loop — same capacity, same input distribution, same
iteration count and terminal status per channel — while iterating a
whole ``(k, nx, ny)`` stack at once. These tests hold them to that over
randomized stacks (structural zeros, near-deterministic rows, shared
and per-channel starting points) on every registered backend.
"""

import numpy as np
import pytest

from repro.infotheory import (
    BatchedBAResult,
    blahut_arimoto,
    blahut_arimoto_batch,
    penalized_blahut_arimoto_batch,
    validate_transition_stack,
)
from repro.infotheory.kernels import BATCH_SOLVER
from repro.numerics import SolverStatus, use_backend

PARITY = 1e-12


def random_stack(
    k, nx, ny, *, seed, zero_fraction=0.0, near_deterministic=False
):
    """A ``(k, nx, ny)`` stack of random row-stochastic channels."""
    rng = np.random.default_rng(seed)
    w = rng.random((k, nx, ny))
    if zero_fraction:
        mask = rng.random((k, nx, ny)) < zero_fraction
        # Never zero a whole row (it could not renormalize).
        mask[:, :, 0] = False
        w[mask] = 0.0
    if near_deterministic:
        # Rows dominated by one output — the regime with the largest
        # divergence values, where log-floor handling matters most.
        peaks = rng.integers(0, ny, (k, nx))
        w *= 1e-6
        w[np.arange(k)[:, None], np.arange(nx)[None, :], peaks] = 1.0
    return w / w.sum(axis=2, keepdims=True)


def assert_batch_matches_scalar(stack, *, tol=1e-10, max_iter=10_000):
    batch = blahut_arimoto_batch(stack, tol=tol, max_iter=max_iter)
    for i in range(stack.shape[0]):
        scalar = blahut_arimoto(stack[i], tol=tol, max_iter=max_iter)
        assert abs(batch.capacity[i] - scalar.capacity) < PARITY
        assert np.max(
            np.abs(batch.input_distribution[i] - scalar.input_distribution)
        ) < PARITY
        assert batch.iterations[i] == scalar.iterations
        assert batch.statuses[i] is scalar.status
        if np.isfinite(scalar.gap):
            assert abs(batch.gap[i] - scalar.gap) < PARITY
    return batch


def all_backends():
    """Every registered backend; numba rides along when installed."""
    from repro.numerics import available_backends

    return available_backends()


@pytest.mark.parametrize("backend", all_backends())
class TestBatchScalarParity:
    def test_random_stacks(self, backend):
        for seed, (k, nx, ny) in enumerate(
            [(4, 2, 2), (6, 3, 5), (5, 7, 3), (3, 4, 9)]
        ):
            stack = random_stack(k, nx, ny, seed=seed)
            with use_backend(backend):
                assert_batch_matches_scalar(stack)

    def test_structural_zeros(self, backend):
        stack = random_stack(8, 4, 6, seed=11, zero_fraction=0.4)
        with use_backend(backend):
            assert_batch_matches_scalar(stack)

    def test_near_deterministic_rows(self, backend):
        stack = random_stack(6, 3, 4, seed=13, near_deterministic=True)
        with use_backend(backend):
            assert_batch_matches_scalar(stack)

    def test_wide_stack_32_channels(self, backend):
        # The acceptance bar: a >= 32-channel stack matching the scalar
        # oracle on capacity and input distribution to 1e-12.
        stack = random_stack(32, 4, 5, seed=17, zero_fraction=0.2)
        with use_backend(backend):
            batch = assert_batch_matches_scalar(stack)
        assert len(batch) == 32

    def test_early_finishers_freeze(self, backend):
        # A noiseless channel converges in a couple of sweeps; a noisy
        # one takes many. Batching them must not make the fast one pay
        # the slow one's iterations, nor perturb either answer.
        fast = np.eye(3)[None]
        slow = random_stack(1, 3, 3, seed=23)
        stack = np.concatenate([fast, slow])
        with use_backend(backend):
            batch = assert_batch_matches_scalar(stack)
        assert batch.iterations[0] < batch.iterations[1]


class TestBatchSemantics:
    def test_single_matrix_promoted(self):
        w = np.array([[0.9, 0.1], [0.2, 0.8]])
        batch = blahut_arimoto_batch(w)
        assert len(batch) == 1
        scalar = blahut_arimoto(w)
        assert abs(batch.capacity[0] - scalar.capacity) < PARITY

    def test_unbatch_mirrors_scalar_results(self):
        stack = random_stack(5, 3, 4, seed=29)
        parts = blahut_arimoto_batch(stack).unbatch()
        assert len(parts) == 5
        for part, w in zip(parts, stack):
            scalar = blahut_arimoto(w)
            assert abs(part.capacity - scalar.capacity) < PARITY
            assert part.converged == scalar.converged
            assert part.status is scalar.status

    def test_shared_and_per_channel_initial_input(self):
        stack = random_stack(3, 4, 4, seed=31)
        shared = np.array([0.4, 0.3, 0.2, 0.1])
        batch = blahut_arimoto_batch(stack, initial_input=shared)
        for i in range(3):
            scalar = blahut_arimoto(stack[i], initial_input=shared)
            assert abs(batch.capacity[i] - scalar.capacity) < PARITY
        per_channel = np.tile(shared, (3, 1))
        batch2 = blahut_arimoto_batch(stack, initial_input=per_channel)
        np.testing.assert_array_equal(batch.capacity, batch2.capacity)

    def test_diagnostics_report_backend_and_statuses(self):
        stack = random_stack(4, 3, 3, seed=37)
        batch = blahut_arimoto_batch(stack)
        assert isinstance(batch, BatchedBAResult)
        assert batch.backend == "numpy"
        assert batch.diagnostics.solver == BATCH_SOLVER
        assert "backend=numpy" in batch.diagnostics.notes
        assert any("converged=" in note for note in batch.diagnostics.notes)

    def test_max_iter_exhaustion_reports_honestly(self):
        stack = random_stack(3, 4, 6, seed=41)
        batch = blahut_arimoto_batch(stack, tol=1e-15, max_iter=3)
        assert not batch.converged.any()
        assert all(s is not SolverStatus.CONVERGED for s in batch.statuses)
        assert np.all(batch.iterations == 3)
        # Best-so-far fallback keeps estimates finite and non-negative.
        assert np.all(np.isfinite(batch.capacity))
        assert np.all(batch.capacity >= 0.0)

    def test_validation_rejects_bad_stacks(self):
        with pytest.raises(ValueError, match="empty"):
            validate_transition_stack(np.zeros((0, 2, 2)))
        with pytest.raises(ValueError, match="channel stack"):
            validate_transition_stack(np.zeros(4))
        bad = np.full((1, 2, 2), 0.5)
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            validate_transition_stack(bad)
        neg = np.array([[[1.5, -0.5], [0.5, 0.5]]])
        with pytest.raises(ValueError, match="non-negative"):
            validate_transition_stack(neg)
        unnorm = np.array([[[0.5, 0.4], [0.5, 0.5]]])
        with pytest.raises(ValueError, match="sum to 1"):
            validate_transition_stack(unnorm)


class TestPenalizedBatch:
    def test_zero_penalty_recovers_capacity_input(self):
        stack = random_stack(4, 3, 5, seed=43)
        result = penalized_blahut_arimoto_batch(
            stack, np.zeros((4, 3)), tol=1e-11
        )
        assert result.converged.all()
        reference = blahut_arimoto_batch(stack, tol=1e-11)
        # Same fixed point (up to each iteration's own tolerance).
        assert np.max(
            np.abs(result.input_distribution - reference.input_distribution)
        ) < 1e-6

    def test_penalty_shifts_mass_off_expensive_inputs(self):
        stack = random_stack(1, 3, 4, seed=47)
        free = penalized_blahut_arimoto_batch(stack, np.zeros((1, 3)))
        pen = np.array([[5.0, 0.0, 0.0]])
        taxed = penalized_blahut_arimoto_batch(stack, pen)
        assert (
            taxed.input_distribution[0, 0] < free.input_distribution[0, 0]
        )

    def test_tiny_max_iter_reports_unconverged(self):
        # Regression for the silent-exhaustion bug: the batch must say
        # so when a channel runs out of iterations, not return a stale
        # iterate as if it had converged.
        stack = random_stack(3, 4, 6, seed=53)
        result = penalized_blahut_arimoto_batch(
            stack, np.zeros((3, 4)), tol=1e-14, max_iter=2
        )
        assert not result.converged.any()
        assert np.all(result.iterations == 2)
        # Frozen iterates are still valid distributions.
        np.testing.assert_allclose(
            result.input_distribution.sum(axis=1), 1.0, atol=1e-12
        )

    def test_mixed_convergence_freezes_independently(self):
        easy = np.eye(3)[None]
        hard = random_stack(1, 3, 3, seed=59)
        stack = np.concatenate([easy, hard])
        result = penalized_blahut_arimoto_batch(
            stack, np.zeros((2, 3)), tol=1e-11, max_iter=4
        )
        assert bool(result.converged[0])
        assert not bool(result.converged[1])
        assert result.iterations[0] <= result.iterations[1]

    def test_bad_penalty_shape_rejected(self):
        stack = random_stack(2, 3, 3, seed=61)
        with pytest.raises(ValueError, match="penalties"):
            penalized_blahut_arimoto_batch(stack, np.zeros((2, 4)))
