"""DiscreteMemorylessChannel behavior."""

import numpy as np
import pytest

from repro.infotheory.channels import (
    binary_erasure_channel,
    binary_symmetric_channel,
    m_ary_symmetric_channel,
    z_channel,
)
from repro.infotheory.dmc import DiscreteMemorylessChannel
from repro.infotheory.entropy import binary_entropy


class TestConstruction:
    def test_basic_properties(self):
        ch = binary_symmetric_channel(0.1)
        assert ch.num_inputs == 2
        assert ch.num_outputs == 2
        assert np.allclose(ch.transition_matrix.sum(axis=1), 1.0)

    def test_transition_matrix_is_copy(self):
        ch = binary_symmetric_channel(0.1)
        m = ch.transition_matrix
        m[0, 0] = 0.0
        assert ch.transition_matrix[0, 0] == 0.9

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            DiscreteMemorylessChannel(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscreteMemorylessChannel(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_label_length_checked(self):
        with pytest.raises(ValueError):
            DiscreteMemorylessChannel(np.eye(2), input_labels=["a"])


class TestInformation:
    def test_mutual_information_uniform_bsc(self):
        ch = binary_symmetric_channel(0.2)
        assert ch.mutual_information([0.5, 0.5]) == pytest.approx(
            1 - binary_entropy(0.2)
        )

    def test_capacity_result_has_distribution(self):
        result = binary_symmetric_channel(0.3).capacity_result()
        assert result.input_distribution.shape == (2,)
        assert result.converged

    def test_output_distribution(self):
        ch = binary_erasure_channel(0.25)
        out = ch.output_distribution([0.5, 0.5])
        assert out == pytest.approx([0.375, 0.375, 0.25])

    def test_output_distribution_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            binary_symmetric_channel(0.1).output_distribution([1.0])


class TestSymmetryPredicates:
    def test_bsc_symmetric(self):
        assert binary_symmetric_channel(0.1).is_symmetric()

    def test_m_ary_symmetric(self):
        assert m_ary_symmetric_channel(4, 0.2).is_symmetric()

    def test_z_channel_not_symmetric(self):
        assert not z_channel(0.2).is_symmetric()

    def test_bec_weakly_symmetric_fails_columns(self):
        # BEC columns sums differ (erasure column sums to 2 eps).
        ch = binary_erasure_channel(0.3)
        assert not ch.is_weakly_symmetric()

    def test_symmetric_implies_weakly_symmetric(self):
        ch = m_ary_symmetric_channel(3, 0.3)
        assert ch.is_weakly_symmetric()


class TestSampling:
    def test_transmit_noiseless(self, rng):
        ch = DiscreteMemorylessChannel(np.eye(4))
        x = rng.integers(0, 4, 1000)
        assert np.array_equal(ch.transmit(x, rng), x)

    def test_transmit_statistics(self, rng):
        ch = binary_symmetric_channel(0.3)
        x = np.zeros(200_000, dtype=int)
        y = ch.transmit(x, rng)
        assert y.mean() == pytest.approx(0.3, abs=0.01)

    def test_transmit_rejects_bad_symbols(self, rng):
        ch = binary_symmetric_channel(0.1)
        with pytest.raises(ValueError):
            ch.transmit(np.array([0, 2]), rng)
        with pytest.raises(ValueError):
            ch.transmit(np.array([[0, 1]]), rng)

    def test_transmit_empty(self, rng):
        ch = binary_symmetric_channel(0.1)
        assert ch.transmit(np.array([], dtype=int), rng).size == 0


class TestComposition:
    def test_cascade_of_bscs(self):
        # Two BSC(p) in series = BSC(2p(1-p)).
        p = 0.1
        ch = binary_symmetric_channel(p).cascade(binary_symmetric_channel(p))
        expected = 2 * p * (1 - p)
        assert ch.transition_matrix[0, 1] == pytest.approx(expected)

    def test_cascade_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_erasure_channel(0.1).cascade(binary_symmetric_channel(0.1))

    def test_product_capacity_adds(self):
        ch = binary_symmetric_channel(0.1)
        prod = ch.product(ch)
        assert prod.capacity() == pytest.approx(2 * ch.capacity(), abs=1e-5)

    def test_product_shape(self):
        prod = binary_symmetric_channel(0.1).product(
            binary_erasure_channel(0.2)
        )
        assert prod.num_inputs == 4
        assert prod.num_outputs == 6
