"""Unit and property tests for entropy primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.entropy import (
    binary_entropy,
    binary_entropy_derivative,
    conditional_entropy,
    cross_entropy,
    entropy,
    inverse_binary_entropy,
    joint_entropy,
    kl_divergence,
    mutual_information,
    mutual_information_from_joint,
    normalize_distribution,
    validate_distribution,
)


class TestBinaryEntropy:
    def test_endpoints_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        for p in (0.1, 0.25, 0.4):
            assert binary_entropy(p) == pytest.approx(binary_entropy(1 - p))

    def test_known_value(self):
        # H(0.11) ~ 0.4999 (classic BSC example value)
        assert binary_entropy(0.11) == pytest.approx(0.49992, abs=1e-4)

    def test_array_input(self):
        out = binary_entropy(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 1.0, 0.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.2)
        with pytest.raises(ValueError):
            binary_entropy(-0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, p):
        h = binary_entropy(p)
        assert 0.0 <= h <= 1.0 + 1e-12

    @given(st.floats(min_value=1e-3, max_value=1.0 - 1e-3))
    @settings(max_examples=50)
    def test_derivative_matches_finite_difference(self, p):
        eps = 1e-7
        lo = max(p - eps, 1e-9)
        hi = min(p + eps, 1 - 1e-9)
        fd = (binary_entropy(hi) - binary_entropy(lo)) / (hi - lo)
        assert binary_entropy_derivative(p) == pytest.approx(fd, abs=1e-3)


class TestInverseBinaryEntropy:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_roundtrip_lower_branch(self, h):
        p = inverse_binary_entropy(h, branch="lower")
        assert 0.0 <= p <= 0.5
        assert binary_entropy(p) == pytest.approx(h, abs=1e-6)

    def test_upper_branch(self):
        p = inverse_binary_entropy(0.5, branch="upper")
        assert p > 0.5
        assert binary_entropy(p) == pytest.approx(0.5, abs=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            inverse_binary_entropy(1.5)
        with pytest.raises(ValueError):
            inverse_binary_entropy(0.5, branch="middle")


class TestEntropy:
    def test_uniform(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)

    def test_deterministic(self):
        assert entropy([1.0, 0.0, 0.0]) == 0.0

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            entropy([0.5, 0.6])
        with pytest.raises(ValueError):
            entropy([-0.1, 1.1])

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8)
    )
    @settings(max_examples=50)
    def test_upper_bounded_by_log_alphabet(self, weights):
        p = normalize_distribution(weights)
        assert entropy(p) <= np.log2(len(p)) + 1e-9


class TestKLAndCrossEntropy:
    def test_kl_zero_iff_equal(self):
        p = [0.2, 0.3, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_kl_infinite_on_support_mismatch(self):
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == float("inf")

    def test_cross_entropy_decomposition(self):
        p = [0.3, 0.7]
        q = [0.6, 0.4]
        assert cross_entropy(p, q) == pytest.approx(
            entropy(p) + kl_divergence(p, q)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [0.4, 0.3, 0.3])


class TestJointQuantities:
    def test_independent_joint_entropy_adds(self):
        px = np.array([0.3, 0.7])
        py = np.array([0.4, 0.6])
        joint = np.outer(px, py)
        assert joint_entropy(joint) == pytest.approx(entropy(px) + entropy(py))

    def test_conditional_entropy_of_identity(self):
        joint = np.eye(3) / 3
        assert conditional_entropy(joint) == pytest.approx(0.0, abs=1e-12)

    def test_mi_zero_for_independent(self):
        joint = np.outer([0.3, 0.7], [0.4, 0.6])
        assert mutual_information_from_joint(joint) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_mi_of_identity_channel(self):
        joint = np.eye(4) / 4
        assert mutual_information_from_joint(joint) == pytest.approx(2.0)

    def test_mi_via_transition_matrix(self):
        # BSC with p=0.1, uniform input: I = 1 - H(0.1)
        w = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert mutual_information([0.5, 0.5], w) == pytest.approx(
            1.0 - binary_entropy(0.1)
        )

    def test_transition_rows_must_be_stochastic(self):
        with pytest.raises(ValueError):
            mutual_information([0.5, 0.5], np.array([[0.9, 0.2], [0.1, 0.9]]))

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_mi_nonnegative_and_bounded(self, size, seed):
        rng = np.random.default_rng(seed)
        joint = rng.random((size, size))
        joint /= joint.sum()
        mi = mutual_information_from_joint(joint)
        px = joint.sum(axis=1)
        py = joint.sum(axis=0)
        assert 0.0 <= mi <= min(entropy(px), entropy(py)) + 1e-9


class TestValidation:
    def test_normalize(self):
        out = normalize_distribution([2.0, 2.0])
        assert np.allclose(out, [0.5, 0.5])

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_distribution([0.0, 0.0])

    def test_validate_passes_through(self):
        arr = validate_distribution([0.5, 0.5])
        assert isinstance(arr, np.ndarray)
