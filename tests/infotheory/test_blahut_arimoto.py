"""Blahut-Arimoto vs closed-form capacities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.blahut_arimoto import blahut_arimoto, channel_capacity
from repro.infotheory.channels import (
    bec_capacity,
    binary_erasure_channel,
    binary_symmetric_channel,
    bsc_capacity,
    m_ary_symmetric_capacity,
    m_ary_symmetric_channel,
    z_channel,
    z_channel_capacity,
)


class TestAgainstClosedForms:
    @pytest.mark.parametrize("p", [0.0, 0.05, 0.11, 0.3, 0.5])
    def test_bsc(self, p):
        cap = channel_capacity(binary_symmetric_channel(p).transition_matrix)
        assert cap == pytest.approx(bsc_capacity(p), abs=1e-6)

    @pytest.mark.parametrize("eps", [0.0, 0.1, 0.5, 0.9])
    def test_bec(self, eps):
        cap = channel_capacity(binary_erasure_channel(eps).transition_matrix)
        assert cap == pytest.approx(bec_capacity(eps), abs=1e-6)

    @pytest.mark.parametrize("p", [0.0, 0.1, 0.3, 0.6])
    def test_z_channel(self, p):
        cap = channel_capacity(z_channel(p).transition_matrix)
        assert cap == pytest.approx(z_channel_capacity(p), abs=1e-6)

    @pytest.mark.parametrize("m,e", [(4, 0.1), (8, 0.2), (16, 0.05)])
    def test_m_ary_symmetric(self, m, e):
        cap = channel_capacity(m_ary_symmetric_channel(m, e).transition_matrix)
        assert cap == pytest.approx(m_ary_symmetric_capacity(m, e), abs=1e-6)


class TestAlgorithmBehavior:
    def test_converges_flag(self):
        result = blahut_arimoto(
            binary_symmetric_channel(0.1).transition_matrix, tol=1e-10
        )
        assert result.converged
        assert result.gap < 1e-10

    def test_optimal_input_uniform_for_symmetric(self):
        result = blahut_arimoto(
            m_ary_symmetric_channel(4, 0.15).transition_matrix
        )
        assert np.allclose(result.input_distribution, 0.25, atol=1e-4)

    def test_z_channel_optimal_input_biased(self):
        result = blahut_arimoto(z_channel(0.3).transition_matrix)
        # Z-channel favors input 0 (the noiseless symbol).
        assert result.input_distribution[0] > 0.5

    def test_useless_channel_zero_capacity(self):
        w = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert channel_capacity(w) == pytest.approx(0.0, abs=1e-9)

    def test_identity_channel(self):
        assert channel_capacity(np.eye(8)) == pytest.approx(3.0, abs=1e-8)

    def test_initial_input_respected(self):
        result = blahut_arimoto(
            binary_symmetric_channel(0.2).transition_matrix,
            initial_input=np.array([0.9, 0.1]),
        )
        assert result.capacity == pytest.approx(bsc_capacity(0.2), abs=1e-6)

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValueError):
            blahut_arimoto(np.array([[0.9, 0.2], [0.1, 0.9]]))
        with pytest.raises(ValueError):
            blahut_arimoto(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            blahut_arimoto(np.array([[1.1, -0.1], [0.5, 0.5]]))

    def test_rejects_bad_initial(self):
        w = binary_symmetric_channel(0.1).transition_matrix
        with pytest.raises(ValueError):
            blahut_arimoto(w, initial_input=np.array([0.5, 0.5, 0.0]))
        with pytest.raises(ValueError):
            blahut_arimoto(w, initial_input=np.array([0.7, 0.7]))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_capacity_bounded_by_alphabets(self, seed):
        rng = np.random.default_rng(seed)
        nx, ny = rng.integers(2, 6, size=2)
        w = rng.random((nx, ny))
        w /= w.sum(axis=1, keepdims=True)
        cap = channel_capacity(w, tol=1e-8)
        assert -1e-9 <= cap <= np.log2(min(nx, ny)) + 1e-6
