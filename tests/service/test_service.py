"""CapacityService behavior: lifecycle, dedup, deadlines, shedding,
fault recovery. Driven with plain ``asyncio.run`` (no plugin needed).
"""

import asyncio

import pytest

from repro.core.capacity import erasure_upper_bound
from repro.core.estimation import CapacityEstimator
from repro.core.events import ChannelParameters
from repro.core.theorems import capacity_bracket
from repro.faults import ServiceFaultPlan
from repro.service import (
    AdmissionController,
    CapacityService,
    CircuitBreaker,
    QueryStatus,
    RetryPolicy,
    serve_queries,
)
from repro.store import ResultStore, use_store


def _raw(**overrides):
    base = {
        "kind": "estimate",
        "deletion": 0.1,
        "insertion": 0.05,
        "bits_per_symbol": 4,
    }
    base.update(overrides)
    return base


def _serve(queries, **kwargs):
    kwargs.setdefault("workers", 2)
    return serve_queries(queries, **kwargs)


# ----------------------------------------------------------------------
# lifecycle


def test_submit_requires_started_service():
    async def main():
        service = CapacityService()
        with pytest.raises(RuntimeError, match="not started"):
            await service.submit(_raw())

    asyncio.run(main())


def test_double_start_is_refused():
    async def main():
        async with CapacityService() as service:
            with pytest.raises(RuntimeError, match="already started"):
                await service.start()

    asyncio.run(main())


def test_constructor_validation():
    with pytest.raises(ValueError):
        CapacityService(workers=0)
    with pytest.raises(ValueError):
        CapacityService(batch_size=0)
    with pytest.raises(ValueError):
        CapacityService(batch_window_seconds=-1.0)


# ----------------------------------------------------------------------
# answers match the solvers they front


def test_ok_answers_match_direct_solver_calls():
    queries = [
        _raw(kind="estimate"),
        _raw(kind="bounds"),
        _raw(kind="erasure"),
    ]
    results, stats = _serve(queries)
    assert [r.status for r in results] in (
        [QueryStatus.OK] * 3,
        [QueryStatus.OK, QueryStatus.OK, QueryStatus.OK],
    )
    report = CapacityEstimator(4).estimate(
        ChannelParameters.from_rates(deletion=0.1, insertion=0.05)
    )
    assert results[0].value == {
        "corrected_capacity": report.corrected_capacity,
        "feedback_lower": report.feedback_lower,
    }
    lower, upper = capacity_bracket(4, 0.1, 0.05)
    assert results[1].value == {"lower": lower, "upper": upper}
    assert results[2].value == {"upper": erasure_upper_bound(4, 0.1)}
    assert stats["submitted"] == 3


def test_block_bound_answers_match_the_batched_sweep():
    from repro.bounds import indel_block_bound_sweep
    from repro.service.workers import (
        BLOCK_BOUND_LENGTH,
        BLOCK_BOUND_MAX_EXTRA,
    )

    grid = [(0.1, 0.05), (0.25, 0.1)]
    queries = [
        _raw(
            kind="block_bound",
            bits_per_symbol=1,
            deletion=pd,
            insertion=pi,
        )
        for pd, pi in grid
    ]
    # An unrelated kind rides in the same batch without disturbing the
    # grouped block_bound solve.
    queries.append(_raw(kind="erasure", deletion=0.3, insertion=0.0))
    results, _stats = _serve(queries, batch_size=8)
    expected = indel_block_bound_sweep(
        grid,
        block_length=BLOCK_BOUND_LENGTH,
        max_extra=BLOCK_BOUND_MAX_EXTRA,
        backend="numpy",
    )
    for result, bound in zip(results, expected):
        assert result.status is QueryStatus.OK
        assert result.value == {
            "lower": bound.lower_bound,
            "upper": bound.erasure_upper,
        }
        assert 0.0 <= result.value["lower"] <= result.value["upper"]
    assert results[2].status is QueryStatus.OK
    assert results[2].value == {"upper": erasure_upper_bound(4, 0.3)}


def test_results_come_back_in_input_order():
    queries = [_raw(deletion=round(0.05 * i, 2)) for i in range(8)]
    results, _ = _serve(queries)
    assert [r.query_id for r in results] == [f"q{i}" for i in range(8)]


# ----------------------------------------------------------------------
# dedup and caching


def test_identical_inflight_queries_coalesce():
    # A wide batch window holds the first query in the queue long
    # enough for its duplicates to coalesce instead of recomputing.
    queries = [_raw()] * 6
    results, _ = _serve(queries, batch_window_seconds=0.1)
    statuses = sorted(r.status.value for r in results)
    assert statuses.count("ok") == 1  # exactly one paid the solve
    assert statuses.count("cached") == 5
    values = {tuple(sorted(r.value.items())) for r in results}
    assert len(values) == 1  # everyone got the same answer
    assert {r.source for r in results} == {"solver", "inflight"}


def test_store_serves_repeat_queries(tmp_path):
    with use_store(ResultStore(tmp_path)):
        first, _ = _serve([_raw()])
        assert first[0].status is QueryStatus.OK
        second, stats = _serve([_raw()])
    assert second[0].status is QueryStatus.CACHED
    assert second[0].source == "store"
    assert second[0].value == first[0].value
    assert stats["store_events"]  # hit/miss counters surfaced


# ----------------------------------------------------------------------
# failure dispositions


def test_malformed_queries_fail_without_raising():
    results, stats = _serve([_raw(kind="bogus"), _raw()])
    assert results[0].status is QueryStatus.FAILED
    assert "malformed" in results[0].error
    assert results[0].key is None
    assert results[1].status is QueryStatus.OK
    assert stats["status_counts"]["failed"] == 1


def test_deadline_expiry_yields_timeout():
    slow = ServiceFaultPlan(slow_prob=1.0, slow_seconds=0.5)
    results, _ = _serve(
        [_raw(deadline_seconds=0.05)], fault_plan=slow, workers=1
    )
    assert results[0].status is QueryStatus.TIMEOUT
    assert results[0].value is None


def test_saturation_sheds_rather_than_blocks():
    slow = ServiceFaultPlan(slow_prob=1.0, slow_seconds=0.2)
    queries = [_raw(deletion=round(0.01 * i, 3)) for i in range(30)]
    results, stats = _serve(
        queries,
        fault_plan=slow,
        workers=1,
        batch_size=1,
        concurrency=30,
        admission=AdmissionController(queue_limit=1),
    )
    statuses = {r.status for r in results}
    assert len(results) == 30  # every query terminated
    assert statuses <= set(QueryStatus)
    # With a one-slot queue and slow workers, overload must surface.
    overloaded = {QueryStatus.SHED, QueryStatus.DEGRADED} & statuses
    assert overloaded
    assert stats["shed_levels"]  # the ladder was exercised
    for r in results:
        if r.status is QueryStatus.SHED:
            assert "admission control" in r.error
        if r.status is QueryStatus.DEGRADED:
            assert r.value is not None  # degraded still answers


def test_total_worker_failure_degrades_and_opens_the_breaker():
    crashy = ServiceFaultPlan(worker_crash_prob=1.0)
    queries = [_raw(deletion=round(0.02 * i, 3)) for i in range(6)]
    results, stats = _serve(
        queries,
        fault_plan=crashy,
        workers=1,
        batch_size=2,
        retry_policy=RetryPolicy(max_retries=1, base_delay_seconds=0.01),
        breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=30.0),
    )
    # Every query still terminates — with a degraded (coarse) answer.
    assert len(results) == 6
    for r in results:
        assert r.status is QueryStatus.DEGRADED
        assert r.value is not None
        assert r.source == "coarse_bound"
    assert stats["pool_restarts"] >= 1  # crashes rebuilt the pool
    assert stats["retries"] >= 1  # the retry policy fired
    assert stats["fallback_batches"] >= 1
    assert stats["breaker"]["transitions"].get("closed->open", 0) >= 1


# ----------------------------------------------------------------------
# observability


def test_stats_snapshot_shape():
    results, stats = _serve([_raw(), _raw(kind="erasure")])
    assert {r.status for r in results} <= set(QueryStatus)
    for key in (
        "submitted",
        "status_counts",
        "shed_levels",
        "queue_depth_peak",
        "batches",
        "fallback_batches",
        "retries",
        "latency_seconds",
        "breaker",
        "pool_restarts",
        "store_events",
    ):
        assert key in stats
    assert stats["submitted"] == 2
    assert sum(stats["status_counts"].values()) == 2
    assert {"p50", "p99", "max", "count"} <= set(stats["latency_seconds"])


# ----------------------------------------------------------------------
# sample_capacity kind


def test_sample_capacity_answers_match_direct_estimation():
    from repro.estimation import estimate_sample_capacity
    from repro.service.query import normalize_query
    from repro.service.workers import (
        SAMPLE_CAPACITY_K,
        SAMPLE_CAPACITY_SEED,
        reference_sampler,
    )

    raw = _raw(
        kind="sample_capacity",
        deletion=0.1,
        insertion=0.0,
        bits_per_symbol=1,
        sampler="bsc",
        n_samples=1024,
    )
    results, stats = _serve([raw])
    assert results[0].status is QueryStatus.OK
    direct = estimate_sample_capacity(
        reference_sampler(normalize_query(raw)),
        n_samples=1024,
        seed=SAMPLE_CAPACITY_SEED,
        k=SAMPLE_CAPACITY_K,
    )
    assert results[0].value == {
        "capacity": direct.capacity,
        "mutual_information": direct.bits_per_symbol,
        "mean_time": direct.mean_time,
    }
    assert stats["submitted"] == 1


def test_sample_capacity_served_from_store_on_repeat(tmp_path):
    raw = _raw(
        kind="sample_capacity",
        deletion=0.2,
        insertion=0.0,
        bits_per_symbol=1,
        sampler="scheduler",
        n_samples=512,
    )
    store = ResultStore(tmp_path)
    with use_store(store):
        first, _ = _serve([raw])
        second, stats = _serve([raw])
    assert first[0].status is QueryStatus.OK
    assert second[0].status is QueryStatus.CACHED
    assert second[0].source == "store"
    assert second[0].value == first[0].value
    assert stats["store_events"]  # hit/miss counters surfaced
