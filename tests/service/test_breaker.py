"""Circuit breaker transitions, driven by a fake clock (no sleeping)."""

import pytest

from repro.service import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_breaker(**overrides):
    clock = FakeClock()
    kwargs = dict(failure_threshold=3, cooldown_seconds=10.0, clock=clock)
    kwargs.update(overrides)
    return CircuitBreaker(**kwargs), clock


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(latency_threshold_seconds=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_seconds=-1.0)


def test_consecutive_failures_trip_the_breaker():
    breaker, _ = make_breaker()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow() is False  # fails fast inside the cooldown


def test_success_resets_the_failure_streak():
    breaker, _ = make_breaker()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED  # streak never reached 3


def test_cooldown_admits_exactly_one_half_open_probe():
    breaker, clock = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.now = 9.9
    assert breaker.allow() is False
    clock.now = 10.1
    assert breaker.allow() is True  # the probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow() is False  # concurrent dispatch refused


def test_probe_success_closes_probe_failure_reopens():
    breaker, clock = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.now = 11.0
    assert breaker.allow()
    breaker.record_success(latency_seconds=0.01)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow() is True

    for _ in range(3):
        breaker.record_failure()
    clock.now = 23.0
    assert breaker.allow()
    breaker.record_failure()  # the probe fails
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow() is False  # a fresh cooldown started


def test_latency_ewma_trips_a_succeeding_tier():
    breaker, _ = make_breaker(
        latency_threshold_seconds=1.0, ewma_alpha=0.5
    )
    breaker.record_success(latency_seconds=0.5)
    assert breaker.state is BreakerState.CLOSED
    for _ in range(8):
        breaker.record_success(latency_seconds=4.0)
    assert breaker.state is BreakerState.OPEN  # "success" too slow to count


def test_transitions_are_counted_for_observability():
    breaker, clock = make_breaker()
    for _ in range(3):
        breaker.record_failure()
    clock.now = 11.0
    breaker.allow()
    breaker.record_success()
    snapshot = breaker.snapshot()
    assert snapshot["state"] == "closed"
    assert snapshot["transitions"] == {
        "closed->open": 1,
        "open->half_open": 1,
        "half_open->closed": 1,
    }


def test_snapshot_reports_latency_ewma():
    breaker, _ = make_breaker()
    assert breaker.snapshot()["latency_ewma_seconds"] is None
    breaker.record_success(latency_seconds=0.25)
    assert breaker.snapshot()["latency_ewma_seconds"] == 0.25
