"""Admission levels and the shed ladder (cache -> coarse bound)."""

import pytest

from repro.core.capacity import erasure_upper_bound
from repro.numerics import collect_solver_statuses
from repro.service import (
    SHED_LADDER_SOLVER,
    AdmissionController,
    ShedLevel,
    cached_lookup,
    coarse_bound_value,
    normalize_query,
    query_key,
    resolve_degraded,
    store_answer,
)
from repro.store import ResultStore, use_store


def _query(**overrides):
    raw = {
        "query_id": "q",
        "kind": "estimate",
        "deletion": 0.2,
        "insertion": 0.1,
        "bits_per_symbol": 4,
    }
    raw.update(overrides)
    return normalize_query(raw)


# ----------------------------------------------------------------------
# admission control


def test_admission_validation():
    with pytest.raises(ValueError):
        AdmissionController(queue_limit=0)
    with pytest.raises(ValueError):
        AdmissionController(cache_only_fraction=0.0)
    with pytest.raises(ValueError):
        AdmissionController(cache_only_fraction=0.9, coarse_fraction=0.5)


def test_admission_ladder_escalates_with_queue_depth():
    admission = AdmissionController(
        queue_limit=100, cache_only_fraction=0.6, coarse_fraction=0.85
    )
    assert admission.level(0) is ShedLevel.FULL
    assert admission.level(59) is ShedLevel.FULL
    assert admission.level(60) is ShedLevel.CACHE_ONLY
    assert admission.level(84) is ShedLevel.CACHE_ONLY
    assert admission.level(85) is ShedLevel.COARSE
    assert admission.level(99) is ShedLevel.COARSE
    assert admission.level(100) is ShedLevel.REJECT
    assert admission.level(500) is ShedLevel.REJECT


def test_shed_levels_order_by_severity():
    assert (
        ShedLevel.FULL
        < ShedLevel.CACHE_ONLY
        < ShedLevel.COARSE
        < ShedLevel.REJECT
    )


# ----------------------------------------------------------------------
# ladder rungs


def test_coarse_bound_is_the_erasure_bound():
    query = _query(deletion=0.25, bits_per_symbol=8)
    assert coarse_bound_value(query) == {
        "upper": erasure_upper_bound(8, 0.25)
    }


def test_cached_lookup_without_a_store_is_none():
    assert cached_lookup(_query()) is None


def test_store_roundtrip_through_the_ladder(tmp_path):
    query = _query()
    with use_store(ResultStore(tmp_path)):
        assert cached_lookup(query) is None
        store_answer(query, {"corrected_capacity": 3.2, "feedback_lower": 2.9})
        assert cached_lookup(query) == {
            "corrected_capacity": 3.2,
            "feedback_lower": 2.9,
        }
        # A semantically different query misses.
        assert cached_lookup(_query(deletion=0.3)) is None


def test_resolve_degraded_prefers_the_cache(tmp_path):
    query = _query()
    with use_store(ResultStore(tmp_path)):
        store_answer(query, {"corrected_capacity": 3.2, "feedback_lower": 2.9})
        with collect_solver_statuses() as statuses:
            outcome = resolve_degraded(query)
    assert outcome.source == "store"
    assert outcome.value == {
        "corrected_capacity": 3.2,
        "feedback_lower": 2.9,
    }
    assert statuses.get(f"{SHED_LADDER_SOLVER}:converged", 0) >= 1


def test_resolve_degraded_falls_back_to_the_coarse_bound():
    query = _query()
    with collect_solver_statuses() as statuses:
        outcome = resolve_degraded(query)  # no store: cache rung aborts
    assert outcome.source == "coarse_bound"
    assert outcome.value == coarse_bound_value(query)
    assert statuses.get(f"{SHED_LADDER_SOLVER}:stalled", 0) >= 1


def test_resolve_degraded_can_skip_the_cache(tmp_path):
    query = _query()
    with use_store(ResultStore(tmp_path)):
        store_answer(query, {"corrected_capacity": 3.2, "feedback_lower": 2.9})
        outcome = resolve_degraded(query, try_cache=False)
    assert outcome.source == "coarse_bound"


def test_store_answer_without_a_store_is_a_noop():
    store_answer(_query(), {"upper": 1.0})  # must not raise


def test_query_key_is_the_store_key(tmp_path):
    query = _query()
    with use_store(ResultStore(tmp_path)) as store:
        store_answer(query, {"upper": 1.0})
        assert store.fetch(query_key(query)) is not None
