"""Query normalization, validation, and canonical keys."""

import pytest

from repro.service import (
    QUERY_KINDS,
    CapacityQuery,
    MalformedQueryError,
    QueryResult,
    QueryStatus,
    normalize_query,
    query_key,
)


def _raw(**overrides):
    base = {
        "query_id": "q1",
        "kind": "estimate",
        "deletion": 0.1,
        "insertion": 0.05,
        "bits_per_symbol": 4,
    }
    base.update(overrides)
    return base


def test_normalize_accepts_well_formed_mapping():
    q = normalize_query(_raw())
    assert q == CapacityQuery(
        query_id="q1",
        kind="estimate",
        deletion=0.1,
        insertion=0.05,
        bits_per_symbol=4,
        deadline_seconds=None,
    )


def test_normalize_applies_default_deadline():
    q = normalize_query(_raw(), default_deadline=2.5)
    assert q.deadline_seconds == 2.5
    explicit = normalize_query(
        _raw(deadline_seconds=0.5), default_deadline=2.5
    )
    assert explicit.deadline_seconds == 0.5


def test_normalize_revalidates_existing_query():
    bad = CapacityQuery(
        query_id="q", kind="estimate", deletion=1.5, insertion=0.0
    )
    with pytest.raises(MalformedQueryError):
        normalize_query(bad)


@pytest.mark.parametrize(
    "overrides",
    [
        {"kind": "bogus"},
        {"deletion": 1.5},
        {"deletion": -0.1},
        {"insertion": -0.2},
        {"deletion": 0.9, "insertion": 0.9},
        {"bits_per_symbol": 0},
        {"bits_per_symbol": "four"},
        {"bits_per_symbol": True},
        {"bits_per_symbol": 2.5},
        {"deletion": "high"},
        {"deletion": True},
        {"deadline_seconds": -1.0},
        {"deadline_seconds": 0.0},
        {"deadline_seconds": "soon"},
    ],
    ids=lambda o: next(iter(o)),
)
def test_normalize_rejects_each_malformation(overrides):
    with pytest.raises(MalformedQueryError):
        normalize_query(_raw(**overrides))


def test_normalize_rejects_missing_fields_and_non_mappings():
    missing = _raw()
    del missing["deletion"]
    with pytest.raises(MalformedQueryError, match="deletion"):
        normalize_query(missing)
    with pytest.raises(MalformedQueryError, match="mapping"):
        normalize_query(42)


def test_query_key_ignores_identity_but_not_semantics():
    a = normalize_query(_raw(query_id="a", deadline_seconds=1.0))
    b = normalize_query(_raw(query_id="b", deadline_seconds=9.0))
    assert query_key(a) == query_key(b)
    # bits_per_symbol=1 so every kind (block_bound is binary-only)
    # admits the same parameters; keys must still differ by kind.
    variants = {
        query_key(
            normalize_query(
                _raw(kind=k, bits_per_symbol=1, insertion=0.0, sampler="bsc")
                if k == "sample_capacity"
                else _raw(kind=k, bits_per_symbol=1)
            )
        )
        for k in QUERY_KINDS
    }
    assert len(variants) == len(QUERY_KINDS)
    assert query_key(a) != query_key(normalize_query(_raw(deletion=0.2)))
    assert query_key(a) != query_key(
        normalize_query(_raw(bits_per_symbol=8))
    )


def test_block_bound_kind_validation():
    ok = normalize_query(
        _raw(kind="block_bound", bits_per_symbol=1)
    )
    assert ok.kind == "block_bound"
    with pytest.raises(MalformedQueryError, match="bits_per_symbol == 1"):
        normalize_query(_raw(kind="block_bound", bits_per_symbol=2))
    with pytest.raises(MalformedQueryError, match="insertion < 1"):
        normalize_query(
            _raw(
                kind="block_bound",
                bits_per_symbol=1,
                deletion=0.0,
                insertion=1.0,
            )
        )


def test_status_taxonomy_is_exhaustive_and_stringly():
    assert {s.value for s in QueryStatus} == {
        "ok", "cached", "degraded", "timeout", "shed", "failed",
    }
    assert QueryStatus.OK == "ok"  # str-enum, like SolverStatus


def test_query_result_round_trips_to_plain_json():
    result = QueryResult(
        query_id="q9",
        key="abc",
        status=QueryStatus.DEGRADED,
        value={"upper": 3.5},
        source="coarse_bound",
        attempts=2,
        latency_seconds=0.25,
    )
    payload = result.to_dict()
    assert payload["status"] == "degraded"
    assert payload["value"] == {"upper": 3.5}
    assert payload["error"] is None
    import json

    json.dumps(payload)  # strictly JSON-serializable


def _sample_raw(**overrides):
    base = {
        "query_id": "s1",
        "kind": "sample_capacity",
        "deletion": 0.1,
        "insertion": 0.0,
        "sampler": "bsc",
        "n_samples": 1024,
    }
    base.update(overrides)
    return base


def test_sample_capacity_normalizes():
    q = normalize_query(_sample_raw())
    assert q.kind == "sample_capacity"
    assert q.sampler == "bsc"
    assert q.n_samples == 1024


def test_sample_capacity_defaults_n_samples():
    raw = _sample_raw()
    del raw["n_samples"]
    assert normalize_query(raw).n_samples == 2048


@pytest.mark.parametrize(
    "overrides",
    [
        {"sampler": "unknown"},
        {"sampler": None},
        {"insertion": 0.1},
        {"deletion": 1.0},
        {"n_samples": 100},  # below MIN_SAMPLES
        {"n_samples": 10**9},  # above MAX_SAMPLES
        {"n_samples": 1024.5},
        {"n_samples": True},
        {"sampler": "bsc", "bits_per_symbol": 2},
        {"sampler": "scheduler", "bits_per_symbol": 2},
        {"sampler": "mary", "bits_per_symbol": 4},
    ],
)
def test_sample_capacity_rejects_each_malformation(overrides):
    with pytest.raises(MalformedQueryError):
        normalize_query(_sample_raw(**overrides))


def test_sample_capacity_key_covers_sampler_fields():
    base = normalize_query(_sample_raw())
    assert query_key(base) == query_key(
        normalize_query(_sample_raw(query_id="other"))
    )
    assert query_key(base) != query_key(
        normalize_query(_sample_raw(sampler="scheduler"))
    )
    assert query_key(base) != query_key(
        normalize_query(_sample_raw(n_samples=2048))
    )


def test_legacy_kinds_keep_their_semantic_params():
    # The sampler fields must NOT leak into legacy kinds' keys: a warm
    # store from before the sample_capacity kind stays warm.
    q = normalize_query(_raw())
    assert q.sampler is None and q.n_samples == 0
    assert set(q.semantic_params()) == {
        "kind",
        "deletion",
        "insertion",
        "bits_per_symbol",
    }
