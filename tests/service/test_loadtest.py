"""Trace generation and the fault-injected load test.

``test_acceptance_ten_thousand_chaotic_queries`` is the ISSUE-6
acceptance experiment itself: >=10k queries with injected worker
crashes, slow solvers, transient errors, and malformed input — and
every single query accounted for with a terminal status.
"""

import pytest

from repro.faults import (
    SERVICE_SCENARIOS,
    get_service_scenario,
    list_service_scenarios,
)
from repro.service import (
    MalformedQueryError,
    QueryStatus,
    generate_trace,
    normalize_query,
    run_load_test,
)

# ----------------------------------------------------------------------
# scenarios


def test_scenario_registry():
    names = list_service_scenarios()
    assert {"none", "crashy_workers", "slow_solvers", "flaky_solvers",
            "chaos"} <= set(names)
    assert get_service_scenario("chaos") is SERVICE_SCENARIOS["chaos"]
    with pytest.raises(KeyError):
        get_service_scenario("nope")
    assert not SERVICE_SCENARIOS["none"].injects_faults
    assert SERVICE_SCENARIOS["chaos"].injects_faults


# ----------------------------------------------------------------------
# trace generation


def test_trace_is_deterministic_in_seed():
    a = generate_trace(300, seed=5, malformed_rate=0.1)
    b = generate_trace(300, seed=5, malformed_rate=0.1)
    assert a == b
    c = generate_trace(300, seed=6, malformed_rate=0.1)
    assert a != c


def test_trace_validation():
    with pytest.raises(ValueError):
        generate_trace(0)
    with pytest.raises(ValueError):
        generate_trace(10, malformed_rate=1.5)


def test_clean_trace_is_entirely_well_formed():
    for raw in generate_trace(200, seed=1):
        normalize_query(raw)  # must not raise


def test_malformed_rate_actually_corrupts():
    trace = generate_trace(400, seed=2, malformed_rate=0.2)
    bad = 0
    for raw in trace:
        try:
            normalize_query(raw)
        except MalformedQueryError:
            bad += 1
    # ~80 expected; generous brackets keep this non-flaky.
    assert 30 <= bad <= 160


def test_trace_deadline_rides_along():
    trace = generate_trace(20, seed=0, deadline_seconds=3.0)
    assert all(q.get("deadline_seconds") == 3.0 for q in trace)


# ----------------------------------------------------------------------
# the load test harness


def test_clean_load_test_accounts_for_everything():
    report = run_load_test(
        300, seed=11, scenario="none", workers=2, concurrency=64,
        deadline_seconds=30.0,
    )
    assert report.lost == 0
    assert sum(report.status_counts.values()) == 300
    assert report.deadline_p99_ok
    assert report.status_counts.get("failed", 0) == 0  # nothing malformed
    assert report.throughput_qps > 0
    payload = report.to_dict()
    assert payload["n_queries"] == 300
    assert payload["stats"]["submitted"] == 300


def test_acceptance_ten_thousand_chaotic_queries():
    """The ISSUE-6 acceptance bar, verbatim: >=10k queries under the
    chaos scenario (worker crashes + slow solvers + transient errors +
    malformed input), zero lost, admitted deadlines honored at p99,
    breaker/shed/retry counters surfaced."""
    report = run_load_test(
        10_000,
        seed=0,
        scenario="chaos",
        workers=2,
        concurrency=256,
        queue_limit=128,
        batch_size=32,
        deadline_seconds=30.0,
    )
    # Accountability: every query terminated in exactly one status.
    assert report.lost == 0
    assert sum(report.status_counts.values()) == 10_000
    assert set(report.status_counts) <= {s.value for s in QueryStatus}
    # Malformed injection (2%) really flowed through as FAILED.
    assert report.status_counts.get("failed", 0) > 0
    # Admitted queries met their deadline at p99.
    assert report.deadline_p99_ok
    # The observability surface the CLI prints.
    stats = report.stats
    assert stats["submitted"] == 10_000
    assert stats["batches"] > 0
    assert "breaker" in stats and "transitions" in stats["breaker"]
    assert isinstance(stats["shed_levels"], dict)
    assert stats["latency_seconds"]["count"] > 0


def test_crashy_scenario_exercises_pool_supervision():
    report = run_load_test(
        600,
        seed=3,
        scenario="crashy_workers",
        workers=2,
        concurrency=64,
        queue_limit=64,
        batch_size=8,
        deadline_seconds=30.0,
    )
    assert report.lost == 0
    # Crash probability 0.05/batch over ~dozens of batches: the pool
    # supervision path runs with overwhelming probability; retries or
    # restarts must be visible.
    assert report.pool_restarts + report.stats["retries"] >= 1
