"""Retry policy: bounded attempts, exponential backoff, substream jitter."""

import numpy as np
import pytest

from repro.service import RetryPolicy


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_seconds=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_seconds=2.0, max_delay_seconds=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_max_attempts_counts_the_first_try():
    assert RetryPolicy(max_retries=0).max_attempts == 1
    assert RetryPolicy(max_retries=3).max_attempts == 4


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_delay_seconds=0.1,
        multiplier=2.0,
        max_delay_seconds=0.5,
        jitter=0.0,
    )
    rng = np.random.default_rng(0)
    delays = [policy.delay_seconds(a, rng) for a in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # capped from attempt 4


def test_attempts_are_one_based():
    with pytest.raises(ValueError, match="1-based"):
        RetryPolicy().delay_seconds(0, np.random.default_rng(0))


def test_jitter_shrinks_but_never_grows_the_delay():
    policy = RetryPolicy(
        base_delay_seconds=0.2, multiplier=1.0, jitter=0.5
    )
    rng = np.random.default_rng(7)
    for attempt in range(1, 20):
        delay = policy.delay_seconds(attempt, rng)
        # d * (1 - jitter * u), u in [0, 1): at most d, above d/2.
        assert 0.1 < delay <= 0.2


def test_jitter_is_deterministic_per_substream():
    policy = RetryPolicy()
    a = policy.delay_seconds(2, policy.backoff_rng(0, "b7", 2))
    b = policy.delay_seconds(2, policy.backoff_rng(0, "b7", 2))
    assert a == b  # identical substream -> identical backoff
    c = policy.delay_seconds(2, policy.backoff_rng(0, "b7", 3))
    d = policy.delay_seconds(2, policy.backoff_rng(1, "b7", 2))
    assert len({a, c, d}) == 3  # attempt and seed both decorrelate
