"""Deletion-insertion channel simulators (Definition 1 / Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channels import (
    ERASURE,
    DeletionChannel,
    DeletionInsertionChannel,
    ErasureChannelView,
    InsertionChannel,
)
from repro.core.events import ChannelEvent, ChannelParameters


class TestDeletionInsertionChannel:
    def test_noiseless_synchronous_identity(self, rng):
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(0.0, 0.0), bits_per_symbol=3
        )
        msg = rng.integers(0, 8, 500)
        rec = chan.transmit(msg, rng)
        assert np.array_equal(rec.received, msg)
        assert rec.num_uses == 500
        assert rec.sent_consumed == 500

    def test_event_statistics(self, rng):
        params = ChannelParameters.from_rates(0.2, 0.1)
        chan = DeletionInsertionChannel(params, bits_per_symbol=1)
        rec = chan.transmit(rng.integers(0, 2, 30_000), rng)
        total = rec.num_uses
        assert rec.num_deletions / total == pytest.approx(0.2, abs=0.01)
        assert rec.num_insertions / total == pytest.approx(0.1, abs=0.01)

    def test_received_length_conservation(self, rng):
        params = ChannelParameters.from_rates(0.15, 0.25)
        chan = DeletionInsertionChannel(params, bits_per_symbol=2)
        rec = chan.transmit(rng.integers(0, 4, 5000), rng)
        assert len(rec.received) == rec.num_insertions + rec.num_transmissions
        assert rec.num_deletions + rec.num_transmissions == rec.sent_consumed

    def test_substitution_errors(self, rng):
        params = ChannelParameters.from_rates(0.0, 0.0, substitution=0.3)
        chan = DeletionInsertionChannel(params, bits_per_symbol=4)
        msg = rng.integers(0, 16, 20_000)
        rec = chan.transmit(msg, rng)
        errors = (rec.received != msg).mean()
        assert errors == pytest.approx(0.3, abs=0.02)
        # Substituted symbols are never equal to the original.
        sub_mask = rec.events == ChannelEvent.SUBSTITUTION
        assert np.all(rec.received[sub_mask] != msg[sub_mask])

    def test_max_uses_truncation(self, rng):
        params = ChannelParameters.from_rates(0.5, 0.0)
        chan = DeletionInsertionChannel(params)
        rec = chan.transmit(rng.integers(0, 2, 10_000), rng, max_uses=100)
        assert rec.num_uses == 100
        assert rec.sent_consumed <= 10_000

    def test_rejects_out_of_alphabet(self, rng):
        chan = DeletionInsertionChannel(ChannelParameters.from_rates(0.1, 0.1))
        with pytest.raises(ValueError):
            chan.transmit(np.array([0, 1, 2]), rng)

    def test_rejects_2d_input(self, rng):
        chan = DeletionInsertionChannel(ChannelParameters.from_rates(0.1, 0.1))
        with pytest.raises(ValueError):
            chan.transmit(np.zeros((2, 2), dtype=int), rng)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            DeletionInsertionChannel(
                ChannelParameters.from_rates(0.1, 0.1), bits_per_symbol=0
            )

    def test_never_consuming_channel_needs_max_uses(self, rng):
        params = ChannelParameters.from_rates(0.0, 1.0)
        chan = DeletionInsertionChannel(params)
        with pytest.raises(ValueError):
            chan.transmit(np.array([0, 1]), rng)
        rec = chan.transmit(np.array([0, 1]), rng, max_uses=50)
        assert rec.num_uses == 50
        assert rec.num_insertions == 50

    @given(
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.39),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_transmitted_subsequence_property(self, pd, pi, seed):
        """With no substitutions, the transmitted (non-inserted) symbols
        form a subsequence of the message, in order."""
        rng = np.random.default_rng(seed)
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=2
        )
        msg = rng.integers(0, 4, 200)
        rec = chan.transmit(msg, rng)
        # Rebuild the transmitted positions from the event stream.
        out = []
        qpos = 0
        for ev in rec.events:
            if ev == ChannelEvent.DELETION:
                qpos += 1
            elif ev in (ChannelEvent.TRANSMISSION, ChannelEvent.SUBSTITUTION):
                out.append(msg[qpos])
                qpos += 1
        received_trans = [
            s
            for s, ev in zip(
                rec.received,
                [e for e in rec.events if e != ChannelEvent.DELETION],
            )
            if ev != ChannelEvent.INSERTION
        ]
        assert received_trans == out


class TestSpecializations:
    def test_deletion_channel_no_insertions(self, rng):
        chan = DeletionChannel(0.3, bits_per_symbol=2)
        rec = chan.transmit(rng.integers(0, 4, 5000), rng)
        assert rec.num_insertions == 0
        assert len(rec.received) == 5000 - rec.num_deletions

    def test_insertion_channel_no_deletions(self, rng):
        chan = InsertionChannel(0.3, bits_per_symbol=2)
        rec = chan.transmit(rng.integers(0, 4, 5000), rng)
        assert rec.num_deletions == 0
        assert len(rec.received) == 5000 + rec.num_insertions


class TestErasureView:
    def test_requires_reveal_locations(self):
        chan = DeletionInsertionChannel(ChannelParameters.from_rates(0.1, 0.1))
        with pytest.raises(ValueError):
            ErasureChannelView(chan)

    def test_view_structure(self, rng):
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(0.25, 0.15),
            bits_per_symbol=2,
            reveal_locations=True,
        )
        msg = rng.integers(0, 4, 5000)
        rec = chan.transmit(msg, rng)
        view = rec.erasure_view
        # One entry per consumed input symbol.
        assert view.size == rec.sent_consumed
        erased = view == ERASURE
        assert erased.sum() == rec.num_deletions
        # Non-erased positions are exactly the original symbols.
        assert np.array_equal(view[~erased], msg[: view.size][~erased])

    def test_capacity_property(self):
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(0.25, 0.15),
            bits_per_symbol=4,
            reveal_locations=True,
        )
        assert ErasureChannelView(chan).capacity == pytest.approx(3.0)

    def test_transmit_wrapper(self, rng):
        chan = DeletionInsertionChannel(
            ChannelParameters.from_rates(0.2, 0.0),
            reveal_locations=True,
        )
        view = ErasureChannelView(chan).transmit(rng.integers(0, 2, 1000), rng)
        assert view.size == 1000
