"""The two-step capacity-estimation recipe (paper §4.3)."""

import numpy as np
import pytest

from repro.core.estimation import (
    CapacityEstimator,
    CapacityReport,
    estimate_from_events,
)
from repro.core.events import ChannelEvent, ChannelParameters, sample_events


class TestCapacityEstimator:
    def test_basic_report(self):
        params = ChannelParameters.from_rates(0.1, 0.05)
        report = CapacityEstimator(4).estimate(params)
        assert report.synchronous_capacity == 4.0
        assert report.corrected_capacity == pytest.approx(3.6)
        assert report.degradation == pytest.approx(0.1)
        assert 0 < report.feedback_lower < report.corrected_capacity

    def test_physical_correction(self):
        params = ChannelParameters.from_rates(0.25, 0.0)
        report = CapacityEstimator(1, physical_capacity=100.0).estimate(params)
        assert report.corrected_physical == pytest.approx(75.0)

    def test_no_physical_capacity_leaves_none(self):
        report = CapacityEstimator(1).estimate(
            ChannelParameters.from_rates(0.1, 0.0)
        )
        assert report.physical_capacity is None
        assert report.corrected_physical is None

    def test_synchronous_channel_no_degradation(self):
        report = CapacityEstimator(2).estimate(
            ChannelParameters.from_rates(0.0, 0.0)
        )
        assert report.degradation == 0.0
        assert report.corrected_capacity == 2.0
        assert report.feedback_lower == pytest.approx(2.0)

    def test_degenerate_all_insertions(self):
        params = ChannelParameters.from_rates(0.0, 1.0)
        report = CapacityEstimator(2).estimate(params)
        assert report.feedback_lower == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEstimator(0)
        with pytest.raises(ValueError):
            CapacityEstimator(1, physical_capacity=-5.0)

    def test_time_coefficient(self):
        est = CapacityEstimator(1)
        assert est.time_coefficient(
            ChannelParameters.from_rates(0.2, 0.2)
        ) == pytest.approx(1.0)

    def test_summary_mentions_key_numbers(self):
        params = ChannelParameters.from_rates(0.1, 0.05)
        text = CapacityEstimator(4, physical_capacity=10.0).estimate(params).summary()
        assert "3.6000" in text
        assert "10.0000" in text
        assert "P_d=0.1000" in text


class TestFromEvents:
    def test_estimate_from_sampled_events(self, rng):
        params = ChannelParameters.from_rates(0.3, 0.1)
        events = sample_events(params, 200_000, rng)
        report = estimate_from_events(events, bits_per_symbol=2)
        assert report.params.deletion == pytest.approx(0.3, abs=0.01)
        assert report.corrected_capacity == pytest.approx(2 * 0.7, abs=0.02)

    def test_physical_passthrough(self, rng):
        events = [int(ChannelEvent.TRANSMISSION)] * 7 + [
            int(ChannelEvent.DELETION)
        ] * 3
        report = estimate_from_events(events, physical_capacity=50.0)
        assert report.corrected_physical == pytest.approx(35.0)

    def test_report_is_frozen(self):
        report = estimate_from_events(
            [int(ChannelEvent.TRANSMISSION)] * 10
        )
        assert isinstance(report, CapacityReport)
        with pytest.raises(AttributeError):
            report.corrected_capacity = 9.0  # type: ignore[misc]
