"""The two-step capacity-estimation recipe (paper §4.3)."""

import numpy as np
import pytest

from repro.core.estimation import (
    CapacityEstimator,
    CapacityReport,
    estimate_from_events,
)
from repro.core.events import ChannelEvent, ChannelParameters, sample_events


class TestCapacityEstimator:
    def test_basic_report(self):
        params = ChannelParameters.from_rates(0.1, 0.05)
        report = CapacityEstimator(4).estimate(params)
        assert report.synchronous_capacity == 4.0
        assert report.corrected_capacity == pytest.approx(3.6)
        assert report.degradation == pytest.approx(0.1)
        assert 0 < report.feedback_lower < report.corrected_capacity

    def test_physical_correction(self):
        params = ChannelParameters.from_rates(0.25, 0.0)
        report = CapacityEstimator(1, physical_capacity=100.0).estimate(params)
        assert report.corrected_physical == pytest.approx(75.0)

    def test_no_physical_capacity_leaves_none(self):
        report = CapacityEstimator(1).estimate(
            ChannelParameters.from_rates(0.1, 0.0)
        )
        assert report.physical_capacity is None
        assert report.corrected_physical is None

    def test_synchronous_channel_no_degradation(self):
        report = CapacityEstimator(2).estimate(
            ChannelParameters.from_rates(0.0, 0.0)
        )
        assert report.degradation == 0.0
        assert report.corrected_capacity == 2.0
        assert report.feedback_lower == pytest.approx(2.0)

    def test_degenerate_all_insertions(self):
        params = ChannelParameters.from_rates(0.0, 1.0)
        report = CapacityEstimator(2).estimate(params)
        assert report.feedback_lower == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEstimator(0)
        with pytest.raises(ValueError):
            CapacityEstimator(1, physical_capacity=-5.0)

    def test_time_coefficient(self):
        est = CapacityEstimator(1)
        assert est.time_coefficient(
            ChannelParameters.from_rates(0.2, 0.2)
        ) == pytest.approx(1.0)

    def test_summary_mentions_key_numbers(self):
        params = ChannelParameters.from_rates(0.1, 0.05)
        text = CapacityEstimator(4, physical_capacity=10.0).estimate(params).summary()
        assert "3.6000" in text
        assert "10.0000" in text
        assert "P_d=0.1000" in text


class TestFromEvents:
    def test_estimate_from_sampled_events(self, rng):
        params = ChannelParameters.from_rates(0.3, 0.1)
        events = sample_events(params, 200_000, rng)
        report = estimate_from_events(events, bits_per_symbol=2)
        assert report.params.deletion == pytest.approx(0.3, abs=0.01)
        assert report.corrected_capacity == pytest.approx(2 * 0.7, abs=0.02)

    def test_physical_passthrough(self, rng):
        events = [int(ChannelEvent.TRANSMISSION)] * 7 + [
            int(ChannelEvent.DELETION)
        ] * 3
        report = estimate_from_events(events, physical_capacity=50.0)
        assert report.corrected_physical == pytest.approx(35.0)

    def test_report_is_frozen(self):
        report = estimate_from_events(
            [int(ChannelEvent.TRANSMISSION)] * 10
        )
        assert isinstance(report, CapacityReport)
        with pytest.raises(AttributeError):
            report.corrected_capacity = 9.0  # type: ignore[misc]


class TestDegenerateStreams:
    """Regression: degenerate input raises clearly instead of
    propagating NaN ratios into the CapacityReport."""

    def test_empty_stream_raises_value_error(self):
        with pytest.raises(ValueError, match="empty stream"):
            estimate_from_events([])

    def test_empty_ndarray_stream_raises(self):
        with pytest.raises(ValueError, match="empty stream"):
            estimate_from_events(np.array([], dtype=np.int64))

    def test_unknown_event_codes_are_named_not_masked(self):
        # A stream of out-of-vocabulary codes used to count as zero
        # events of every kind and be reported as "empty"; it must
        # name the offending code instead.
        with pytest.raises(ValueError, match="invalid event code 9"):
            estimate_from_events([9, 9, 9])

    def test_mixed_invalid_code_rejected(self):
        events = [int(ChannelEvent.TRANSMISSION)] * 10 + [-2]
        with pytest.raises(ValueError, match="invalid event code"):
            estimate_from_events(events)

    def test_nan_event_codes_rejected(self):
        with pytest.raises(ValueError, match="invalid event code"):
            estimate_from_events(np.array([2.0, np.nan, 2.0]))

    def test_valid_stream_report_is_finite(self):
        events = [int(ChannelEvent.TRANSMISSION)] * 8 + [
            int(ChannelEvent.DELETION)
        ] * 2
        report = estimate_from_events(events, physical_capacity=10.0)
        assert report.params.deletion == pytest.approx(0.2)
        assert np.isfinite(report.corrected_capacity)
        assert report.corrected_physical == pytest.approx(8.0)

    def test_nan_physical_capacity_rejected(self):
        # NaN sails through a bare `< 0` check; it must be rejected at
        # construction, not surface as a NaN corrected_physical.
        with pytest.raises(ValueError, match="finite non-negative"):
            CapacityEstimator(1, physical_capacity=float("nan"))

    def test_inf_physical_capacity_rejected(self):
        with pytest.raises(ValueError, match="finite non-negative"):
            CapacityEstimator(1, physical_capacity=float("inf"))

    def test_negative_physical_capacity_still_rejected(self):
        with pytest.raises(ValueError, match="finite non-negative"):
            CapacityEstimator(1, physical_capacity=-0.5)
