"""ChannelParameters and event-stream utilities (Definition 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import (
    ChannelEvent,
    ChannelParameters,
    empirical_parameters,
    event_counts,
    sample_events,
)


class TestChannelParameters:
    def test_from_rates(self):
        p = ChannelParameters.from_rates(deletion=0.1, insertion=0.2)
        assert p.transmission == pytest.approx(0.7)

    def test_sum_must_be_one(self):
        with pytest.raises(ValueError):
            ChannelParameters(deletion=0.5, insertion=0.5, transmission=0.5)

    def test_from_rates_rejects_excess(self):
        with pytest.raises(ValueError):
            ChannelParameters.from_rates(deletion=0.7, insertion=0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ChannelParameters(deletion=-0.1, insertion=0.1, transmission=1.0)
        with pytest.raises(ValueError):
            ChannelParameters.from_rates(0.1, 0.1, substitution=1.5)

    def test_predicates(self):
        sync = ChannelParameters.from_rates(0.0, 0.0)
        assert sync.is_synchronous and sync.is_noiseless
        noisy = ChannelParameters.from_rates(0.1, 0.0, substitution=0.2)
        assert not noisy.is_noiseless and not noisy.is_synchronous

    def test_event_distribution_sums_to_one(self):
        p = ChannelParameters.from_rates(0.2, 0.1, substitution=0.3)
        dist = p.event_distribution()
        assert dist.sum() == pytest.approx(1.0)
        # SUBSTITUTION share = Pt * Ps
        assert dist[int(ChannelEvent.SUBSTITUTION)] == pytest.approx(0.7 * 0.3)

    def test_frozen(self):
        p = ChannelParameters.from_rates(0.1, 0.1)
        with pytest.raises(AttributeError):
            p.deletion = 0.5  # type: ignore[misc]

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=50)
    def test_from_rates_valid_when_feasible(self, pd, pi):
        if pd + pi <= 1.0:
            p = ChannelParameters.from_rates(pd, pi)
            assert p.deletion + p.insertion + p.transmission == pytest.approx(1.0)


class TestSampling:
    def test_sample_length(self, rng):
        p = ChannelParameters.from_rates(0.3, 0.2)
        assert sample_events(p, 1000, rng).shape == (1000,)

    def test_sample_statistics(self, rng):
        p = ChannelParameters.from_rates(0.3, 0.2, substitution=0.1)
        events = sample_events(p, 200_000, rng)
        counts = event_counts(events)
        total = sum(counts.values())
        assert counts[ChannelEvent.DELETION] / total == pytest.approx(0.3, abs=0.01)
        assert counts[ChannelEvent.INSERTION] / total == pytest.approx(0.2, abs=0.01)
        sub_frac = counts[ChannelEvent.SUBSTITUTION] / total
        assert sub_frac == pytest.approx(0.5 * 0.1, abs=0.005)

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_events(ChannelParameters.from_rates(0.1, 0.1), -1, rng)

    def test_zero_uses(self, rng):
        assert sample_events(ChannelParameters.from_rates(0.1, 0.1), 0, rng).size == 0


class TestEmpiricalParameters:
    def test_roundtrip(self, rng):
        p = ChannelParameters.from_rates(0.25, 0.15, substitution=0.05)
        events = sample_events(p, 300_000, rng)
        est = empirical_parameters(events)
        assert est.deletion == pytest.approx(0.25, abs=0.01)
        assert est.insertion == pytest.approx(0.15, abs=0.01)
        assert est.substitution == pytest.approx(0.05, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_parameters([])

    def test_pure_transmissions(self):
        est = empirical_parameters([int(ChannelEvent.TRANSMISSION)] * 10)
        assert est.is_synchronous
        assert est.transmission == 1.0

    def test_substitution_conditional_on_transmission(self):
        events = [int(ChannelEvent.TRANSMISSION)] * 3 + [
            int(ChannelEvent.SUBSTITUTION)
        ]
        est = empirical_parameters(events)
        assert est.substitution == pytest.approx(0.25)
        assert est.transmission == 1.0
