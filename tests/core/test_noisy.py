"""Noisy-channel extension of the feedback bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import feedback_lower_bound_exact
from repro.core.events import ChannelParameters
from repro.core.noisy import (
    noisy_converted_capacity,
    noisy_converted_error_probability,
    noisy_feedback_lower_bound,
)
from repro.infotheory.channels import m_ary_symmetric_capacity
from repro.sync.noisy import NoisyCounterProtocol


class TestClosedForms:
    def test_reduces_to_exact_theorem5_at_ps_zero(self):
        for pd, pi in [(0.1, 0.1), (0.2, 0.05), (0.0, 0.3)]:
            assert noisy_feedback_lower_bound(3, pd, pi, 0.0) == pytest.approx(
                feedback_lower_bound_exact(3, pd, pi)
            )

    def test_pure_noise_case(self):
        # No sync errors: just the M-ary symmetric capacity at Ps.
        assert noisy_feedback_lower_bound(3, 0.0, 0.0, 0.2) == pytest.approx(
            m_ary_symmetric_capacity(8, 0.2)
        )

    def test_error_probability_composition(self):
        n, pd, pi, ps = 2, 0.2, 0.1, 0.3
        q = pi / (1 - pd)
        expected = q * 3 / 4 + (1 - q) * ps
        assert noisy_converted_error_probability(n, pd, pi, ps) == pytest.approx(
            expected
        )

    def test_noise_only_reduces_capacity(self):
        base = noisy_converted_capacity(3, 0.1, 0.1, 0.0)
        noisy = noisy_converted_capacity(3, 0.1, 0.1, 0.1)
        assert noisy < base

    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40)
    def test_bounds_ordering(self, n, pd, pi, ps):
        noisy = noisy_feedback_lower_bound(n, pd, pi, ps)
        clean = feedback_lower_bound_exact(n, pd, pi)
        assert noisy <= clean + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            noisy_converted_error_probability(2, 0.1, 0.1, 1.5)


class TestNoisyCounterProtocol:
    def test_accepts_substitution_params(self):
        NoisyCounterProtocol(
            ChannelParameters.from_rates(0.1, 0.1, substitution=0.2)
        )

    def test_substitution_rate_matches_theory(self, rng):
        n, pd, pi, ps = 2, 0.15, 0.1, 0.1
        proto = NoisyCounterProtocol(
            ChannelParameters.from_rates(pd, pi, substitution=ps),
            bits_per_symbol=n,
        )
        run = proto.run(rng.integers(0, 4, 200_000), rng)
        expected = noisy_converted_error_probability(n, pd, pi, ps)
        assert run.symbol_error_rate == pytest.approx(expected, rel=0.05)

    def test_noiseless_matches_counter_protocol(self, rng):
        from repro.sync.feedback import CounterProtocol

        params = ChannelParameters.from_rates(0.1, 0.1)
        msg = rng.integers(0, 2, 50_000)
        noisy = NoisyCounterProtocol(params).run(
            msg, np.random.default_rng(1)
        )
        clean = CounterProtocol(params).run(msg, np.random.default_rng(1))
        # Identical randomness stream -> identical runs.
        assert noisy.channel_uses == clean.channel_uses
        assert np.array_equal(noisy.delivered, clean.delivered)

    def test_information_rate_matches_noisy_bound(self, rng):
        """Plug-in MI through the noisy protocol scales to the bound."""
        from repro.simulation.mutual_information import plugin_mutual_information

        n, pd, pi, ps = 3, 0.1, 0.1, 0.05
        proto = NoisyCounterProtocol(
            ChannelParameters.from_rates(pd, pi, substitution=ps),
            bits_per_symbol=n,
        )
        run = proto.run(rng.integers(0, 8, 200_000), rng)
        mi = plugin_mutual_information(
            run.message[: run.symbols_delivered],
            run.delivered,
            nx=8,
            ny=8,
        )
        per_slot = mi * run.symbols_delivered / run.sender_slots
        assert per_slot == pytest.approx(
            noisy_feedback_lower_bound(n, pd, pi, ps), rel=0.03
        )
