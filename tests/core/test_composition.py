"""Composition laws for deletion-insertion stages."""

import numpy as np
import pytest

from repro.core.channels import DeletionInsertionChannel
from repro.core.composition import (
    compose_parameters,
    composite_erasure_bound,
    composition_is_degrading,
)
from repro.core.events import ChannelEvent, ChannelParameters


class TestComposeParameters:
    def test_single_stage_identity(self):
        p = ChannelParameters.from_rates(0.2, 0.1)
        c = compose_parameters([p])
        assert c.deletion == pytest.approx(p.deletion)
        assert c.insertion == pytest.approx(p.insertion)

    def test_two_deletion_stages(self):
        # Survival multiplies: (1-0.2)(1-0.25) = 0.6 => Pd' = 0.4.
        a = ChannelParameters.from_rates(0.2, 0.0)
        b = ChannelParameters.from_rates(0.25, 0.0)
        c = compose_parameters([a, b])
        assert c.insertion == 0.0
        assert c.deletion == pytest.approx(0.4)

    def test_two_insertion_stages_accumulate(self):
        a = ChannelParameters.from_rates(0.0, 0.1)
        b = ChannelParameters.from_rates(0.0, 0.1)
        c = compose_parameters([a, b])
        assert c.deletion == 0.0
        # Loads r = 1/9 each, no thinning: total 2/9 per symbol.
        expected_load = 2 * (0.1 / 0.9)
        assert c.insertion / c.transmission == pytest.approx(expected_load)

    def test_order_matters_for_insertions(self):
        """Insertions injected before a deleting stage get thinned;
        after it they do not."""
        ins_first = compose_parameters(
            [
                ChannelParameters.from_rates(0.0, 0.2),
                ChannelParameters.from_rates(0.3, 0.0),
            ]
        )
        del_first = compose_parameters(
            [
                ChannelParameters.from_rates(0.3, 0.0),
                ChannelParameters.from_rates(0.0, 0.2),
            ]
        )
        assert ins_first.insertion < del_first.insertion

    def test_validation(self):
        with pytest.raises(ValueError):
            compose_parameters([])
        with pytest.raises(ValueError):
            compose_parameters(
                [ChannelParameters.from_rates(0.1, 0.0, substitution=0.1)]
            )
        with pytest.raises(ValueError):
            compose_parameters(
                [ChannelParameters.from_rates(0.0, 1.0)]
            )

    def test_matches_simulation(self, rng):
        """Composite deletion/insertion statistics match actually
        chaining two channel simulators."""
        a = ChannelParameters.from_rates(0.15, 0.1)
        b = ChannelParameters.from_rates(0.1, 0.05)
        predicted = compose_parameters([a, b])

        ch_a = DeletionInsertionChannel(a, bits_per_symbol=1)
        ch_b = DeletionInsertionChannel(b, bits_per_symbol=1)
        msg = rng.integers(0, 2, 60_000)
        mid = ch_a.transmit(msg, rng).received
        out = ch_b.transmit(mid, rng).received

        # Surviving originals: track a marker-free statistic instead —
        # expected output length = inputs * Pt'(per consumed) ratio.
        consumed = msg.size
        expected_outputs = consumed * (
            (predicted.insertion + predicted.transmission)
            / (predicted.deletion + predicted.transmission)
        )
        assert out.size == pytest.approx(expected_outputs, rel=0.03)


class TestBounds:
    def test_composite_bound_below_each_stage(self):
        stages = [
            ChannelParameters.from_rates(0.1, 0.05),
            ChannelParameters.from_rates(0.2, 0.1),
            ChannelParameters.from_rates(0.05, 0.0),
        ]
        assert composition_is_degrading(3, stages)

    def test_composite_bound_value(self):
        stages = [
            ChannelParameters.from_rates(0.2, 0.0),
            ChannelParameters.from_rates(0.25, 0.0),
        ]
        assert composite_erasure_bound(2, stages) == pytest.approx(2 * 0.6)

    def test_identity_stage_is_neutral(self):
        ident = ChannelParameters.from_rates(0.0, 0.0)
        p = ChannelParameters.from_rates(0.2, 0.1)
        c = compose_parameters([ident, p, ident])
        assert c.deletion == pytest.approx(p.deletion)
        assert c.insertion == pytest.approx(p.insertion)
