"""Closed-form capacity expressions (paper equations 1-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import (
    alpha,
    converted_capacity,
    converted_capacity_large_n,
    converted_insertion_fraction,
    convergence_ratio,
    convergence_ratio_limit,
    deletion_feedback_capacity,
    erasure_upper_bound,
    feedback_lower_bound,
    feedback_lower_bound_exact,
    feedback_time_coefficient,
)
from repro.infotheory.entropy import binary_entropy


class TestAlpha:
    def test_values(self):
        assert alpha(1) == 0.5
        assert alpha(3) == pytest.approx(7 / 8)

    def test_tends_to_one(self):
        assert alpha(20) == pytest.approx(1.0, abs=1e-5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            alpha(0)


class TestErasureUpperBound:
    @pytest.mark.parametrize(
        "n,pd,expected", [(1, 0.0, 1.0), (4, 0.1, 3.6), (2, 1.0, 0.0)]
    )
    def test_values(self, n, pd, expected):
        assert erasure_upper_bound(n, pd) == pytest.approx(expected)

    def test_equals_theorem3(self):
        assert erasure_upper_bound(3, 0.2) == deletion_feedback_capacity(3, 0.2)

    @given(
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_linear_in_pd(self, n, pd):
        assert erasure_upper_bound(n, pd) == pytest.approx(n * (1 - pd))


class TestTimeCoefficient:
    def test_symmetric_case_is_one(self):
        assert feedback_time_coefficient(0.2, 0.2) == pytest.approx(1.0)

    def test_deletion_only(self):
        assert feedback_time_coefficient(0.3, 0.0) == pytest.approx(0.7)

    def test_insertion_only_above_one(self):
        assert feedback_time_coefficient(0.0, 0.3) == pytest.approx(1 / 0.7)

    def test_rejects_pi_one(self):
        with pytest.raises(ValueError):
            feedback_time_coefficient(0.0, 1.0)


class TestConvertedCapacity:
    def test_large_n_approximation_converges(self):
        exact = converted_capacity(16, 0.1)
        approx = converted_capacity_large_n(16, 0.1)
        assert exact == pytest.approx(approx, abs=1e-3)

    def test_large_n_form(self):
        n, pi = 8, 0.2
        assert converted_capacity_large_n(n, pi) == pytest.approx(
            n * (1 - pi) - binary_entropy(pi)
        )

    def test_insertion_fraction(self):
        assert converted_insertion_fraction(0.2, 0.1) == pytest.approx(0.125)
        assert converted_insertion_fraction(0.0, 0.1) == pytest.approx(0.1)

    def test_insertion_fraction_rejects_degenerate(self):
        with pytest.raises(ValueError):
            converted_insertion_fraction(1.0, 0.0)
        with pytest.raises(ValueError):
            converted_insertion_fraction(0.5, 0.6)


class TestFeedbackBounds:
    def test_reduces_to_theorem3_when_no_insertions(self):
        for n in (1, 2, 4):
            for pd in (0.0, 0.1, 0.3):
                assert feedback_lower_bound(n, pd, 0.0) == pytest.approx(
                    n * (1 - pd)
                )
                assert feedback_lower_bound_exact(n, pd, 0.0) == pytest.approx(
                    n * (1 - pd)
                )

    def test_paper_and_exact_agree_at_pd_zero(self):
        assert feedback_lower_bound(3, 0.0, 0.2) == pytest.approx(
            feedback_lower_bound_exact(3, 0.0, 0.2)
        )

    def test_exact_never_above_paper(self):
        for pd in (0.05, 0.1, 0.3):
            for pi in (0.05, 0.1, 0.3):
                assert (
                    feedback_lower_bound_exact(4, pd, pi)
                    <= feedback_lower_bound(4, pd, pi) + 1e-12
                )

    @given(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.45),
    )
    @settings(max_examples=60)
    def test_lower_below_upper(self, n, pd, pi):
        if pd + pi >= 1.0:
            return
        lower = feedback_lower_bound(n, pd, pi)
        upper = erasure_upper_bound(n, pd)
        assert lower <= upper + 1e-9
        assert feedback_lower_bound_exact(n, pd, pi) <= upper + 1e-9

    def test_monotone_decreasing_in_pd(self):
        values = [feedback_lower_bound(4, pd, 0.1) for pd in (0.0, 0.1, 0.2, 0.4)]
        assert values == sorted(values, reverse=True)


class TestConvergenceRatio:
    def test_ratio_in_unit_interval(self):
        for n in (1, 2, 8):
            for p in (0.05, 0.2, 0.5):
                assert 0.0 <= convergence_ratio(n, p) <= 1.0 + 1e-12

    def test_increasing_in_n(self):
        for p in (0.05, 0.2):
            ratios = [convergence_ratio(n, p) for n in (1, 2, 4, 8, 16)]
            assert ratios == sorted(ratios)

    def test_limit_form(self):
        n, p = 8, 0.1
        expected = (n * (1 - p) - binary_entropy(p)) / (n * (1 - p))
        assert convergence_ratio_limit(n, p) == pytest.approx(expected)

    def test_approaches_one(self):
        assert convergence_ratio(64, 0.1) > 0.99

    def test_degenerate_p_one(self):
        assert convergence_ratio(4, 1.0) == 1.0
        assert convergence_ratio_limit(4, 1.0) == 1.0
