"""Symbol-width design helpers."""

import pytest

from repro.core.design import (
    optimal_symbol_width,
    symbol_time,
    symbol_width_rate,
    width_sweep,
)


class TestSymbolTime:
    def test_serial_linear(self):
        assert symbol_time(4, cost_model="serial", time_unit=2.0) == 8.0
        assert symbol_time(4, cost_model="serial", sync_overhead=1.0) == 5.0

    def test_timing_exponential(self):
        assert symbol_time(3, cost_model="timing") == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            symbol_time(0)
        with pytest.raises(ValueError):
            symbol_time(3, cost_model="quantum")
        with pytest.raises(ValueError):
            symbol_time(3, time_unit=0.0)
        with pytest.raises(ValueError):
            symbol_time(3, sync_overhead=-1.0)


class TestRates:
    def test_serial_monotone_increasing(self):
        sweep = width_sweep(0.1, 0.1, max_bits=10, cost_model="serial")
        rates = [d.rate_per_time for d in sweep]
        assert rates == sorted(rates)

    def test_serial_saturates_at_coefficient(self):
        # Limit: ((1-Pd)/(1-Pi)) (1 - q) / t with q = Pi/(1-Pd).
        pd, pi = 0.1, 0.1
        q = pi / (1 - pd)
        limit = (1 - pd) / (1 - pi) * (1 - q)
        sweep = width_sweep(pd, pi, max_bits=16, cost_model="serial")
        assert sweep[-1].rate_per_time == pytest.approx(limit, abs=0.05)
        assert sweep[-1].rate_per_time < limit

    def test_timing_has_interior_optimum(self):
        best = optimal_symbol_width(0.1, 0.05, max_bits=10, cost_model="timing")
        assert 1 <= best.bits_per_symbol <= 4
        sweep = width_sweep(0.1, 0.05, max_bits=10, cost_model="timing")
        # The curve decreases after the optimum.
        assert sweep[-1].rate_per_time < best.rate_per_time

    def test_overhead_pushes_optimum_wider(self):
        lean = optimal_symbol_width(
            0.05, 0.02, cost_model="timing", sync_overhead=0.0
        )
        heavy = optimal_symbol_width(
            0.05, 0.02, cost_model="timing", sync_overhead=20.0
        )
        assert heavy.bits_per_symbol >= lean.bits_per_symbol

    def test_rate_function_matches_sweep(self):
        r = symbol_width_rate(3, 0.1, 0.05, cost_model="timing")
        sweep = width_sweep(0.1, 0.05, max_bits=3, cost_model="timing")
        assert r == pytest.approx(sweep[-1].rate_per_time)

    def test_validation(self):
        with pytest.raises(ValueError):
            width_sweep(0.1, 0.1, max_bits=0)
