"""Theorem-level API (statements, bounds, brackets)."""

import pytest

from repro.core.theorems import (
    THEOREMS,
    asymptotic_gap,
    capacity_bracket,
    theorem1_upper_bound,
    theorem2_feedback_upper_bound,
    theorem3_feedback_capacity,
    theorem4_feedback_upper_bound,
    theorem5_feedback_lower_bound,
)


class TestRegistry:
    def test_all_five_present(self):
        assert sorted(THEOREMS) == [1, 2, 3, 4, 5]

    def test_statements_nonempty(self):
        for t in THEOREMS.values():
            assert t.title and t.statement
            assert str(t.number) in t.statement or t.number in (1, 2, 3, 4, 5)

    def test_callable(self):
        assert THEOREMS[1](4, 0.25) == pytest.approx(3.0)
        assert THEOREMS[5](4, 0.1, 0.1) == pytest.approx(
            theorem5_feedback_lower_bound(4, 0.1, 0.1)
        )


class TestBounds:
    def test_theorem1_values(self):
        assert theorem1_upper_bound(2, 0.5) == pytest.approx(1.0)

    def test_theorems_1_2_4_coincide(self):
        # All three bounds are the erasure capacity N(1-Pd).
        assert (
            theorem1_upper_bound(3, 0.2)
            == theorem2_feedback_upper_bound(3, 0.2)
            == theorem4_feedback_upper_bound(3, 0.2, 0.1)
        )

    def test_theorem4_ignores_insertions(self):
        assert theorem4_feedback_upper_bound(3, 0.2, 0.0) == pytest.approx(
            theorem4_feedback_upper_bound(3, 0.2, 0.4)
        )

    def test_theorem4_validates_pi(self):
        with pytest.raises(ValueError):
            theorem4_feedback_upper_bound(3, 0.2, 1.5)

    def test_theorem3_achieves_theorem2(self):
        assert theorem3_feedback_capacity(5, 0.3) == pytest.approx(
            theorem2_feedback_upper_bound(5, 0.3)
        )


class TestBracket:
    def test_bracket_order(self):
        lower, upper = capacity_bracket(4, 0.1, 0.1)
        assert 0.0 < lower < upper

    def test_bracket_collapses_without_insertions(self):
        lower, upper = capacity_bracket(4, 0.2, 0.0)
        assert lower == pytest.approx(upper)

    def test_asymptotic_gap_decreases(self):
        gaps = [asymptotic_gap(n, 0.1) for n in (1, 2, 4, 8, 16)]
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 0.05

    def test_asymptotic_gap_nonnegative(self):
        assert asymptotic_gap(1, 0.4) >= 0.0
