"""Degradation analysis (§4.3: degradation roughly proportional to P_d)."""

import numpy as np
import pytest

from repro.core.degradation import (
    degradation_series,
    fit_degradation,
    relative_degradation_lower,
    relative_degradation_upper,
)


class TestUpperDegradation:
    def test_exactly_pd(self):
        for pd in (0.0, 0.1, 0.5, 1.0):
            assert relative_degradation_upper(pd) == pd

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_degradation_upper(1.5)


class TestLowerDegradation:
    def test_zero_at_synchronous(self):
        assert relative_degradation_lower(4, 0.0, 0.0) == pytest.approx(0.0)

    def test_insertion_adds_penalty(self):
        base = relative_degradation_lower(4, 0.1, 0.0)
        with_ins = relative_degradation_lower(4, 0.1, 0.1)
        assert with_ins > base

    def test_no_insertion_matches_pd(self):
        assert relative_degradation_lower(4, 0.3, 0.0) == pytest.approx(0.3)


class TestFit:
    def test_perfect_line(self):
        x = np.linspace(0, 0.4, 9)
        fit = fit_degradation(x, 2 * x + 0.1)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.1)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.max_abs_residual < 1e-12

    def test_erasure_series_slope_one(self):
        pds = np.linspace(0, 0.5, 11)
        fit = fit_degradation(pds, pds)
        assert fit.slope == pytest.approx(1.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-12)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_degradation([0.1], [0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_degradation([0.1, 0.2], [0.1])


class TestSeries:
    def test_no_insertion_series_identity(self):
        pds = np.linspace(0, 0.4, 5)
        series = degradation_series(4, pds, insertion_prob=0.0)
        assert np.allclose(series, pds)

    def test_series_monotone_in_pd(self):
        pds = np.linspace(0, 0.4, 9)
        series = degradation_series(4, pds, insertion_prob=0.1)
        assert np.all(np.diff(series) > 0)

    def test_paper_claim_slope_near_one(self):
        """The §4.3 claim: fit of degradation vs P_d has slope ~1 even
        with insertions present."""
        pds = np.linspace(0.0, 0.4, 17)
        series = degradation_series(8, pds, insertion_prob=0.05)
        fit = fit_degradation(pds, series)
        assert abs(fit.slope - 1.0) < 0.05
        assert fit.r_squared > 0.999

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            degradation_series(4, np.zeros((2, 2)))
