"""Protocol measurement harness (simulation vs theory in one record)."""

import numpy as np
import pytest

from repro.core.events import ChannelParameters
from repro.sync.feedback import CounterProtocol, ResendProtocol
from repro.sync.harness import measure_protocol


class TestMeasureResend:
    def test_matches_theorem3(self, rng):
        proto = ResendProtocol(
            ChannelParameters.from_rates(0.25, 0.0), bits_per_symbol=2
        )
        m = measure_protocol(proto, rng.integers(0, 4, 60_000), rng)
        assert m.throughput_per_use == pytest.approx(2 * 0.75, rel=0.02)
        assert m.empirical_substitution_rate == 0.0
        assert m.theoretical_upper == pytest.approx(1.5)
        # With Pi = 0 the bracket collapses.
        assert m.theoretical_lower_paper == pytest.approx(m.theoretical_upper)
        assert m.theoretical_lower_exact == pytest.approx(m.theoretical_upper)


class TestMeasureCounter:
    def test_simulation_tracks_exact_bound(self, rng):
        proto = CounterProtocol(
            ChannelParameters.from_rates(0.15, 0.1), bits_per_symbol=3
        )
        m = measure_protocol(proto, rng.integers(0, 8, 200_000), rng)
        assert m.empirical_information_per_slot == pytest.approx(
            m.theoretical_lower_exact, rel=0.02
        )

    def test_bound_ordering(self, rng):
        proto = CounterProtocol(
            ChannelParameters.from_rates(0.2, 0.2), bits_per_symbol=2
        )
        m = measure_protocol(proto, rng.integers(0, 4, 50_000), rng)
        assert (
            m.theoretical_lower_exact
            <= m.theoretical_lower_paper + 1e-12
            <= m.theoretical_upper + 1e-12
        )

    def test_mi_close_to_converted_capacity(self, rng):
        """Plug-in MI per delivered symbol should approximate the
        converted channel capacity at the measured error rate."""
        proto = CounterProtocol(
            ChannelParameters.from_rates(0.1, 0.15), bits_per_symbol=3
        )
        m = measure_protocol(proto, rng.integers(0, 8, 200_000), rng)
        per_symbol = (
            m.empirical_information_per_slot
            * m.run.sender_slots
            / m.run.symbols_delivered
        )
        assert m.empirical_mi_per_symbol == pytest.approx(per_symbol, abs=0.05)

    def test_tiny_message(self, rng):
        proto = CounterProtocol(ChannelParameters.from_rates(0.1, 0.1))
        m = measure_protocol(proto, np.array([1]), rng)
        assert m.run.symbols_delivered == 1

    def test_throughput_properties_exposed(self, rng):
        proto = CounterProtocol(ChannelParameters.from_rates(0.1, 0.1))
        m = measure_protocol(proto, rng.integers(0, 2, 1000), rng)
        assert m.throughput_per_use > 0
        assert m.throughput_per_slot > 0
