"""Hardened protocol behaviour under fault injection.

Covers the RetryPolicy-driven ResendProtocol sender, the
CounterProtocol resynchronization epochs, and — critically — that the
fault-free default paths are bit-identical to the original
perfect-feedback implementations.
"""

import numpy as np
import pytest

from repro.core.events import ChannelParameters
from repro.faults.injector import FaultInjector
from repro.faults.models import FeedbackFaultModel, IIDEventModel
from repro.faults.scenarios import build_injector
from repro.sync.feedback import CounterProtocol, ResendProtocol
from repro.sync.protocols import RetryPolicy

DEL_ONLY = ChannelParameters.from_rates(deletion=0.2, insertion=0.0)
DEL_INS = ChannelParameters.from_rates(deletion=0.1, insertion=0.05)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(ack_timeout_slots=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(ack_timeout_slots=8, max_timeout_slots=4)

    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(ack_timeout_slots=2, backoff=2.0, max_timeout_slots=16)
        assert [policy.timeout_after(f) for f in range(6)] == [2, 4, 8, 16, 16, 16]

    def test_flat_by_default(self):
        policy = RetryPolicy()
        assert policy.timeout_after(0) == policy.timeout_after(10) == 1


class TestResendHardened:
    def test_policy_alone_still_delivers_exactly(self, rng):
        """A retry policy without faults changes the sender machinery but
        not correctness: every symbol arrives intact."""
        proto = ResendProtocol(
            DEL_ONLY, retry_policy=RetryPolicy(max_retries=None)
        )
        msg = rng.integers(0, 2, 4000)
        run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.symbol_errors == 0
        assert not run.degraded
        assert run.fault_count("symbols_abandoned") == 0
        # Rate still converges to the Theorem-3 value.
        assert run.throughput_per_use == pytest.approx(0.8, abs=0.03)

    def test_lossy_acks_cause_duplicates_not_errors(self, rng):
        injector = FaultInjector(
            IIDEventModel(DEL_ONLY),
            FeedbackFaultModel(ack_loss_prob=0.3),
            seed=2,
        )
        proto = ResendProtocol(DEL_ONLY, retry_policy=RetryPolicy())
        msg = rng.integers(0, 2, 3000)
        with injector.active():
            run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.fault_count("duplicates") > 0
        assert run.fault_count("acks_lost") > 0
        assert not run.degraded
        # Duplicates burn uses: rate drops below the Theorem-3 value.
        assert run.throughput_per_use < 0.8

    def test_retry_exhaustion_abandons_and_flags_degraded(self, rng):
        injector = FaultInjector(
            IIDEventModel(DEL_ONLY),
            FeedbackFaultModel(ack_loss_prob=0.6),
            seed=2,
        )
        proto = ResendProtocol(
            DEL_ONLY, retry_policy=RetryPolicy(max_retries=1)
        )
        msg = rng.integers(0, 2, 3000)
        with injector.active():
            run = proto.run(msg, rng)
        assert run.symbols_delivered == msg.size  # abandoned -> guessed
        assert run.fault_count("symbols_abandoned") > 0
        assert run.degraded
        assert run.symbol_errors <= run.fault_count("symbols_abandoned")

    def test_delayed_acks_wait_out_timeouts(self, rng):
        injector = FaultInjector(
            IIDEventModel(DEL_ONLY),
            FeedbackFaultModel(ack_delay_prob=0.4),
            seed=6,
        )
        proto = ResendProtocol(
            DEL_ONLY, retry_policy=RetryPolicy(ack_timeout_slots=3)
        )
        msg = rng.integers(0, 2, 2000)
        with injector.active():
            run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.fault_count("acks_delayed") > 0
        assert run.fault_count("timeout_slots_waited") >= 3 * run.fault_count(
            "acks_delayed"
        )

    def test_backoff_waits_longer(self, rng):
        def waited(policy):
            injector = FaultInjector(
                IIDEventModel(DEL_ONLY),
                FeedbackFaultModel(ack_loss_prob=0.4),
                seed=8,
            )
            proto = ResendProtocol(DEL_ONLY, retry_policy=policy)
            msg = np.random.default_rng(8).integers(0, 2, 2000)
            with injector.active():
                run = proto.run(msg, np.random.default_rng(9))
            return run.fault_count("timeout_slots_waited")

        assert waited(RetryPolicy(backoff=2.0)) > waited(RetryPolicy(backoff=1.0))

    def test_max_uses_respected(self, rng):
        proto = ResendProtocol(DEL_ONLY, retry_policy=RetryPolicy())
        run = proto.run(rng.integers(0, 2, 1_000_000), rng, max_uses=1500)
        assert run.channel_uses <= 1500
        assert run.degraded  # budget hit mid-message


class TestCounterHardened:
    def test_validation(self):
        with pytest.raises(ValueError):
            CounterProtocol(DEL_INS, resync_interval=0)
        with pytest.raises(ValueError):
            CounterProtocol(DEL_INS, resync_cost_slots=-1)

    def test_desync_recovery_engages(self, rng):
        injector = build_injector("counter_desync", DEL_INS, seed=4)
        proto = CounterProtocol(DEL_INS, bits_per_symbol=2)
        msg = rng.integers(0, 4, 20_000)
        injector.reset()
        with injector.active():
            run = proto.run(msg, rng)
        assert run.symbols_delivered == msg.size
        assert run.degraded
        assert run.fault_count("desyncs_injected") > 0
        assert run.fault_count("resync_epochs") > 0
        assert run.fault_count("desyncs_recovered") > 0
        assert run.fault_count("misaligned_deliveries") > 0

    def test_tighter_resync_reduces_misalignment(self):
        """Shorter epochs repair desync sooner, so fewer deliveries
        happen while the counters disagree."""

        def misaligned(interval):
            injector = build_injector("counter_desync", DEL_INS, seed=4)
            proto = CounterProtocol(
                DEL_INS, bits_per_symbol=2, resync_interval=interval
            )
            msg = np.random.default_rng(4).integers(0, 4, 20_000)
            injector.reset()
            with injector.active():
                run = proto.run(msg, np.random.default_rng(5))
            return run.fault_count("misaligned_deliveries")

        assert misaligned(64) < misaligned(2048)

    def test_resync_costs_sender_slots(self, rng):
        injector = build_injector("counter_desync", DEL_INS, seed=4)
        proto = CounterProtocol(
            DEL_INS, bits_per_symbol=2, resync_interval=256, resync_cost_slots=10
        )
        msg = rng.integers(0, 4, 10_000)
        injector.reset()
        with injector.active():
            run = proto.run(msg, rng)
        epochs = run.fault_count("resync_epochs")
        assert epochs > 0
        # Slot accounting: deletions + transmissions + epoch overhead.
        assert run.sender_slots == run.deletions + run.transmissions + 10 * epochs

    def test_epochs_without_faults_are_clean(self, rng):
        """Explicit resync epochs on a fault-free run cost overhead but
        never flag degradation."""
        proto = CounterProtocol(DEL_INS, bits_per_symbol=2, resync_interval=128)
        msg = rng.integers(0, 4, 5000)
        run = proto.run(msg, rng)
        assert run.fault_count("resync_epochs") > 0
        assert run.fault_count("desyncs_recovered") == 0
        assert not run.degraded


class TestDefaultPathRegression:
    """The fault machinery must not perturb fault-free semantics."""

    def test_counter_run_identical_under_baseline_injector(self):
        """A baseline injector (nominal i.i.d. model, perfect feedback)
        reproduces the uninstrumented run bit for bit."""
        proto = CounterProtocol(DEL_INS, bits_per_symbol=2)
        msg = np.random.default_rng(0).integers(0, 4, 8000)
        plain = proto.run(msg, np.random.default_rng(1))
        injector = build_injector("baseline", DEL_INS, seed=0)
        injector.reset()
        with injector.active():
            faulted = proto.run(msg, np.random.default_rng(1))
        assert np.array_equal(plain.delivered, faulted.delivered)
        assert plain.channel_uses == faulted.channel_uses
        assert plain.sender_slots == faulted.sender_slots
        assert not faulted.degraded

    def test_resend_legacy_path_untouched_without_policy(self):
        """No policy, no injector: the original vectorized-geometric
        sender runs, with empty fault accounting."""
        proto = ResendProtocol(DEL_ONLY)
        msg = np.random.default_rng(2).integers(0, 2, 5000)
        run = proto.run(msg, np.random.default_rng(3))
        assert run.fault_counts == {}
        assert not run.degraded
        assert np.array_equal(run.delivered, msg)

    def test_event_driven_rate_matches_legacy(self):
        """Both sender implementations converge to N(1 - p_d)."""
        msg = np.random.default_rng(4).integers(0, 2, 60_000)
        legacy = ResendProtocol(DEL_ONLY).run(msg, np.random.default_rng(5))
        hardened = ResendProtocol(
            DEL_ONLY, retry_policy=RetryPolicy()
        ).run(msg, np.random.default_rng(6))
        assert hardened.throughput_per_use == pytest.approx(
            legacy.throughput_per_use, rel=0.03
        )
