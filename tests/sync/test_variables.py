"""Figure-1 two-variable handshake."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.variables import HandshakeSimulator, SyncVariable


class TestSyncVariable:
    def test_toggle(self):
        v = SyncVariable()
        assert v.value == 0
        assert v.toggle() == 1
        assert v.toggle() == 0
        assert v.writes == 2

    def test_read_counts(self):
        v = SyncVariable(1)
        assert v.read() == 1
        assert v.reads == 1

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            SyncVariable(2)


class TestHandshake:
    def test_lossless_in_order_delivery(self, rng):
        msg = rng.integers(0, 2, 4000)
        result = HandshakeSimulator(0.5).run(msg, rng)
        assert np.array_equal(result.delivered, msg)

    def test_never_duplicates(self, rng):
        # A message of distinct symbols: duplicates would be visible.
        msg = np.arange(1000) % 2
        result = HandshakeSimulator(0.5).run(msg, rng)
        assert len(result.delivered) == 1000

    def test_wasted_fraction_near_half_for_fair_schedule(self, rng):
        msg = rng.integers(0, 2, 20_000)
        result = HandshakeSimulator(0.5).run(msg, rng)
        # Each symbol needs one send + one receive; with random
        # alternation about half the opportunities are wasted waiting.
        assert result.wasted_fraction == pytest.approx(0.5, abs=0.02)
        assert result.symbols_per_op(1) == pytest.approx(0.25, abs=0.01)

    def test_biased_schedule_wastes_more(self, rng):
        msg = rng.integers(0, 2, 10_000)
        fair = HandshakeSimulator(0.5).run(msg, np.random.default_rng(1))
        biased = HandshakeSimulator(0.9).run(msg, np.random.default_rng(1))
        assert biased.wasted_fraction > fair.wasted_fraction

    def test_ops_accounting(self, rng):
        msg = rng.integers(0, 2, 500)
        result = HandshakeSimulator(0.5).run(msg, rng)
        assert result.total_ops == result.sender_ops + result.receiver_ops
        assert result.useful_ops == 2 * len(result.delivered)

    def test_max_ops_truncation(self, rng):
        msg = rng.integers(0, 2, 100_000)
        result = HandshakeSimulator(0.5).run(msg, rng, max_ops=1000)
        assert result.total_ops <= 1000
        assert len(result.delivered) < 100_000

    def test_rejects_bad_sender_prob(self):
        with pytest.raises(ValueError):
            HandshakeSimulator(0.0)
        with pytest.raises(ValueError):
            HandshakeSimulator(1.0)

    def test_empty_message(self, rng):
        result = HandshakeSimulator(0.5).run(np.array([], dtype=int), rng)
        assert len(result.delivered) == 0
        assert result.wasted_fraction == 0.0

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_no_loss_no_reorder(self, sender_prob, seed):
        rng = np.random.default_rng(seed)
        msg = rng.integers(0, 2, 300)
        result = HandshakeSimulator(sender_prob).run(msg, rng)
        got = result.delivered
        assert np.array_equal(got, msg[: got.size])
