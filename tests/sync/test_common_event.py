"""Common-event-source synchronization (Figures 3-4, §4.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.common_event import (
    CommonEventConfig,
    common_event_rate,
    compare_with_feedback,
    induced_parameters,
    simulate_common_event_channel,
)


class TestConfig:
    def test_valid(self):
        CommonEventConfig(0.0, 0.0)
        CommonEventConfig(0.5, 0.9)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CommonEventConfig(1.0, 0.0)
        with pytest.raises(ValueError):
            CommonEventConfig(-0.1, 0.0)


class TestSimulation:
    def test_perfect_ticks_synchronous(self, rng):
        msg = rng.integers(0, 2, 2000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.0, 0.0), rng
        )
        assert run.deletions == 0
        assert run.insertions == 0
        assert run.transmissions == 2000
        assert np.array_equal(run.delivered, msg)

    def test_sender_misses_cause_insertions(self, rng):
        msg = rng.integers(0, 2, 20_000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.3, 0.0), rng
        )
        assert run.insertions > 0
        assert run.deletions == 0  # receiver reads every tick

    def test_receiver_misses_cause_deletions(self, rng):
        msg = rng.integers(0, 2, 20_000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.0, 0.3), rng
        )
        assert run.deletions > 0
        assert run.insertions == 0  # sender writes every tick

    def test_event_rates_match_miss_probs(self, rng):
        # With sender_miss=s, receiver_miss=r, per tick:
        # deletion ~ write while pending (prev not sampled).
        msg = rng.integers(0, 2, 60_000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.2, 0.2), rng
        )
        params = induced_parameters(run)
        # Sanity: all three event classes occur and sum to 1.
        assert 0.0 < params.deletion < 0.5
        assert 0.0 < params.insertion < 0.5
        assert params.transmission > 0.3

    def test_receiver_sample_count(self, rng):
        msg = rng.integers(0, 2, 5000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.1, 0.1), rng
        )
        assert run.receiver_samples == run.delivered.size

    def test_rejects_out_of_alphabet(self, rng):
        with pytest.raises(ValueError):
            simulate_common_event_channel(
                np.array([0, 5]), CommonEventConfig(0.1, 0.1), rng,
                bits_per_symbol=1,
            )


class TestComparison:
    def test_never_beats_feedback(self, rng):
        for s, r in [(0.0, 0.0), (0.2, 0.2), (0.4, 0.1), (0.1, 0.5)]:
            msg = rng.integers(0, 4, 20_000)
            run = simulate_common_event_channel(
                msg, CommonEventConfig(s, r), rng, bits_per_symbol=2
            )
            comp = compare_with_feedback(run)
            assert comp["ratio"] <= 1.0 + 1e-9

    def test_perfect_ticks_achieve_feedback_bound(self, rng):
        msg = rng.integers(0, 4, 5000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.0, 0.0), rng, bits_per_symbol=2
        )
        comp = compare_with_feedback(run)
        # Synchronous: both are the full 2 bits (per tick / per use).
        assert comp["ratio"] == pytest.approx(1.0, abs=1e-9)

    def test_rate_zero_guard(self, rng):
        msg = rng.integers(0, 2, 100)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(0.0, 0.0), rng
        )
        assert common_event_rate(run) > 0

    def test_empty_run_rejected(self):
        from repro.sync.common_event import CommonEventRun

        empty = CommonEventRun(
            message=np.array([], dtype=int),
            delivered=np.array([], dtype=int),
            ticks=0,
            deletions=0,
            insertions=0,
            transmissions=0,
            bits_per_symbol=1,
        )
        with pytest.raises(ValueError):
            induced_parameters(empty)

    @given(
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_ratio_bounded(self, s, r, seed):
        rng = np.random.default_rng(seed)
        msg = rng.integers(0, 2, 4000)
        run = simulate_common_event_channel(
            msg, CommonEventConfig(s, r), rng
        )
        comp = compare_with_feedback(run)
        assert comp["ratio"] <= 1.0 + 1e-9
