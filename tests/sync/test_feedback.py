"""Feedback protocols: Theorem 3 (resend) and Theorem 5 (counter)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import alpha, converted_insertion_fraction
from repro.core.events import ChannelParameters
from repro.sync.feedback import CounterProtocol, ResendProtocol


class TestResendProtocol:
    def test_rejects_insertions(self):
        with pytest.raises(ValueError):
            ResendProtocol(ChannelParameters.from_rates(0.1, 0.1))

    def test_rejects_noisy_channel(self):
        with pytest.raises(ValueError):
            ResendProtocol(
                ChannelParameters.from_rates(0.1, 0.0, substitution=0.1)
            )

    def test_lossless_delivery(self, rng):
        proto = ResendProtocol(
            ChannelParameters.from_rates(0.4, 0.0), bits_per_symbol=2
        )
        msg = rng.integers(0, 4, 3000)
        run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.symbol_errors == 0

    def test_rate_matches_theorem3(self, rng):
        for pd in (0.0, 0.1, 0.3, 0.6):
            proto = ResendProtocol(
                ChannelParameters.from_rates(pd, 0.0), bits_per_symbol=3
            )
            msg = rng.integers(0, 8, 80_000)
            run = proto.run(msg, rng)
            assert run.throughput_per_use == pytest.approx(
                3 * (1 - pd), rel=0.03
            )

    def test_zero_deletion_one_use_per_symbol(self, rng):
        proto = ResendProtocol(ChannelParameters.from_rates(0.0, 0.0))
        run = proto.run(rng.integers(0, 2, 100), rng)
        assert run.channel_uses == 100
        assert run.deletions == 0

    def test_max_uses_respected(self, rng):
        proto = ResendProtocol(ChannelParameters.from_rates(0.5, 0.0))
        run = proto.run(rng.integers(0, 2, 100_000), rng, max_uses=500)
        assert run.channel_uses <= 500

    def test_all_uses_are_sender_slots(self, rng):
        proto = ResendProtocol(ChannelParameters.from_rates(0.3, 0.0))
        run = proto.run(rng.integers(0, 2, 1000), rng)
        assert run.sender_slots == run.channel_uses

    def test_degenerate_pd_one_requires_budget(self, rng):
        proto = ResendProtocol(ChannelParameters.from_rates(1.0, 0.0))
        with pytest.raises(ValueError):
            proto.run(np.array([0, 1]), rng)
        run = proto.run(np.array([0, 1]), rng, max_uses=64)
        assert run.symbols_delivered == 0
        assert run.channel_uses == 64


class TestCounterProtocol:
    def test_rejects_noisy_channel(self):
        with pytest.raises(ValueError):
            CounterProtocol(
                ChannelParameters.from_rates(0.1, 0.1, substitution=0.5)
            )

    def test_delivered_aligned_with_message(self, rng):
        proto = CounterProtocol(
            ChannelParameters.from_rates(0.2, 0.2), bits_per_symbol=2
        )
        msg = rng.integers(0, 4, 5000)
        run = proto.run(msg, rng)
        assert run.delivered.shape == msg.shape
        # Errors only at insertion positions; correct fraction.
        assert run.symbol_errors <= run.insertions

    def test_substitution_rate_matches_theory(self, rng):
        pd, pi, n = 0.2, 0.15, 3
        proto = CounterProtocol(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=n
        )
        msg = rng.integers(0, 8, 200_000)
        run = proto.run(msg, rng)
        expected = alpha(n) * converted_insertion_fraction(pd, pi)
        assert run.symbol_error_rate == pytest.approx(expected, rel=0.05)

    def test_no_insertions_reduces_to_lossless(self, rng):
        proto = CounterProtocol(ChannelParameters.from_rates(0.3, 0.0))
        msg = rng.integers(0, 2, 2000)
        run = proto.run(msg, rng)
        assert run.symbol_errors == 0
        assert run.insertions == 0

    def test_event_accounting(self, rng):
        proto = CounterProtocol(ChannelParameters.from_rates(0.25, 0.25))
        msg = rng.integers(0, 2, 10_000)
        run = proto.run(msg, rng)
        assert run.channel_uses == run.deletions + run.insertions + run.transmissions
        assert run.sender_slots == run.deletions + run.transmissions
        assert run.symbols_delivered == run.insertions + run.transmissions

    def test_max_uses_truncation(self, rng):
        proto = CounterProtocol(ChannelParameters.from_rates(0.2, 0.2))
        run = proto.run(rng.integers(0, 2, 1_000_000), rng, max_uses=1000)
        assert run.channel_uses <= 1000
        assert run.symbols_delivered < 1_000_000

    @given(
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_throughput_between_bounds(self, pd, pi, seed):
        """Raw symbol throughput per slot is (1-Pd)/(1-Pi) exactly in
        expectation; information rate is below the erasure bound."""
        rng = np.random.default_rng(seed)
        proto = CounterProtocol(
            ChannelParameters.from_rates(pd, pi), bits_per_symbol=1
        )
        msg = rng.integers(0, 2, 20_000)
        run = proto.run(msg, rng)
        expected = (1 - pd) / (1 - pi) if pi < 1 else 0.0
        assert run.throughput_per_slot == pytest.approx(expected, rel=0.1)
