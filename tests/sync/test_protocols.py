"""ProtocolRun records and base-class validation."""

import numpy as np
import pytest

from repro.core.events import ChannelParameters
from repro.sync.protocols import ProtocolRun, SynchronizationProtocol


def make_run(**overrides):
    defaults = dict(
        message=np.array([0, 1, 1, 0]),
        delivered=np.array([0, 1, 0, 0]),
        channel_uses=10,
        sender_slots=8,
        deletions=4,
        insertions=2,
        transmissions=4,
        bits_per_symbol=2,
    )
    defaults.update(overrides)
    return ProtocolRun(**defaults)


class TestProtocolRun:
    def test_symbol_errors(self):
        run = make_run()
        assert run.symbol_errors == 1
        assert run.symbol_error_rate == pytest.approx(0.25)

    def test_throughputs(self):
        run = make_run()
        assert run.throughput_per_use == pytest.approx(2 * 4 / 10)
        assert run.throughput_per_slot == pytest.approx(2 * 4 / 8)

    def test_information_rate_scaling(self):
        run = make_run()
        assert run.information_rate_per_slot(1.5) == pytest.approx(1.5 * 4 / 8)

    def test_zero_uses(self):
        run = make_run(
            channel_uses=0,
            sender_slots=0,
            deletions=0,
            insertions=0,
            transmissions=0,
            delivered=np.array([], dtype=int),
        )
        assert run.throughput_per_use == 0.0
        assert run.throughput_per_slot == 0.0
        assert run.information_rate_per_slot(1.0) == 0.0
        assert run.symbol_error_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_run(sender_slots=20)  # more slots than uses
        with pytest.raises(ValueError):
            make_run(channel_uses=-1)


class TestBaseClass:
    class _Dummy(SynchronizationProtocol):
        def run(self, message, rng, *, max_uses=None):  # pragma: no cover
            raise NotImplementedError

    def test_rejects_substitution_noise(self):
        with pytest.raises(ValueError):
            self._Dummy(
                ChannelParameters.from_rates(0.1, 0.1, substitution=0.2)
            )

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            self._Dummy(
                ChannelParameters.from_rates(0.1, 0.1), bits_per_symbol=0
            )

    def test_message_validation(self):
        proto = self._Dummy(
            ChannelParameters.from_rates(0.1, 0.1), bits_per_symbol=2
        )
        with pytest.raises(ValueError):
            proto._validate_message(np.array([0, 4]))
        with pytest.raises(ValueError):
            proto._validate_message(np.zeros((2, 2), dtype=int))
        out = proto._validate_message([0, 3, 1])
        assert out.dtype == np.int64
