"""Adaptive probe-estimate-transmit sessions."""

import numpy as np
import pytest

from repro.core.events import ChannelParameters
from repro.sync.adaptive import run_adaptive_session


class TestAdaptiveSession:
    def test_end_to_end(self, rng):
        params = ChannelParameters.from_rates(0.06, 0.04)
        session = run_adaptive_session(
            params,
            rng,
            pilot_frames=3,
            pilot_length=150,
            payload_symbols=20_000,
        )
        # The estimate lands in the right region.
        assert session.estimate.deletion_prob == pytest.approx(0.06, abs=0.05)
        assert session.estimate.insertion_prob == pytest.approx(0.04, abs=0.05)
        # Pilot overhead is small relative to the payload.
        assert session.overhead_fraction < 0.1
        # Effective rate approaches the oracle rate.
        assert session.effective_rate > 0.8 * session.oracle_rate

    def test_summary_text(self, rng):
        params = ChannelParameters.from_rates(0.05, 0.0)
        session = run_adaptive_session(
            params, rng, pilot_frames=2, pilot_length=100,
            payload_symbols=5000,
        )
        text = session.summary()
        assert "true channel" in text
        assert "effective rate" in text

    def test_overhead_shrinks_with_payload(self, rng):
        params = ChannelParameters.from_rates(0.05, 0.05)
        small = run_adaptive_session(
            params, np.random.default_rng(1), pilot_frames=2,
            pilot_length=100, payload_symbols=2000,
        )
        large = run_adaptive_session(
            params, np.random.default_rng(2), pilot_frames=2,
            pilot_length=100, payload_symbols=40_000,
        )
        assert large.overhead_fraction < small.overhead_fraction

    def test_rejects_noisy_channel(self, rng):
        with pytest.raises(ValueError):
            run_adaptive_session(
                ChannelParameters.from_rates(0.1, 0.0, substitution=0.1),
                rng,
            )


class TestCountermeasures:
    def test_tradeoff_sweep(self, rng):
        from repro.os_model.countermeasures import fuzzy_scheduler_tradeoff

        points = fuzzy_scheduler_tradeoff(
            (0.0, 0.3, 0.6), rng, message_symbols=4000
        )
        assert len(points) == 3
        # More fuzz -> less covert capacity, fatter delay tail.
        assert points[0].covert_rate_per_quantum > points[-1].covert_rate_per_quantum
        assert points[-1].p99_delay >= points[0].p99_delay
        # Baseline is (near) round-robin: full rate, no events.
        assert points[0].deletion < 0.01
        assert points[0].capacity_reduction < 0.05

    def test_delay_stats(self):
        from repro.os_model.countermeasures import scheduling_delay_stats

        mean, p99 = scheduling_delay_stats([0, 1, 0, 1, 0, 1], pid=1)
        assert mean == 2.0
        assert p99 == 2.0
        with pytest.raises(ValueError):
            scheduling_delay_stats([0, 1], pid=1)
