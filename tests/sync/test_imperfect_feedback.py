"""Alternating-bit protocol over lossy feedback (extension E10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import ChannelParameters
from repro.sync.imperfect_feedback import (
    AlternatingBitProtocol,
    lossy_feedback_capacity,
)


class TestClosedForm:
    def test_reduces_to_theorem3(self):
        assert lossy_feedback_capacity(3, 0.2, 0.0) == pytest.approx(3 * 0.8)

    def test_multiplicative_penalty(self):
        base = lossy_feedback_capacity(2, 0.1, 0.0)
        assert lossy_feedback_capacity(2, 0.1, 0.25) == pytest.approx(0.75 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            lossy_feedback_capacity(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            lossy_feedback_capacity(1, 1.5, 0.1)
        with pytest.raises(ValueError):
            lossy_feedback_capacity(1, 0.1, -0.2)


class TestBoundaries:
    """Exact behaviour at the edges of the ack-loss parameter ``q``."""

    def test_q_zero_recovers_erasure_bound_exactly(self):
        from repro.core.capacity import erasure_upper_bound

        for n in (1, 2, 4, 8):
            for pd in (0.0, 0.1, 0.37, 0.9, 1.0):
                assert lossy_feedback_capacity(n, pd, 0.0) == erasure_upper_bound(
                    n, pd
                )

    def test_q_to_one_drives_rate_to_zero(self):
        rates = [lossy_feedback_capacity(4, 0.1, q) for q in (0.9, 0.99, 0.999)]
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < 0.004
        assert lossy_feedback_capacity(4, 0.1, 1.0) == 0.0

    def test_invalid_q_raises(self):
        for q in (-1e-9, -0.5, 1.0 + 1e-9, 2.0):
            with pytest.raises(ValueError):
                lossy_feedback_capacity(2, 0.1, q)

    def test_protocol_rate_collapses_as_q_approaches_one(self, rng):
        proto = AlternatingBitProtocol(
            ChannelParameters.from_rates(0.1, 0.0), ack_loss_prob=0.98
        )
        run = proto.run(rng.integers(0, 2, 300), rng)
        assert run.throughput_per_use == pytest.approx(
            lossy_feedback_capacity(1, 0.1, 0.98), rel=0.35
        )
        assert run.throughput_per_use < 0.05


class TestProtocol:
    def test_rejects_insertions(self):
        with pytest.raises(ValueError):
            AlternatingBitProtocol(ChannelParameters.from_rates(0.1, 0.1))

    def test_rejects_ack_loss_one(self):
        with pytest.raises(ValueError):
            AlternatingBitProtocol(
                ChannelParameters.from_rates(0.1, 0.0), ack_loss_prob=1.0
            )

    def test_lossless_delivery(self, rng):
        proto = AlternatingBitProtocol(
            ChannelParameters.from_rates(0.3, 0.0),
            bits_per_symbol=2,
            ack_loss_prob=0.3,
        )
        msg = rng.integers(0, 4, 3000)
        run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.symbol_errors == 0

    def test_rate_matches_closed_form(self, rng):
        for pd, q in [(0.0, 0.0), (0.2, 0.0), (0.0, 0.2), (0.3, 0.4)]:
            proto = AlternatingBitProtocol(
                ChannelParameters.from_rates(pd, 0.0),
                bits_per_symbol=2,
                ack_loss_prob=q,
            )
            msg = rng.integers(0, 4, 60_000)
            run = proto.run(msg, rng)
            assert run.throughput_per_use == pytest.approx(
                lossy_feedback_capacity(2, pd, q), rel=0.03
            )

    def test_perfect_case_matches_resend(self, rng):
        """At q = 0 the protocol is exactly the Theorem-3 resend."""
        from repro.sync.feedback import ResendProtocol

        params = ChannelParameters.from_rates(0.25, 0.0)
        msg = rng.integers(0, 2, 80_000)
        alt = AlternatingBitProtocol(params, ack_loss_prob=0.0)
        res = ResendProtocol(params)
        r1 = alt.run(msg, np.random.default_rng(5))
        r2 = res.run(msg, np.random.default_rng(6))
        assert r1.throughput_per_use == pytest.approx(
            r2.throughput_per_use, rel=0.03
        )

    def test_event_accounting(self, rng):
        proto = AlternatingBitProtocol(
            ChannelParameters.from_rates(0.2, 0.0), ack_loss_prob=0.2
        )
        run = proto.run(rng.integers(0, 2, 10_000), rng)
        assert run.channel_uses == run.deletions + run.transmissions
        assert run.transmissions >= run.symbols_delivered  # duplicates

    def test_max_uses(self, rng):
        proto = AlternatingBitProtocol(
            ChannelParameters.from_rates(0.4, 0.0), ack_loss_prob=0.4
        )
        run = proto.run(rng.integers(0, 2, 1_000_000), rng, max_uses=2000)
        assert run.channel_uses <= 2000

    @given(
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_rate_never_exceeds_theorem3(self, pd, q, seed):
        rng = np.random.default_rng(seed)
        proto = AlternatingBitProtocol(
            ChannelParameters.from_rates(pd, 0.0), ack_loss_prob=q
        )
        run = proto.run(rng.integers(0, 2, 20_000), rng)
        assert run.throughput_per_use <= (1 - pd) * 1.05  # MC slack


class TestBlockAck:
    from repro.sync.imperfect_feedback import BlockAckProtocol, block_ack_rate

    def test_rejects_bad_params(self):
        from repro.sync.imperfect_feedback import BlockAckProtocol

        with pytest.raises(ValueError):
            BlockAckProtocol(ChannelParameters.from_rates(0.1, 0.1))
        with pytest.raises(ValueError):
            BlockAckProtocol(
                ChannelParameters.from_rates(0.1, 0.0), block_size=0
            )
        with pytest.raises(ValueError):
            BlockAckProtocol(
                ChannelParameters.from_rates(0.1, 0.0), ack_loss_prob=1.0
            )

    def test_lossless_delivery(self, rng):
        from repro.sync.imperfect_feedback import BlockAckProtocol

        proto = BlockAckProtocol(
            ChannelParameters.from_rates(0.3, 0.0),
            bits_per_symbol=2,
            ack_loss_prob=0.3,
            block_size=16,
        )
        msg = rng.integers(0, 4, 5000)
        run = proto.run(msg, rng)
        assert np.array_equal(run.delivered, msg)
        assert run.symbol_errors == 0

    def test_amortizes_ack_loss(self, rng):
        """Large windows recover (nearly) the Theorem-3 rate despite a
        heavily lossy feedback path — unlike the alternating bit."""
        from repro.sync.imperfect_feedback import (
            AlternatingBitProtocol,
            BlockAckProtocol,
        )

        params = ChannelParameters.from_rates(0.2, 0.0)
        msg = rng.integers(0, 2, 60_000)
        alt = AlternatingBitProtocol(params, ack_loss_prob=0.3)
        blk = BlockAckProtocol(params, ack_loss_prob=0.3, block_size=64)
        r_alt = alt.run(msg, np.random.default_rng(1)).throughput_per_use
        r_blk = blk.run(msg, np.random.default_rng(2)).throughput_per_use
        assert r_blk > r_alt * 1.2
        assert r_blk == pytest.approx(0.8, abs=0.02)  # Theorem 3 ceiling

    def test_rate_improves_with_block_size(self, rng):
        from repro.sync.imperfect_feedback import BlockAckProtocol

        params = ChannelParameters.from_rates(0.2, 0.0)
        msg = rng.integers(0, 2, 40_000)
        rates = []
        for b in (1, 8, 64):
            proto = BlockAckProtocol(params, ack_loss_prob=0.4, block_size=b)
            rates.append(proto.run(msg, np.random.default_rng(b)).throughput_per_use)
        assert rates[0] < rates[1] < rates[2] + 0.02

    def test_closed_form_monotone(self):
        from repro.sync.imperfect_feedback import block_ack_rate

        vals = [block_ack_rate(1, 0.2, 0.4, b) for b in (1, 4, 16, 64)]
        assert vals == sorted(vals)
        assert vals[-1] == pytest.approx(0.8, abs=0.02)
        with pytest.raises(ValueError):
            block_ack_rate(1, 0.2, 0.4, 0)

    def test_max_uses(self, rng):
        from repro.sync.imperfect_feedback import BlockAckProtocol

        proto = BlockAckProtocol(
            ChannelParameters.from_rates(0.4, 0.0),
            ack_loss_prob=0.4,
            block_size=8,
        )
        run = proto.run(rng.integers(0, 2, 1_000_000), rng, max_uses=1500)
        assert run.channel_uses <= 1500
