"""Acceptance: a warm-cache E9-style bounds sweep runs zero solver
iterations.

The cold pass populates the store through the batched sweep's
per-point ``deletion_block_bound_batch`` entries; the warm pass must
answer entirely from cache — no ``solver`` stage appears in the timing
profile, the event counters show hits only, and the rows are
bit-identical. A partially-warm sweep batch-solves only its missing
points.
"""

from repro.bounds.brackets import capacity_bracket_sweep
from repro.numerics import (
    collect_solver_statuses,
    collect_stage_timings,
    collect_store_events,
)
from repro.store import ResultStore, use_store

DELETION_PROBS = (0.05, 0.1, 0.2)
BLOCK_LENGTH = 4


def run_sweep():
    with collect_stage_timings() as timings, collect_store_events() as events:
        with collect_solver_statuses() as statuses:
            rows = capacity_bracket_sweep(
                DELETION_PROBS, block_length=BLOCK_LENGTH
            )
    return rows, dict(timings), dict(events), dict(statuses)


def test_warm_sweep_runs_zero_solver_iterations(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        cold_rows, cold_timings, cold_events, cold_statuses = run_sweep()
        warm_rows, warm_timings, warm_events, warm_statuses = run_sweep()

    # Cold pass actually solved: the solver stage ran and every point
    # was a miss.
    assert "solver" in cold_timings
    assert cold_events.get("deletion_block_bound_batch:miss") == len(
        DELETION_PROBS
    )

    # Warm pass did zero Blahut-Arimoto work: no solver stage at all,
    # pure hits, and the replayed solver statuses match the cold run's.
    assert "solver" not in warm_timings
    assert warm_events.get("deletion_block_bound_batch:hit") == len(
        DELETION_PROBS
    )
    assert "deletion_block_bound_batch:miss" not in warm_events
    assert warm_statuses == cold_statuses

    # And the answers are the same rows, bitwise.
    assert warm_rows == cold_rows


def test_partially_warm_sweep_solves_only_misses(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        capacity_bracket_sweep(DELETION_PROBS[:2], block_length=BLOCK_LENGTH)
        with collect_store_events() as events:
            rows = capacity_bracket_sweep(
                DELETION_PROBS, block_length=BLOCK_LENGTH
            )
    assert events.get("deletion_block_bound_batch:hit") == 2
    assert events.get("deletion_block_bound_batch:miss") == 1
    assert len(rows) == len(DELETION_PROBS)


def test_store_disabled_sweep_is_unaffected(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        cached_rows = capacity_bracket_sweep(
            DELETION_PROBS, block_length=BLOCK_LENGTH
        )
    plain_rows = capacity_bracket_sweep(DELETION_PROBS, block_length=BLOCK_LENGTH)
    assert plain_rows == cached_rows
