"""Canonical-key determinism and collision resistance."""

import dataclasses

import numpy as np
import pytest

from repro.bounds.deletion import BlockBoundResult
from repro.numerics import SolverStatus
from repro.simulation.runner import _SweepTrial
from repro.store import (
    UnsupportedParameterError,
    callable_fingerprint,
    canonical_bytes,
    canonical_key,
    code_fingerprint,
)


def test_dict_order_is_normalized():
    a = canonical_bytes({"x": 1, "y": 2.5, "z": "s"})
    b = canonical_bytes({"z": "s", "y": 2.5, "x": 1})
    assert a == b


def test_scalar_types_do_not_collide():
    encodings = [
        canonical_bytes(v)
        for v in (1, 1.0, True, "1", b"1", None, np.float64(1.0))
    ]
    # int/float/bool/str/bytes/None are all distinct; np.float64 equals
    # the plain float it represents.
    assert encodings[1] == encodings[6]
    distinct = encodings[:6]
    assert len(set(distinct)) == len(distinct)


def test_list_and_tuple_are_interchangeable():
    assert canonical_bytes([1, 2.0, "x"]) == canonical_bytes((1, 2.0, "x"))


def test_nan_is_canonical():
    assert canonical_bytes(float("nan")) == canonical_bytes(np.float64("nan"))
    assert canonical_bytes(float("inf")) != canonical_bytes(float("-inf"))


def test_arrays_key_on_dtype_shape_and_content():
    base = np.arange(6, dtype=np.float64)
    assert canonical_bytes(base) == canonical_bytes(base.copy())
    assert canonical_bytes(base) != canonical_bytes(base.astype(np.float32))
    assert canonical_bytes(base) != canonical_bytes(base.reshape(2, 3))
    bumped = base.copy()
    bumped[3] += 1e-12
    assert canonical_bytes(base) != canonical_bytes(bumped)


def test_dataclass_and_enum_encode():
    result = BlockBoundResult(
        block_length=4,
        max_block_information=1.5,
        iid_block_information=1.4,
        lower_bound=0.2,
        iid_rate=0.35,
        status=SolverStatus.CONVERGED,
    )
    a = canonical_bytes(result)
    assert a == canonical_bytes(dataclasses.replace(result))
    assert a != canonical_bytes(
        dataclasses.replace(result, status=SolverStatus.STALLED)
    )


def test_unsupported_values_raise():
    with pytest.raises(UnsupportedParameterError):
        canonical_bytes(object())
    with pytest.raises(UnsupportedParameterError):
        canonical_bytes({"fn": lambda: None})


def test_canonical_key_sensitivity():
    params = {"args": [1, 0.5], "kwargs": {}}
    base = canonical_key("solver", params)
    assert base == canonical_key("solver", params)
    assert base != canonical_key("other_solver", params)
    assert base != canonical_key("solver", {"args": [1, 0.6], "kwargs": {}})
    assert base != canonical_key("solver", params, code_fingerprint="abc123")


def test_code_fingerprint_tracks_source():
    def f(x):
        return x + 1

    def g(x):
        return x + 2

    assert code_fingerprint(f) == code_fingerprint(f)
    assert code_fingerprint(f) != code_fingerprint(g)


def test_callable_fingerprint_functions_and_sweep_trials():
    def trial(rng, value):
        return {"m": value}

    fp = callable_fingerprint(trial)
    assert fp is not None and fp["kind"] == "function"

    bound = _SweepTrial(trial, 0.25)
    bound_fp = callable_fingerprint(bound)
    assert bound_fp is not None
    assert bound_fp["fields"]["value"] == 0.25
    assert bound_fp["fields"]["trial"] == fp
    # A different swept value changes the fingerprint.
    assert callable_fingerprint(_SweepTrial(trial, 0.5)) != bound_fp


def test_callable_fingerprint_rejects_exotic_callables():
    class Weird:
        def __call__(self):
            return None

    assert callable_fingerprint(Weird()) is None
