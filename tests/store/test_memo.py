"""Memoization semantics: opt-in activation, counters, invalidation."""

import numpy as np
import pytest

from repro.infotheory.blahut_arimoto import blahut_arimoto
from repro.numerics import collect_store_events
from repro.store import (
    ResultStore,
    cached_solve,
    reset_store_counters,
    set_active_store,
    store_counters,
    use_store,
)

BSC = np.array([[0.9, 0.1], [0.1, 0.9]])


@pytest.fixture(autouse=True)
def _fresh_counters():
    from repro.store import memo

    reset_store_counters()
    memo._ACTIVE.clear()  # no leftover explicit handles between tests
    yield
    reset_store_counters()
    memo._ACTIVE.clear()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def make_counting_solver(fn_id, body=None):
    calls = []

    @cached_solve(fn_id)
    def solve(x, *, scale=1.0):
        calls.append(x)
        return {"y": (body or (lambda v: v * 2.0))(x) * scale}

    return solve, calls


def test_no_store_means_pass_through(store):
    solve, calls = make_counting_solver("memo_passthrough")
    assert solve(3.0) == {"y": 6.0}
    assert solve(3.0) == {"y": 6.0}
    assert calls == [3.0, 3.0]  # computed twice: no store, no caching
    assert store_counters() == {}


def test_hit_miss_counters_and_collector(store):
    solve, calls = make_counting_solver("memo_basic")
    with use_store(store):
        with collect_store_events() as events:
            assert solve(3.0) == {"y": 6.0}
            assert solve(3.0) == {"y": 6.0}
            assert solve(4.0, scale=2.0) == {"y": 16.0}
    assert calls == [3.0, 4.0]
    assert store_counters() == {"memo_basic:miss": 2, "memo_basic:hit": 1}
    assert dict(events) == {"memo_basic:miss": 2, "memo_basic:hit": 1}


def test_kwarg_spelling_shares_entries(store):
    solve, calls = make_counting_solver("memo_kwargs")
    with use_store(store):
        solve(1.0, scale=3.0)
        solve(1.0, scale=3.0)
    assert len(calls) == 1


def test_bypass_on_unsupported_parameter(store):
    @cached_solve("memo_bypass")
    def solve(x):
        return {"r": repr(x)}

    with use_store(store):
        solve(object())
    assert store_counters() == {"memo_bypass:bypass": 1}
    assert store.stats().entries == 0


def test_on_hit_callback_replays(store):
    seen = []

    @cached_solve("memo_onhit", on_hit=seen.append)
    def solve(x):
        return x + 1

    with use_store(store):
        assert solve(1) == 2
        assert seen == []  # cold call: no replay
        assert solve(1) == 2
    assert seen == [2]


def test_explicit_none_pins_caching_off(store, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "envstore"))
    solve, calls = make_counting_solver("memo_pinned_off")
    with use_store(None):
        solve(5.0)
        solve(5.0)
    assert calls == [5.0, 5.0]
    assert store_counters() == {}


def test_set_active_store_installs_process_wide_handle(store):
    solve, calls = make_counting_solver("memo_setactive")
    set_active_store(store)
    solve(9.0)
    solve(9.0)
    assert calls == [9.0]


def test_env_var_activates_store(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "envstore"))
    solve, calls = make_counting_solver("memo_env")
    solve(2.0)
    solve(2.0)
    assert calls == [2.0]
    assert ResultStore(tmp_path / "envstore").stats().entries == 1


def test_instance_attrs_share_across_equal_instances(store):
    from dataclasses import dataclass

    calls = []

    @dataclass
    class Model:
        rate: float

        @cached_solve("memo_method", instance_attrs=("rate",))
        def solve(self, x):
            calls.append((self.rate, x))
            return self.rate * x

    with use_store(store):
        assert Model(0.5).solve(4.0) == 2.0
        assert Model(0.5).solve(4.0) == 2.0  # equal params: shared entry
        assert Model(0.25).solve(4.0) == 1.0
    assert calls == [(0.5, 4.0), (0.25, 4.0)]


def test_code_edit_invalidates_entries(store):
    """Regression: two solvers registered under the same fn_id but with
    different source must never serve each other's entries — the code
    fingerprint salts the key."""
    calls = []

    @cached_solve("memo_edit")
    def solve_v1(x):
        calls.append("v1")
        return x * 2

    @cached_solve("memo_edit")
    def solve_v2(x):
        calls.append("v2")
        return x * 3  # the "edited" implementation

    with use_store(store):
        assert solve_v1(5) == 10
        assert solve_v1(5) == 10  # warm
        assert solve_v2(5) == 15  # edited code: recompute, not 10
        assert solve_v2(5) == 15  # warm under the new fingerprint
    assert calls == ["v1", "v2"]
    assert store.stats().entries == 2


def test_corrupt_entry_degrades_to_recompute(store):
    solve, calls = make_counting_solver("memo_corrupt")
    with use_store(store):
        solve(7.0)
        [key] = store.keys()
        (store.path_for(key) / "payload.json").write_text("broken")
        assert solve(7.0) == {"y": 14.0}
    assert calls == [7.0, 7.0]


def test_real_solver_hits_are_bit_identical(store):
    cold = blahut_arimoto(BSC)
    with use_store(store):
        miss = blahut_arimoto(BSC)
        hit = blahut_arimoto(BSC)
    assert miss.capacity == cold.capacity
    assert hit.capacity == cold.capacity
    assert hit.iterations == cold.iterations
    assert hit.status is cold.status
    np.testing.assert_array_equal(
        hit.input_distribution, cold.input_distribution
    )
