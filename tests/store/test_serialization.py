"""Payload codec round-trips and tamper resistance."""

import numpy as np
import pytest

from repro.infotheory.blahut_arimoto import BlahutArimotoResult
from repro.numerics import SolverStatus
from repro.store import SerializationError, decode_value, encode_value
from repro.store.serialization import TAG


def roundtrip(value):
    payload, arrays = encode_value(value)
    return decode_value(payload, arrays)


def test_scalars_and_containers_roundtrip():
    value = {
        "ints": [1, 2, 3],
        "pair": (1.5, "x"),
        "nested": {"flag": True, "nothing": None},
    }
    assert roundtrip(value) == value


def test_nonfinite_floats_roundtrip():
    out = roundtrip({"gap": float("inf"), "bad": float("nan"), "ok": 0.5})
    assert out["gap"] == float("inf")
    assert np.isnan(out["bad"])
    assert out["ok"] == 0.5


def test_arrays_roundtrip_exactly():
    arr = np.linspace(0, 1, 7)
    ints = np.arange(4, dtype=np.int64).reshape(2, 2)
    out = roundtrip({"p": arr, "n": ints})
    np.testing.assert_array_equal(out["p"], arr)
    assert out["p"].dtype == arr.dtype
    np.testing.assert_array_equal(out["n"], ints)


def test_solver_result_dataclass_roundtrip():
    result = BlahutArimotoResult(
        capacity=0.531,
        input_distribution=np.array([0.4, 0.6]),
        iterations=17,
        converged=False,
        gap=float("inf"),
        status=SolverStatus.MAX_ITER,
    )
    out = roundtrip(result)
    assert isinstance(out, BlahutArimotoResult)
    assert out.capacity == result.capacity
    assert out.status is SolverStatus.MAX_ITER
    assert out.gap == float("inf")
    np.testing.assert_array_equal(
        out.input_distribution, result.input_distribution
    )


def test_non_string_key_dicts_roundtrip():
    value = {0.1: "a", 2: "b"}
    assert roundtrip(value) == value


def test_unserializable_value_raises():
    with pytest.raises(SerializationError):
        encode_value(object())


def test_decode_refuses_classes_outside_repro():
    payload = {
        TAG: "dataclass",
        "cls": "subprocess:Popen",
        "fields": {},
    }
    with pytest.raises(SerializationError):
        decode_value(payload, {})


def test_decode_rejects_unknown_tags_and_missing_arrays():
    with pytest.raises(SerializationError):
        decode_value({TAG: "mystery"}, {})
    with pytest.raises(SerializationError):
        decode_value({TAG: "ndarray", "ref": "a0"}, {})
