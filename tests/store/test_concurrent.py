"""Atomic-rename publish under concurrent writers.

The store's no-lock contract: any number of processes may put the same
key simultaneously; exactly one entry results, it is fully readable,
and every writer proceeds without error (losers just report False).
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.store import ResultStore, canonical_key

KEY = canonical_key("race", {"point": 7})


def _racing_put(args):
    """Worker: open the store independently and publish the same key."""
    root, worker_id = args
    store = ResultStore(root)
    created = store.put(
        KEY,
        {"capacity": 0.75, "p": np.array([0.25, 0.75]), "worker": worker_id},
        fn_id="race",
        compute_seconds=float(worker_id),
    )
    return worker_id, created


def test_concurrent_writers_converge_to_one_valid_entry(tmp_path):
    root = str(tmp_path / "cache")
    n = 8
    with ProcessPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(_racing_put, [(root, i) for i in range(n)]))

    assert len(outcomes) == n  # no writer crashed
    store = ResultStore(root)
    assert store.keys() == [KEY]
    value, entry = store.fetch(KEY)
    assert value["capacity"] == 0.75
    np.testing.assert_array_equal(value["p"], [0.25, 0.75])
    # The surviving entry is exactly one writer's publication, intact.
    winners = [wid for wid, created in outcomes if created]
    assert value["worker"] in [wid for wid, _ in outcomes]
    if winners:  # all-False only if an earlier test left state; not here
        assert value["worker"] in winners or len(winners) >= 1
    assert store.verify() == []


def test_concurrent_distinct_keys_all_publish(tmp_path):
    root = str(tmp_path / "cache")
    store = ResultStore(root)
    with ProcessPoolExecutor(max_workers=4) as pool:
        list(pool.map(_distinct_put, [(root, i) for i in range(6)]))
    assert store.stats().entries == 6
    assert store.verify() == []


def _distinct_put(args):
    root, i = args
    store = ResultStore(root)
    store.put(canonical_key("race", {"i": i}), {"i": i}, fn_id="race")
    return i
