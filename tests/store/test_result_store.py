"""ResultStore behaviour: publish, fetch, maintenance, corruption."""

import json

import numpy as np
import pytest

from repro.store import ResultStore, StoreError, canonical_key


def key_for(i):
    return canonical_key("toy", {"i": i})


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def test_put_fetch_roundtrip_with_manifest(store):
    key = key_for(0)
    assert store.put(
        key,
        {"capacity": 0.5, "p": np.array([0.5, 0.5])},
        fn_id="toy",
        code_fingerprint="deadbeef",
        compute_seconds=1.25,
    )
    assert store.contains(key)
    value, entry = store.fetch(key)
    assert value["capacity"] == 0.5
    np.testing.assert_array_equal(value["p"], [0.5, 0.5])
    assert entry.fn_id == "toy"
    assert entry.code_fingerprint == "deadbeef"
    assert entry.compute_seconds == 1.25
    assert entry.nbytes > 0


def test_second_put_is_a_noop(store):
    key = key_for(1)
    assert store.put(key, {"v": 1}, fn_id="toy")
    assert not store.put(key, {"v": 2}, fn_id="toy")
    assert store.get(key) == {"v": 1}


def test_miss_and_default(store):
    assert store.fetch(key_for(2)) is None
    assert store.get(key_for(2), default="fallback") == "fallback"


def test_invalid_keys_are_rejected(store):
    with pytest.raises(StoreError):
        store.path_for("../escape")
    with pytest.raises(StoreError):
        store.path_for("UPPERCASE")
    with pytest.raises(StoreError):
        store.path_for("")


def test_delete_keys_entries_stats(store):
    for i in range(3):
        store.put(key_for(i), {"i": i}, fn_id="toy", compute_seconds=2.0)
    store.put(key_for(99), {"i": 99}, fn_id="other", compute_seconds=1.0)
    assert len(store.keys()) == 4
    stats = store.stats()
    assert stats.entries == 4
    assert stats.entries_by_fn == {"toy": 3, "other": 1}
    assert stats.compute_seconds_by_fn["toy"] == pytest.approx(6.0)
    assert stats.compute_seconds_total == pytest.approx(7.0)
    assert stats.total_bytes > 0
    assert store.delete(key_for(0))
    assert not store.delete(key_for(0))
    assert len(list(store.entries())) == 3


def test_gc_by_age(store):
    store.put(key_for(0), {"v": 0}, fn_id="toy", created_at=100.0)
    store.put(key_for(1), {"v": 1}, fn_id="toy", created_at=900.0)
    evicted = store.gc(max_age_seconds=200.0, now=1000.0, dry_run=True)
    assert evicted == [key_for(0)] or set(evicted) == {key_for(0)}
    assert store.contains(key_for(0))  # dry run deleted nothing
    store.gc(max_age_seconds=200.0, now=1000.0)
    assert not store.contains(key_for(0))
    assert store.contains(key_for(1))


def test_gc_by_size_evicts_least_recently_used(store):
    keys = [key_for(i) for i in range(3)]
    for i, key in enumerate(keys):
        store.put(key, {"v": i, "pad": "x" * 100}, fn_id="toy")
    # Touch entries 1 and 2 so entry 0 is the LRU victim.
    import os

    manifest0 = store.path_for(keys[0]) / "manifest.json"
    os.utime(manifest0, (1.0, 1.0))
    store.fetch(keys[1])
    store.fetch(keys[2])
    per_entry = store.stats().total_bytes // 3
    evicted = store.gc(max_total_bytes=2 * per_entry + per_entry // 2)
    assert keys[0] in evicted
    assert store.contains(keys[1]) and store.contains(keys[2])


def test_gc_collects_corrupt_entries(store):
    key = key_for(5)
    store.put(key, {"v": 5}, fn_id="toy")
    (store.path_for(key) / "manifest.json").write_text("not json")
    assert key in store.gc()
    assert not store.contains(key)


def test_corrupt_payload_reads_as_miss(store):
    key = key_for(6)
    store.put(key, {"v": 6}, fn_id="toy")
    (store.path_for(key) / "payload.json").write_text("{\"truncated\":")
    assert store.fetch(key) is None
    assert store.get(key, default="recompute") == "recompute"


def test_verify_reports_each_corruption(store):
    clean, flipped, missing, undecodable = (key_for(i) for i in range(4))
    for key in (clean, flipped, missing, undecodable):
        store.put(key, {"v": 1, "arr": np.ones(3)}, fn_id="toy")
    assert store.verify() == []

    payload = store.path_for(flipped) / "payload.json"
    payload.write_text(payload.read_text().replace("1", "2", 1))
    (store.path_for(missing) / "arrays.npz").unlink()
    # Consistent re-hash but undecodable content: rewrite payload AND
    # its manifest hash so only the decode step can catch it.
    bad_payload = store.path_for(undecodable) / "payload.json"
    bad_payload.write_text(json.dumps({"__repro__": "mystery"}))
    import hashlib

    manifest_path = store.path_for(undecodable) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["hashes"]["payload.json"] = hashlib.sha256(
        bad_payload.read_bytes()
    ).hexdigest()
    manifest_path.write_text(json.dumps(manifest))

    issues = store.verify()
    problems = {issue.key: issue.problem for issue in issues}
    assert clean not in problems
    assert "hash mismatch" in problems[flipped]
    assert "missing file" in problems[missing]
    assert "does not decode" in problems[undecodable]


def test_store_root_must_be_a_directory(tmp_path):
    rogue = tmp_path / "file"
    rogue.write_text("x")
    with pytest.raises(StoreError):
        ResultStore(rogue)
