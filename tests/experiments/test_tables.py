"""Result containers and table rendering."""

import pytest

from repro.experiments.tables import ExperimentResult, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(
            ["name", "value"],
            [{"name": "alpha", "value": 1.5}, {"name": "b", "value": 2}],
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]
        assert "1.5000" in lines[2]

    def test_missing_cells_blank(self):
        out = format_table(["a", "b"], [{"a": 1}])
        assert out.splitlines()[2].startswith("1")

    def test_float_formats(self):
        out = format_table(["v"], [{"v": 1e-9}, {"v": 12345.6}, {"v": 0.0}])
        assert "1.000e-09" in out
        assert "1.235e+04" in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestExperimentResult:
    def test_summary_contains_everything(self):
        r = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="the claim",
            columns=["a"],
            rows=[{"a": 1}],
            passed=True,
            notes="a note",
        )
        text = r.summary()
        assert "[EX] demo" in text
        assert "PASS" in text
        assert "the claim" in text
        assert "a note" in text

    def test_fail_status(self):
        r = ExperimentResult(
            experiment_id="EX",
            title="demo",
            paper_claim="c",
            columns=["a"],
            passed=False,
        )
        assert "FAIL" in r.summary()
