"""Experiments E1-E9: each runs (with small parameters) and passes."""

import numpy as np
import pytest

from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
from repro.experiments.tables import ExperimentResult


class TestRegistry:
    def test_all_registered(self):
        assert sorted(EXPERIMENTS, key=lambda k: int(k[1:])) == [
            f"E{k}" for k in range(1, 18)
        ]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E42")

    def test_case_insensitive(self):
        result = run_experiment("e4")
        assert result.experiment_id == "E4"


class TestIndividualExperiments:
    """Each experiment, scaled down for test speed, must PASS."""

    def test_e1(self):
        r = run_experiment(
            "E1", num_symbols=15_000, sweep=((0.0, 0.0), (0.2, 0.1))
        )
        assert r.passed, r.summary()

    def test_e2(self):
        r = run_experiment(
            "E2", num_symbols=40_000, deletion_probs=(0.0, 0.2, 0.5)
        )
        assert r.passed, r.summary()
        # Simulated rate within tolerance of N(1-pd) on every row.
        for row in r.rows:
            assert row["rel err"] < 0.02

    def test_e3(self):
        r = run_experiment(
            "E3", num_symbols=60_000, sweep=((0.0, 0.1), (0.15, 0.1))
        )
        assert r.passed, r.summary()

    def test_e4(self):
        r = run_experiment("E4")
        assert r.passed, r.summary()
        # Ratios increase with N for fixed p.
        by_p = {}
        for row in r.rows:
            by_p.setdefault(row["p"], []).append(row["C_lower/C_upper"])
        for ratios in by_p.values():
            assert ratios == sorted(ratios)

    def test_e5(self):
        r = run_experiment("E5")
        assert r.passed, r.summary()

    def test_e6(self):
        r = run_experiment("E6", num_symbols=8000)
        assert r.passed, r.summary()
        for row in r.rows:
            assert row["ratio"] <= 1.0 + 1e-9

    def test_e7(self):
        r = run_experiment("E7", message_symbols=6000)
        assert r.passed, r.summary()

    def test_e8(self):
        r = run_experiment("E8", frames=2, payload_bits=36)
        assert r.passed, r.summary()

    def test_e10(self):
        r = run_experiment("E10", num_symbols=30_000, sweep=((0.1, 0.0), (0.2, 0.3)))
        assert r.passed, r.summary()

    def test_e11(self):
        r = run_experiment("E11", frames=2, iteration_counts=(1, 2))
        assert r.passed, r.summary()

    def test_e14(self):
        r = run_experiment(
            "E14", fuzz_levels=(0.0, 0.4, 0.7), message_symbols=4000
        )
        assert r.passed, r.summary()

    def test_e13(self):
        r = run_experiment(
            "E13", num_symbols=8000, sweep=((0.0, 0.0, 0.0), (0.1, 0.05, 0.1))
        )
        assert r.passed, r.summary()

    def test_e12(self):
        r = run_experiment("E12", deletion_probs=(0.1, 0.4), block_length=6)
        assert r.passed, r.summary()
        assert r.rows[1]["gain (bits)"] > r.rows[0]["gain (bits)"]

    def test_e9(self):
        r = run_experiment("E9", deletion_probs=(0.1, 0.3), block_length=6)
        assert r.passed, r.summary()
        for row in r.rows:
            assert row["best LB"] <= row["erasure UB"]

    def test_e15(self):
        r = run_experiment(
            "E15",
            num_symbols=12_000,
            scenarios=("baseline", "counter_desync", "lossy_ack"),
        )
        assert r.passed, r.summary()
        by_name = {row["scenario"]: row for row in r.rows}
        assert not by_name["baseline"]["degraded"]
        assert by_name["counter_desync"]["degraded"]
        assert by_name["counter_desync"]["recovered"] > 0
        for row in r.rows:
            assert row["rate/use"] <= row["UB N(1-P̂d)"] + 1e-9

    def test_e17(self):
        # The tier-1 agreement gate: full sample size, |C_kNN - C_BA|
        # <= 0.05 bits on every enumerable channel, scheduler rows
        # anchored/monotone. No scaling down — the gate is the claim.
        r = run_experiment("E17")
        assert r.passed, r.summary()
        for row in r.rows:
            if not np.isnan(row["|err| (bits)"]):
                assert row["|err| (bits)"] <= 0.05, row

    def test_e16(self):
        r = run_experiment("E16", max_iter=5_000)
        assert r.passed, r.summary()
        for row in r.rows:
            assert row["finite"]
            assert row["ok"]


class TestRunAll:
    @pytest.mark.slow
    def test_run_all_passes(self):
        results = run_all(seed=1)
        assert len(results) == 17
        for r in results:
            assert isinstance(r, ExperimentResult)
            assert r.passed, r.summary()
