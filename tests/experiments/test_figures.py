"""Figure renderings and ASCII plots."""

import numpy as np
import pytest

from repro.experiments.figures import (
    FIGURES,
    ascii_plot,
    convergence_figure,
    rate_figure,
    render_figure,
)


class TestFigures:
    def test_all_five_present(self):
        assert sorted(FIGURES) == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5])
    def test_render_mentions_module(self, number):
        text = render_figure(number)
        assert f"Figure {number}" in text
        assert "repro." in text  # every figure names its implementation

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            render_figure(6)


class TestAsciiPlot:
    def test_basic_structure(self):
        out = ascii_plot(
            {"linear": [0, 1, 2, 3]}, [0, 1, 2, 3],
            width=20, height=5, x_label="t", y_label="v",
        )
        lines = out.splitlines()
        assert lines[0].startswith("v")
        assert "legend: * linear" in lines[-1]
        assert "t: 0 .. 3" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            {"a": [0.0, 1.0], "b": [1.0, 0.0]}, [0, 1], width=10, height=4
        )
        assert "* a" in out and "o b" in out

    def test_constant_series(self):
        out = ascii_plot({"c": [2.0, 2.0, 2.0]}, [0, 1, 2])
        assert "max=3" in out  # degenerate range widened

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0]}, [0, 1])
        with pytest.raises(ValueError):
            ascii_plot({}, [0, 1])

    def test_extremes_plotted(self):
        out = ascii_plot({"s": [0.0, 10.0]}, [0, 1], width=10, height=4)
        grid_lines = [l for l in out.splitlines() if l.startswith("  |")]
        # Max value on the top row, min on the bottom row.
        assert "*" in grid_lines[0]
        assert "*" in grid_lines[-1]


class TestCurveFigures:
    def test_convergence_figure(self):
        text = convergence_figure(probs=(0.1,), max_n=8)
        assert "eqs. 6-7" in text
        assert "p=0.1" in text

    def test_rate_figure(self):
        text = rate_figure(bits_per_symbol=2, insertion=0.05)
        assert "exact LB" in text and "erasure UB" in text


class TestCliFigures:
    def test_single_figure(self, capsys):
        from repro.cli import main

        assert main(["figures", "3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_all_figures_and_curves(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for k in range(1, 6):
            assert f"Figure {k}" in out
        assert "Convergence" in out
