"""Maximum-likelihood alignment decoder."""

import numpy as np
import pytest

from repro.coding.alignment import MLAlignmentDecoder
from repro.coding.forward_backward import DriftChannelModel


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MLAlignmentDecoder(0.6, 0.5)
        with pytest.raises(ValueError):
            MLAlignmentDecoder(-0.1, 0.1)
        with pytest.raises(ValueError):
            MLAlignmentDecoder(0.1, 0.1, max_drift=0)


class TestCleanStream:
    def test_identity_alignment(self, rng):
        dec = MLAlignmentDecoder(0.05, 0.05)
        bits = rng.integers(0, 2, 60)
        res = dec.decode(bits, bits.astype(float))
        assert np.array_equal(res.decoded, bits)
        assert np.array_equal(res.alignment, np.arange(60))
        assert res.insertions.size == 0

    def test_unknown_positions_read_from_stream(self, rng):
        dec = MLAlignmentDecoder(0.02, 0.02)
        bits = rng.integers(0, 2, 40)
        priors = np.full(40, 0.5)
        res = dec.decode(bits, priors)
        assert np.array_equal(res.decoded, bits)


class TestIndelRecovery:
    def test_single_known_deletion(self):
        dec = MLAlignmentDecoder(0.01, 0.1)
        template = np.array([1, 0, 1, 1, 0], dtype=float)
        received = np.array([1, 0, 1, 0])  # one '1' deleted
        res = dec.decode(received, template)
        assert np.array_equal(res.decoded, [1, 0, 1, 1, 0])
        assert (res.alignment == -1).sum() == 1
        assert res.insertions.size == 0

    def test_single_known_insertion(self):
        dec = MLAlignmentDecoder(0.1, 0.01)
        template = np.array([1.0, 1.0, 1.0, 1.0])
        received = np.array([1, 1, 0, 1, 1])  # stray 0 inserted
        res = dec.decode(received, template)
        assert np.array_equal(res.decoded, [1, 1, 1, 1])
        assert res.insertions.size == 1
        assert received[res.insertions[0]] == 0

    def test_event_counts_match_channel(self, rng):
        ch = DriftChannelModel(0.04, 0.04, max_drift=16)
        dec = MLAlignmentDecoder(0.04, 0.04, substitution_prob=1e-3, max_drift=16)
        bits = rng.integers(0, 2, 150)
        y, events = ch.transmit(bits, rng)
        res = dec.decode(y, bits.astype(float))
        # Counts must reconcile with the observed length difference.
        assert len(res.insertions) - (res.alignment == -1).sum() == y.size - 150

    def test_recovers_most_unknown_bits(self, rng):
        ch = DriftChannelModel(0.03, 0.03, max_drift=16)
        dec = MLAlignmentDecoder(0.03, 0.03, substitution_prob=1e-3, max_drift=16)
        n = 160
        bits = rng.integers(0, 2, n)
        y, _ = ch.transmit(bits, rng)
        known = rng.random(n) < 0.8
        priors = np.where(known, bits.astype(float), 0.5)
        res = dec.decode(y, priors)
        assert (res.decoded[known] == bits[known]).mean() > 0.95
        assert (res.decoded[~known] == bits[~known]).mean() > 0.6

    def test_agrees_with_forward_backward_on_easy_streams(self, rng):
        """On a lightly corrupted stream the MAP alignment and the
        marginal posteriors must make the same hard decisions."""
        ch = DriftChannelModel(0.02, 0.02, max_drift=12)
        viterbi = MLAlignmentDecoder(0.02, 0.02, substitution_prob=1e-3, max_drift=12)
        n = 120
        bits = rng.integers(0, 2, n)
        y, _ = ch.transmit(bits, rng)
        known = rng.random(n) < 0.85
        priors = np.where(known, bits.astype(float), 0.5)
        fb = ch.decode(y, priors)
        map_res = viterbi.decode(y, priors)
        fb_hard = (fb.posteriors > 0.5).astype(int)
        agreement = (fb_hard == map_res.decoded).mean()
        assert agreement > 0.95


class TestValidation:
    def test_rejects_bad_inputs(self):
        dec = MLAlignmentDecoder(0.1, 0.1)
        with pytest.raises(ValueError):
            dec.decode(np.array([0, 2]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            dec.decode(np.array([0, 1]), np.array([1.5, 0.5]))
        with pytest.raises(ValueError):
            dec.decode(np.array([0, 1]), np.array([], dtype=float))

    def test_rejects_excess_drift(self):
        dec = MLAlignmentDecoder(0.1, 0.1, max_drift=2)
        with pytest.raises(ValueError):
            dec.decode(np.zeros(10, dtype=int), np.full(3, 0.5))
