"""Vectorized vs. scalar forward-backward: 1e-12 agreement.

``DriftChannelModel.decode``/``log_likelihood`` are batched-NumPy
kernels; ``decode_reference``/``log_likelihood_reference`` keep the
pre-vectorization position-by-position loops as the oracle. Randomized
``(P_d, P_i, P_s)`` grids must agree to 1e-12 in posterior, likelihood,
and drift-map terms.
"""

import numpy as np
import pytest

from repro.coding.forward_backward import DriftChannelModel
from repro.numerics import collect_stage_timings

TOL = 1e-12


def _random_instance(rng, *, max_drift=10, max_insertions=4):
    pd_ = float(rng.uniform(0.0, 0.3))
    pi_ = float(rng.uniform(0.0, min(0.3, 0.85 - pd_)))
    ps_ = float(rng.uniform(0.0, 0.2))
    model = DriftChannelModel(
        pi_, pd_, ps_, max_drift=max_drift, max_insertions=max_insertions
    )
    n = int(rng.integers(6, 72))
    bits = rng.integers(0, 2, size=n)
    for _ in range(64):
        y, _events = model.transmit(bits, rng)
        if -max_drift <= y.size - n <= max_drift:
            return model, y, n
    pytest.skip("could not sample an in-window frame")


@pytest.mark.parametrize("seed", range(8))
def test_decode_matches_reference_on_random_grids(seed):
    rng = np.random.default_rng(seed)
    model, y, n = _random_instance(rng)
    priors = rng.uniform(0.02, 0.98, size=n)
    vec = model.decode(y, priors)
    ref = model.decode_reference(y, priors)
    np.testing.assert_allclose(vec.posteriors, ref.posteriors, atol=TOL, rtol=0)
    assert abs(vec.log_likelihood - ref.log_likelihood) < TOL * max(
        1.0, abs(ref.log_likelihood)
    )
    np.testing.assert_array_equal(vec.drift_map, ref.drift_map)


@pytest.mark.parametrize("seed", range(8))
def test_log_likelihood_matches_reference(seed):
    rng = np.random.default_rng(100 + seed)
    model, y, n = _random_instance(rng)
    priors = rng.uniform(0.02, 0.98, size=n)
    vec = model.log_likelihood(y, priors)
    ref = model.log_likelihood_reference(y, priors)
    assert abs(vec - ref) < TOL * max(1.0, abs(ref))


def test_decode_consistent_with_own_likelihood():
    rng = np.random.default_rng(42)
    model, y, n = _random_instance(rng)
    priors = np.full(n, 0.5)
    assert abs(
        model.decode(y, priors).log_likelihood
        - model.log_likelihood(y, priors)
    ) < 1e-10


def test_hard_priors_pass_through():
    """Known (0/1-prior) positions keep their hard posteriors."""
    rng = np.random.default_rng(7)
    model = DriftChannelModel(0.05, 0.08, 0.02, max_drift=8)
    bits = rng.integers(0, 2, size=40)
    while True:
        y, _ = model.transmit(bits, rng)
        if -8 <= y.size - 40 <= 8:
            break
    priors = np.where(bits == 1, 1.0, 0.0)
    vec = model.decode(y, priors)
    ref = model.decode_reference(y, priors)
    np.testing.assert_allclose(vec.posteriors, ref.posteriors, atol=TOL, rtol=0)
    np.testing.assert_allclose(vec.posteriors, priors, atol=1e-9)


def test_substitution_free_channel():
    model = DriftChannelModel(0.0, 0.15, 0.0, max_drift=8)
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, size=32)
    while True:
        y, _ = model.transmit(bits, rng)
        if -8 <= y.size - 32 <= 8:
            break
    priors = np.full(32, 0.5)
    vec = model.decode(y, priors)
    ref = model.decode_reference(y, priors)
    np.testing.assert_allclose(vec.posteriors, ref.posteriors, atol=TOL, rtol=0)


def test_decode_records_lattice_stage():
    model = DriftChannelModel(0.05, 0.05, 0.0, max_drift=6)
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, size=16)
    while True:
        y, _ = model.transmit(bits, rng)
        if -6 <= y.size - 16 <= 6:
            break
    with collect_stage_timings() as timing:
        model.decode(y, np.full(16, 0.5))
        model.log_likelihood(y, np.full(16, 0.5))
    assert timing["lattice"] > 0.0


def test_error_paths_match_reference():
    model = DriftChannelModel(0.05, 0.05, 0.0, max_drift=2)
    y = np.zeros(20, dtype=np.int64)
    priors = np.full(4, 0.5)  # final drift 16 >> max_drift
    with pytest.raises(ValueError, match="final drift"):
        model.decode(y, priors)
    with pytest.raises(ValueError, match="final drift"):
        model.decode_reference(y, priors)
