"""Drift forward-backward decoder (Davey-MacKay lattice)."""

import numpy as np
import pytest

from repro.coding.forward_backward import DriftChannelModel


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftChannelModel(0.6, 0.5)
        with pytest.raises(ValueError):
            DriftChannelModel(-0.1, 0.1)
        with pytest.raises(ValueError):
            DriftChannelModel(0.1, 0.1, max_drift=0)
        with pytest.raises(ValueError):
            DriftChannelModel(0.1, 0.1, max_insertions=0)

    def test_pt_computed(self):
        m = DriftChannelModel(0.1, 0.2)
        assert m.pt == pytest.approx(0.7)


class TestTransmit:
    def test_statistics(self, rng):
        m = DriftChannelModel(0.1, 0.2)
        bits = rng.integers(0, 2, 50_000)
        y, events = m.transmit(bits, rng)
        counts = {
            "i": (events == "i").sum(),
            "d": (events == "d").sum(),
            "t": (events == "t").sum(),
        }
        total = sum(counts.values())
        assert counts["i"] / total == pytest.approx(0.1, abs=0.01)
        assert counts["d"] / total == pytest.approx(0.2, abs=0.01)
        assert y.size == counts["i"] + counts["t"]

    def test_noiseless_channel_identity(self, rng):
        m = DriftChannelModel(0.0, 0.0)
        bits = rng.integers(0, 2, 500)
        y, _ = m.transmit(bits, rng)
        assert np.array_equal(y, bits)

    def test_substitutions(self, rng):
        m = DriftChannelModel(0.0, 0.0, substitution_prob=0.25)
        bits = rng.integers(0, 2, 40_000)
        y, _ = m.transmit(bits, rng)
        assert (y != bits).mean() == pytest.approx(0.25, abs=0.01)


class TestDecode:
    def test_known_bits_confident_posteriors(self, rng):
        m = DriftChannelModel(0.05, 0.05, max_drift=12)
        bits = rng.integers(0, 2, 200)
        y, _ = m.transmit(bits, rng)
        res = m.decode(y, bits.astype(float))  # delta priors
        assert res.posteriors.shape == (200,)
        # With delta priors the posteriors collapse onto the priors.
        assert np.allclose(res.posteriors, bits, atol=1e-9)
        assert np.isfinite(res.log_likelihood)

    def test_recovers_unknown_bits(self, rng):
        m = DriftChannelModel(0.04, 0.04, max_drift=12)
        n = 240
        bits = rng.integers(0, 2, n)
        y, _ = m.transmit(bits, rng)
        known = rng.random(n) < 0.75
        priors = np.where(known, bits.astype(float), 0.5)
        res = m.decode(y, priors)
        est = (res.posteriors > 0.5).astype(int)
        err = (est[~known] != bits[~known]).mean()
        assert err < 0.25  # far better than the 0.5 of guessing

    def test_clean_channel_perfect_recovery(self, rng):
        m = DriftChannelModel(0.0, 0.0, max_drift=4)
        bits = rng.integers(0, 2, 100)
        priors = np.full(100, 0.5)
        res = m.decode(bits, priors)
        est = (res.posteriors > 0.5).astype(int)
        assert np.array_equal(est, bits)
        assert np.all(res.drift_map == 0)

    def test_drift_map_tracks_length_difference(self, rng):
        m = DriftChannelModel(insertion_prob=0.05, deletion_prob=0.0, max_drift=24)
        bits = rng.integers(0, 2, 150)
        y, _ = m.transmit(bits, rng)
        res = m.decode(y, bits.astype(float))
        # Insertions only: drift grows to m - n by the end.
        assert res.drift_map[-1] >= 0

    def test_rejects_out_of_window_final_drift(self, rng):
        m = DriftChannelModel(0.1, 0.1, max_drift=2)
        priors = np.full(10, 0.5)
        with pytest.raises(ValueError):
            m.decode(np.zeros(20, dtype=int), priors)  # drift 10 > 2

    def test_input_validation(self, rng):
        m = DriftChannelModel(0.1, 0.1)
        with pytest.raises(ValueError):
            m.decode(np.array([0, 2]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            m.decode(np.array([0, 1]), np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            m.decode(np.array([0, 1]), np.array([], dtype=float))

    def test_log_likelihood_prefers_true_params(self, rng):
        """Model mismatch shows up as lower frame likelihood."""
        true = DriftChannelModel(0.06, 0.06, max_drift=14)
        wrong = DriftChannelModel(0.25, 0.25, max_drift=14)
        bits = rng.integers(0, 2, 300)
        lik_true = 0.0
        lik_wrong = 0.0
        for _ in range(3):
            y, _ = true.transmit(bits, rng)
            lik_true += true.decode(y, bits.astype(float)).log_likelihood
            lik_wrong += wrong.decode(y, bits.astype(float)).log_likelihood
        assert lik_true > lik_wrong
