"""Davey-MacKay watermark codes."""

import numpy as np
import pytest

from repro.coding.forward_backward import DriftChannelModel
from repro.coding.watermark import SparseCodebook, WatermarkCode


class TestSparseCodebook:
    def test_default_shape(self):
        cb = SparseCodebook(3, 7)
        assert cb.words.shape == (8, 7)

    def test_words_are_low_weight(self):
        cb = SparseCodebook(3, 7)
        weights = cb.words.sum(axis=1)
        # 8 lowest-weight 7-bit words: the zero word + seven weight-1.
        assert sorted(weights) == [0, 1, 1, 1, 1, 1, 1, 1]

    def test_mean_density(self):
        cb = SparseCodebook(3, 7)
        assert cb.mean_density == pytest.approx(7 / 56)

    def test_distinct_words(self):
        cb = SparseCodebook(4, 8)
        as_tuples = {tuple(w) for w in cb.words}
        assert len(as_tuples) == 16

    def test_encode_pads(self):
        cb = SparseCodebook(3, 7)
        out = cb.encode(np.array([1, 0]))  # padded to 3 bits
        assert out.size == 7

    def test_encode_rejects_2d(self):
        cb = SparseCodebook(3, 7)
        with pytest.raises(ValueError):
            cb.encode(np.zeros((2, 3), dtype=int))

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseCodebook(0, 7)
        with pytest.raises(ValueError):
            SparseCodebook(5, 3)
        with pytest.raises(ValueError):
            SparseCodebook(9, 8)  # more input bits than output bits

    def test_block_posteriors_normalized(self):
        cb = SparseCodebook(3, 7)
        post = np.full(14, 0.3)
        probs = cb.map_block_posteriors(post)
        assert probs.shape == (2, 8)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_posteriors_peak_at_true_word(self):
        cb = SparseCodebook(3, 7)
        word = cb.words[5].astype(float)
        # Confident posteriors matching word 5.
        post = np.clip(word, 0.02, 0.98)
        probs = cb.map_block_posteriors(post)
        assert int(np.argmax(probs[0])) == 5

    def test_llr_sign(self):
        cb = SparseCodebook(2, 5)
        probs = np.zeros((1, 4))
        probs[0, 0] = 1.0  # symbol 00
        llrs = cb.symbol_bit_llrs(probs)
        assert llrs.shape == (2,)
        assert np.all(llrs > 0)  # both bits are 0 => positive LLR


class TestWatermarkCode:
    def test_frame_geometry(self):
        wc = WatermarkCode(payload_bits=60)
        assert wc.frame_length % 7 == 0
        assert 0 < wc.rate < 1

    def test_encode_shape_and_determinism(self, rng):
        wc = WatermarkCode(payload_bits=24)
        payload = rng.integers(0, 2, 24)
        tx1 = wc.encode(payload)
        tx2 = wc.encode(payload)
        assert np.array_equal(tx1, tx2)
        assert tx1.size == wc.frame_length

    def test_encode_validates_payload(self):
        wc = WatermarkCode(payload_bits=24)
        with pytest.raises(ValueError):
            wc.encode(np.zeros(10, dtype=int))

    def test_watermark_seed_changes_frame(self, rng):
        payload = rng.integers(0, 2, 24)
        a = WatermarkCode(24, watermark_seed=1).encode(payload)
        b = WatermarkCode(24, watermark_seed=2).encode(payload)
        assert not np.array_equal(a, b)

    def test_clean_channel_decodes(self, rng):
        wc = WatermarkCode(payload_bits=36)
        channel = DriftChannelModel(0.0, 0.0, max_drift=4)
        payload = rng.integers(0, 2, 36)
        tx = wc.encode(payload)
        res = wc.decode(tx, channel, true_payload=payload)
        assert res.bit_error_rate == 0.0

    def test_indel_channel_low_ber(self, rng):
        wc = WatermarkCode(payload_bits=48)
        channel = DriftChannelModel(0.02, 0.02, max_drift=12)
        bers = [
            wc.simulate_frame(channel, rng).bit_error_rate for _ in range(4)
        ]
        assert float(np.mean(bers)) < 0.1

    def test_decode_without_truth_returns_none_ber(self, rng):
        wc = WatermarkCode(payload_bits=24)
        channel = DriftChannelModel(0.01, 0.01, max_drift=8)
        tx = wc.encode(rng.integers(0, 2, 24))
        ry, _ = channel.transmit(tx, rng)
        res = wc.decode(ry, channel)
        assert res.bit_error_rate is None
        assert res.payload.shape == (24,)

    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkCode(payload_bits=0)
