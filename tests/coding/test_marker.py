"""Marker codes."""

import numpy as np
import pytest

from repro.coding.convolutional import ConvolutionalCode
from repro.coding.forward_backward import DriftChannelModel
from repro.coding.marker import MarkerCode


class TestGeometry:
    def test_frame_length_accounting(self):
        mc = MarkerCode(20, period=5, marker=(0, 1))
        # 20 payload bits -> 4 marker groups of 2 bits.
        assert mc.frame_length == 20 + 4 * 2
        assert mc.rate == pytest.approx(20 / 28)

    def test_partial_last_group(self):
        mc = MarkerCode(7, period=5, marker=(1,))
        # Groups: 5 + marker, 2 + marker.
        assert mc.frame_length == 7 + 2

    def test_with_outer_code(self):
        outer = ConvolutionalCode((0o7, 0o5))
        mc = MarkerCode(10, period=4, outer=outer)
        coded = (10 + outer.memory) * 2
        markers = (coded + 3) // 4
        assert mc.frame_length == coded + markers * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkerCode(0)
        with pytest.raises(ValueError):
            MarkerCode(10, period=0)
        with pytest.raises(ValueError):
            MarkerCode(10, marker=())
        with pytest.raises(ValueError):
            MarkerCode(10, marker=(0, 2))


class TestEncode:
    def test_markers_in_place(self):
        mc = MarkerCode(6, period=3, marker=(1, 0))
        frame = mc.encode(np.zeros(6, dtype=int))
        # Payload zeros; markers visible at their slots.
        assert frame.size == mc.frame_length
        assert frame.sum() == 2  # two marker groups, each contributing one 1

    def test_payload_recoverable_from_template(self, rng):
        mc = MarkerCode(12, period=4, marker=(0, 0, 1))
        payload = rng.integers(0, 2, 12)
        frame = mc.encode(payload)
        assert np.array_equal(frame[mc._is_payload], payload)

    def test_encode_validates(self):
        mc = MarkerCode(6)
        with pytest.raises(ValueError):
            mc.encode(np.zeros(5, dtype=int))


class TestDecode:
    def test_clean_channel_uncoded(self, rng):
        mc = MarkerCode(30, period=6)
        channel = DriftChannelModel(0.0, 0.0, max_drift=4)
        payload = rng.integers(0, 2, 30)
        res = mc.decode(mc.encode(payload), channel, true_payload=payload)
        assert res.bit_error_rate == 0.0

    def test_indel_channel_with_outer_code(self, rng):
        mc = MarkerCode(48, period=9, outer=ConvolutionalCode((0o23, 0o35)))
        channel = DriftChannelModel(0.02, 0.02, max_drift=12)
        bers = [
            mc.simulate_frame(channel, rng).bit_error_rate for _ in range(4)
        ]
        assert float(np.mean(bers)) < 0.15

    def test_uncoded_worse_than_coded(self, rng):
        """The outer code should reduce BER at the same channel."""
        channel = DriftChannelModel(0.03, 0.03, max_drift=12)
        uncoded = MarkerCode(48, period=9)
        coded = MarkerCode(48, period=9, outer=ConvolutionalCode((0o23, 0o35)))
        r1 = np.mean(
            [uncoded.simulate_frame(channel, rng).bit_error_rate for _ in range(5)]
        )
        r2 = np.mean(
            [coded.simulate_frame(channel, rng).bit_error_rate for _ in range(5)]
        )
        assert r2 <= r1 + 0.02

    def test_decode_returns_drift_map(self, rng):
        mc = MarkerCode(20, period=5)
        channel = DriftChannelModel(0.02, 0.02, max_drift=8)
        res = mc.simulate_frame(channel, rng)
        assert res.drift_map.shape == (mc.frame_length,)
