"""LDPC codes with sum-product decoding."""

import numpy as np
import pytest

from repro.coding.ldpc import (
    LDPCCode,
    make_peg_parity_check,
    make_regular_parity_check,
)


@pytest.fixture
def small_code(rng):
    h = make_peg_parity_check(60, 3, 30, rng)
    return LDPCCode(h)


class TestConstruction:
    def test_regular_weights(self, rng):
        h = make_regular_parity_check(60, 3, 6, rng)
        assert np.all(h.sum(axis=1) == 6)
        assert np.all(h.sum(axis=0) == 3)

    def test_peg_no_four_cycles(self, rng):
        h = make_peg_parity_check(120, 3, 60, rng)
        gram = (h @ h.T).astype(int)
        np.fill_diagonal(gram, 0)
        assert gram.max() <= 1

    def test_peg_column_regular(self, rng):
        h = make_peg_parity_check(90, 3, 45, rng)
        assert np.all(h.sum(axis=0) == 3)

    def test_peg_validation(self, rng):
        with pytest.raises(ValueError):
            make_peg_parity_check(10, 3, 10, rng)  # rate <= 0
        with pytest.raises(ValueError):
            make_peg_parity_check(10, 6, 5, rng)  # weight > checks

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_regular_parity_check(10, 3, 3, rng)  # m >= n
        with pytest.raises(ValueError):
            make_regular_parity_check(10, 3, 4, rng)  # 4 does not divide 10
        with pytest.raises(ValueError):
            make_regular_parity_check(10, 1, 5, rng)

    def test_code_rate_near_half(self, small_code):
        assert small_code.rate == pytest.approx(0.5, abs=0.1)

    def test_rejects_full_rank_square(self):
        with pytest.raises(ValueError):
            LDPCCode(np.eye(4, dtype=int))  # zero rate


class TestEncoding:
    def test_codewords_satisfy_parity(self, small_code, rng):
        for _ in range(5):
            msg = rng.integers(0, 2, small_code.message_length)
            cw = small_code.encode(msg)
            assert not np.any(small_code.syndrome(cw))

    def test_systematic_extraction(self, small_code, rng):
        msg = rng.integers(0, 2, small_code.message_length)
        assert np.array_equal(
            small_code.extract_message(small_code.encode(msg)), msg
        )

    def test_linearity(self, small_code, rng):
        a = rng.integers(0, 2, small_code.message_length)
        b = rng.integers(0, 2, small_code.message_length)
        assert np.array_equal(
            small_code.encode(a) ^ small_code.encode(b),
            small_code.encode(a ^ b),
        )

    def test_shape_validation(self, small_code):
        with pytest.raises(ValueError):
            small_code.encode(np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            small_code.extract_message(np.zeros(3, dtype=int))


class TestDecoding:
    def test_clean_decodes_immediately(self, small_code, rng):
        msg = rng.integers(0, 2, small_code.message_length)
        cw = small_code.encode(msg)
        llr = np.where(cw == 0, 4.0, -4.0)
        decoded, converged = small_code.decode(llr)
        assert converged
        assert np.array_equal(decoded, cw)

    def test_bsc_error_correction(self, rng):
        h = make_peg_parity_check(240, 3, 120, rng)
        code = LDPCCode(h)
        p = 0.03
        scale = np.log((1 - p) / p)
        failures = 0
        for _ in range(5):
            msg = rng.integers(0, 2, code.message_length)
            cw = code.encode(msg)
            noisy = cw ^ (rng.random(cw.size) < p)
            llr = np.where(noisy == 0, scale, -scale)
            decoded, converged = code.decode(llr)
            if not (converged and np.array_equal(decoded, cw)):
                failures += 1
        assert failures <= 1

    def test_erasure_fill_in(self, small_code, rng):
        """Zero-LLR (erased) positions recoverable from parity."""
        msg = rng.integers(0, 2, small_code.message_length)
        cw = small_code.encode(msg)
        llr = np.where(cw == 0, 5.0, -5.0).astype(float)
        erased = rng.choice(cw.size, size=5, replace=False)
        llr[erased] = 0.0
        decoded, converged = small_code.decode(llr)
        assert converged
        assert np.array_equal(decoded, cw)

    def test_llr_shape_validated(self, small_code):
        with pytest.raises(ValueError):
            small_code.decode(np.zeros(3))

    def test_hopeless_input_reports_nonconverged(self, small_code, rng):
        llr = rng.normal(0, 0.1, small_code.block_length)
        _decoded, converged = small_code.decode(llr, max_iterations=5)
        # Random soup rarely satisfies parity in 5 iterations.
        assert isinstance(converged, bool)
