"""Convolutional codes and Viterbi decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.convolutional import NASA_CC_GENERATORS, ConvolutionalCode


class TestConstruction:
    def test_default_generators(self):
        cc = ConvolutionalCode()
        assert cc.generators == NASA_CC_GENERATORS
        assert cc.constraint_length == 7
        assert cc.num_states == 64
        assert cc.rate_denominator == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(())
        with pytest.raises(ValueError):
            ConvolutionalCode((0,))
        with pytest.raises(ValueError):
            ConvolutionalCode((1,))  # constraint length 1


class TestEncoding:
    def test_length_with_termination(self):
        cc = ConvolutionalCode((0o7, 0o5))
        out = cc.encode(np.array([1, 0, 1]))
        assert out.size == (3 + cc.memory) * 2

    def test_known_k3_sequence(self):
        # (7,5) code, input [1]: standard first-branch output 11,
        # flush 10 11.
        cc = ConvolutionalCode((0o7, 0o5))
        out = cc.encode(np.array([1]))
        assert list(out) == [1, 1, 1, 0, 1, 1]

    def test_zero_input_zero_output(self):
        cc = ConvolutionalCode((0o7, 0o5))
        assert not np.any(cc.encode(np.zeros(10, dtype=int)))

    def test_linearity(self, rng):
        cc = ConvolutionalCode((0o7, 0o5))
        a = rng.integers(0, 2, 40)
        b = rng.integers(0, 2, 40)
        assert np.array_equal(
            cc.encode(a) ^ cc.encode(b), cc.encode(a ^ b)
        )

    def test_rejects_non_binary(self):
        cc = ConvolutionalCode((0o7, 0o5))
        with pytest.raises(ValueError):
            cc.encode(np.array([0, 2]))
        with pytest.raises(ValueError):
            cc.encode(np.zeros((2, 2), dtype=int))


class TestViterbi:
    @pytest.mark.parametrize("gens", [(0o7, 0o5), (0o23, 0o35), NASA_CC_GENERATORS])
    def test_noiseless_roundtrip(self, gens, rng):
        cc = ConvolutionalCode(gens)
        bits = rng.integers(0, 2, 200)
        assert np.array_equal(cc.decode_hard(cc.encode(bits)), bits)

    def test_corrects_isolated_errors(self, rng):
        cc = ConvolutionalCode((0o23, 0o35))
        bits = rng.integers(0, 2, 100)
        coded = cc.encode(bits)
        coded[10] ^= 1
        coded[50] ^= 1
        coded[120] ^= 1
        assert np.array_equal(cc.decode_hard(coded), bits)

    def test_bsc_performance(self, rng):
        cc = ConvolutionalCode()
        bits = rng.integers(0, 2, 2000)
        coded = cc.encode(bits)
        noisy = coded ^ (rng.random(coded.size) < 0.04)
        decoded = cc.decode_hard(noisy.astype(int))
        assert (decoded != bits).mean() < 0.01

    def test_soft_beats_wrong_hard_decisions(self, rng):
        """Erasure-like LLRs (zeros) on corrupted bits decode cleanly."""
        cc = ConvolutionalCode((0o23, 0o35))
        bits = rng.integers(0, 2, 100)
        coded = cc.encode(bits)
        llrs = 1.0 - 2.0 * coded.astype(float)
        # Erase 15% of positions (no information).
        erase = rng.random(llrs.size) < 0.15
        llrs[erase] = 0.0
        assert np.array_equal(cc.viterbi_decode(llrs), bits)

    def test_unterminated_mode(self, rng):
        cc = ConvolutionalCode((0o7, 0o5))
        bits = rng.integers(0, 2, 60)
        state = 0
        # Encode without termination by trimming flush output.
        coded_full = cc.encode(bits, terminate=False)
        decoded = cc.viterbi_decode(
            1.0 - 2.0 * coded_full.astype(float), terminated=False
        )
        # All but the last few bits should be recovered.
        assert np.array_equal(decoded[:-5], bits[:-5])

    def test_length_validation(self):
        cc = ConvolutionalCode((0o7, 0o5))
        with pytest.raises(ValueError):
            cc.viterbi_decode(np.zeros(7))  # not a multiple of 2
        with pytest.raises(ValueError):
            cc.viterbi_decode(np.zeros(2))  # shorter than flush

    def test_decode_hard_validates_bits(self):
        cc = ConvolutionalCode((0o7, 0o5))
        with pytest.raises(ValueError):
            cc.decode_hard(np.array([0, 2, 1, 0, 1, 0]))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        cc = ConvolutionalCode((0o23, 0o35))
        bits = rng.integers(0, 2, rng.integers(1, 80))
        assert np.array_equal(cc.decode_hard(cc.encode(bits)), bits)
