"""Interleavers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.interleaver import BlockInterleaver, RandomInterleaver


class TestBlockInterleaver:
    def test_roundtrip(self, rng):
        il = BlockInterleaver(4, 5)
        data = rng.integers(0, 2, 20)
        assert np.array_equal(il.deinterleave(il.interleave(data)), data)

    def test_known_pattern(self):
        il = BlockInterleaver(2, 3)
        data = np.arange(6)
        # Row-in [[0,1,2],[3,4,5]], column-out 0,3,1,4,2,5.
        assert list(il.interleave(data)) == [0, 3, 1, 4, 2, 5]

    def test_burst_dispersion(self):
        il = BlockInterleaver(5, 10)
        data = np.zeros(50, dtype=int)
        out = il.interleave(data.copy())
        # Mark a burst in the interleaved domain and bring it back.
        out[:5] = 1
        back = il.deinterleave(out)
        positions = np.nonzero(back)[0]
        assert positions.size == 5
        assert np.diff(positions).min() >= 5  # spread apart

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0, 5)
        il = BlockInterleaver(2, 3)
        with pytest.raises(ValueError):
            il.interleave(np.zeros(5))
        with pytest.raises(ValueError):
            il.deinterleave(np.zeros(7))


class TestRandomInterleaver:
    def test_roundtrip(self, rng):
        il = RandomInterleaver(64, seed=3)
        data = rng.integers(0, 256, 64)
        assert np.array_equal(il.deinterleave(il.interleave(data)), data)

    def test_is_permutation(self):
        il = RandomInterleaver(100, seed=1)
        out = il.interleave(np.arange(100))
        assert sorted(out) == list(range(100))

    def test_seed_determinism(self):
        a = RandomInterleaver(32, seed=9).interleave(np.arange(32))
        b = RandomInterleaver(32, seed=9).interleave(np.arange(32))
        c = RandomInterleaver(32, seed=10).interleave(np.arange(32))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25)
    def test_property_roundtrip(self, length, seed):
        il = RandomInterleaver(length, seed=seed)
        data = np.arange(length)
        assert np.array_equal(il.deinterleave(il.interleave(data)), data)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomInterleaver(0)
