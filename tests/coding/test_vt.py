"""Varshamov-Tenengolts single-deletion codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.vt import VTCode, is_vt_codeword, vt_codewords, vt_syndrome


class TestSyndrome:
    def test_known_values(self):
        assert vt_syndrome(np.array([0, 0, 0])) == 0
        assert vt_syndrome(np.array([1, 0, 0])) == 1
        assert vt_syndrome(np.array([0, 1, 1])) == (2 + 3) % 4

    def test_validation(self):
        with pytest.raises(ValueError):
            vt_syndrome(np.array([0, 2]))
        with pytest.raises(ValueError):
            vt_syndrome(np.zeros((2, 2), dtype=int))


class TestEnumeration:
    def test_membership(self):
        for cw in vt_codewords(6, 0):
            assert is_vt_codeword(cw, 0)

    def test_partition_of_space(self):
        """The VT classes a = 0..n partition {0,1}^n."""
        n = 7
        total = sum(vt_codewords(n, a).shape[0] for a in range(n + 1))
        assert total == 2**n

    def test_vt0_is_largest_or_tied(self):
        n = 8
        sizes = [vt_codewords(n, a).shape[0] for a in range(n + 1)]
        assert sizes[0] == max(sizes)

    def test_known_size(self):
        # |VT_0(n)| >= 2^n / (n+1); exact for small n known values.
        assert vt_codewords(4, 0).shape[0] == 4
        assert vt_codewords(5, 0).shape[0] == 6


class TestVTCode:
    def test_rate_and_size(self):
        code = VTCode(8)
        assert code.size == 30
        assert code.message_bits == 4
        assert 0 < code.rate < 1

    def test_encode_decode_index_roundtrip(self):
        code = VTCode(7)
        for k in range(code.size):
            assert code.decode_index(code.encode_index(k)) == k

    def test_encode_index_range_check(self):
        code = VTCode(6)
        with pytest.raises(ValueError):
            code.encode_index(code.size)
        with pytest.raises(ValueError):
            code.encode_index(-1)

    def test_decode_index_rejects_noncodeword(self):
        code = VTCode(6, 0)
        bad = np.array([1, 0, 0, 0, 0, 0])  # syndrome 1
        with pytest.raises(ValueError):
            code.decode_index(bad)

    @pytest.mark.parametrize("n,a", [(6, 0), (8, 0), (9, 3), (11, 0)])
    def test_exhaustive_single_deletion_correction(self, n, a):
        code = VTCode(n, a)
        for k in range(code.size):
            cw = code.encode_index(k)
            for pos in range(n):
                received = np.delete(cw, pos)
                assert code.decode(received) == k

    def test_decode_full_length_word(self):
        code = VTCode(8)
        cw = code.encode_index(3)
        assert code.decode(cw) == 3

    def test_decode_rejects_wrong_length(self):
        code = VTCode(8)
        with pytest.raises(ValueError):
            code.decode(np.zeros(5, dtype=int))

    def test_correct_deletion_validates(self):
        code = VTCode(8)
        with pytest.raises(ValueError):
            code.correct_deletion(np.zeros(8, dtype=int))  # wrong length
        with pytest.raises(ValueError):
            code.correct_deletion(np.array([0, 1, 2, 0, 0, 0, 0]))

    @given(
        st.integers(min_value=5, max_value=14),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_deletion_corrected(self, n, seed):
        rng = np.random.default_rng(seed)
        code = VTCode(n, 0)
        k = int(rng.integers(0, code.size))
        cw = code.encode_index(k)
        pos = int(rng.integers(0, n))
        assert code.decode(np.delete(cw, pos)) == k

    def test_validation(self):
        with pytest.raises(ValueError):
            VTCode(1)
        with pytest.raises(ValueError):
            VTCode(25)
