"""Zigangirov-style sequential (stack) decoding."""

import numpy as np
import pytest

from repro.coding.convolutional import ConvolutionalCode
from repro.coding.forward_backward import DriftChannelModel
from repro.coding.stack_decoder import StackDecoder


@pytest.fixture
def code():
    return ConvolutionalCode((0o23, 0o35))


class TestConstruction:
    def test_validation(self, code):
        with pytest.raises(ValueError):
            StackDecoder(code, insertion_prob=0.6, deletion_prob=0.5)
        with pytest.raises(ValueError):
            StackDecoder(code, insertion_prob=-0.1, deletion_prob=0.1)

    def test_default_bias_is_rate(self, code):
        dec = StackDecoder(code, insertion_prob=0.01, deletion_prob=0.01)
        assert dec.bias == pytest.approx(0.5)


class TestDecoding:
    def test_clean_channel(self, code, rng):
        dec = StackDecoder(
            code, insertion_prob=0.01, deletion_prob=0.01,
            substitution_prob=1e-3,
        )
        bits = rng.integers(0, 2, 40)
        result = dec.decode(code.encode(bits), 40)
        assert result.completed
        assert np.array_equal(result.payload, bits)

    def test_indel_channel(self, code, rng):
        channel = DriftChannelModel(0.01, 0.01)
        dec = StackDecoder(
            code,
            insertion_prob=0.01,
            deletion_prob=0.01,
            substitution_prob=1e-3,
            max_nodes=150_000,
        )
        successes = 0
        for _ in range(5):
            bits = rng.integers(0, 2, 48)
            ry, _ = channel.transmit(code.encode(bits), rng)
            result = dec.decode(ry, 48)
            if result.completed and np.array_equal(result.payload, bits):
                successes += 1
        assert successes >= 4

    def test_budget_exhaustion_graceful(self, code, rng):
        dec = StackDecoder(
            code,
            insertion_prob=0.05,
            deletion_prob=0.05,
            substitution_prob=1e-3,
            max_nodes=20,
        )
        bits = rng.integers(0, 2, 60)
        channel = DriftChannelModel(0.08, 0.08)
        ry, _ = channel.transmit(code.encode(bits), rng)
        result = dec.decode(ry, 60)
        assert result.payload.shape == (60,)
        assert result.nodes_expanded <= 20
        assert not result.completed

    def test_metric_is_finite_on_success(self, code, rng):
        dec = StackDecoder(
            code, insertion_prob=0.02, deletion_prob=0.02,
            substitution_prob=1e-3,
        )
        bits = rng.integers(0, 2, 30)
        result = dec.decode(code.encode(bits), 30)
        assert np.isfinite(result.metric)

    def test_effort_grows_with_noise(self, code, rng):
        """More channel events -> more tree nodes explored."""
        quiet = DriftChannelModel(0.005, 0.005)
        loud = DriftChannelModel(0.05, 0.05)
        dq = StackDecoder(
            code, insertion_prob=0.005, deletion_prob=0.005,
            substitution_prob=1e-3,
        )
        dl = StackDecoder(
            code, insertion_prob=0.05, deletion_prob=0.05,
            substitution_prob=1e-3,
        )
        nodes_q = nodes_l = 0
        for _ in range(4):
            bits = rng.integers(0, 2, 40)
            yq, _ = quiet.transmit(code.encode(bits), rng)
            yl, _ = loud.transmit(code.encode(bits), rng)
            nodes_q += dq.decode(yq, 40).nodes_expanded
            nodes_l += dl.decode(yl, 40).nodes_expanded
        assert nodes_l > nodes_q

    def test_input_validation(self, code, rng):
        dec = StackDecoder(code, insertion_prob=0.01, deletion_prob=0.01)
        with pytest.raises(ValueError):
            dec.decode(np.zeros((2, 2), dtype=int), 4)
        with pytest.raises(ValueError):
            dec.decode(np.zeros(10, dtype=int), 0)
