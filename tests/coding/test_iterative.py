"""Iterative watermark/LDPC decoding (extension E11)."""

import numpy as np
import pytest

from repro.coding.forward_backward import DriftChannelModel
from repro.coding.iterative import IterativeWatermarkCode


@pytest.fixture(scope="module")
def code():
    return IterativeWatermarkCode()


class TestGeometry:
    def test_frame_and_rate(self, code):
        assert code.payload_bits == code.ldpc.message_length
        assert code.frame_length % code.codebook.bits_out == 0
        assert 0 < code.rate < 1

    def test_encode_shape(self, code, rng):
        tx = code.encode(rng.integers(0, 2, code.payload_bits))
        assert tx.shape == (code.frame_length,)

    def test_encode_validates(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(3, dtype=int))

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            IterativeWatermarkCode(damping=0.0)


class TestDecoding:
    def test_clean_channel_one_iteration(self, code, rng):
        channel = DriftChannelModel(0.0, 0.0, max_drift=4)
        payload = rng.integers(0, 2, code.payload_bits)
        tx = code.encode(payload)
        result = code.decode(tx, channel, iterations=1, true_payload=payload)
        assert result.bit_error_rate == 0.0
        assert result.converged

    def test_converged_stops_early(self, code, rng):
        channel = DriftChannelModel(0.0, 0.0, max_drift=4)
        payload = rng.integers(0, 2, code.payload_bits)
        result = code.decode(
            code.encode(payload), channel, iterations=5, true_payload=payload
        )
        assert result.iterations_run == 1

    def test_iterations_do_not_hurt(self, code):
        """Paired frames: more iterations never raise the mean BER."""
        channel = DriftChannelModel(0.035, 0.035, max_drift=16)
        def mean_ber(iters):
            bers = []
            for k in range(4):
                rng = np.random.default_rng(1000 + k)
                result = code.simulate_frame(channel, rng, iterations=iters)
                bers.append(result.bit_error_rate)
            return float(np.mean(bers))

        assert mean_ber(3) <= mean_ber(1) + 1e-9

    def test_decode_without_truth(self, code, rng):
        channel = DriftChannelModel(0.02, 0.02, max_drift=12)
        tx = code.encode(rng.integers(0, 2, code.payload_bits))
        ry, _ = channel.transmit(tx, rng)
        result = code.decode(ry, channel, iterations=2)
        assert result.bit_error_rate is None
        assert result.payload.shape == (code.payload_bits,)

    def test_iterations_validation(self, code, rng):
        channel = DriftChannelModel(0.01, 0.01)
        with pytest.raises(ValueError):
            code.decode(np.zeros(10, dtype=int), channel, iterations=0)

    def test_per_iteration_ber_recorded(self, code, rng):
        channel = DriftChannelModel(0.03, 0.03, max_drift=16)
        result = code.simulate_frame(channel, rng, iterations=3)
        assert 1 <= len(result.per_iteration_ber) <= 3
