"""Channel parameter identification from pilots."""

import numpy as np
import pytest

from repro.coding.forward_backward import DriftChannelModel
from repro.coding.identification import estimate_channel_parameters


def _make_pilots(pi, pd, *, count, length, seed):
    rng = np.random.default_rng(seed)
    channel = DriftChannelModel(pi, pd, max_drift=32)
    pilots, received = [], []
    for _ in range(count):
        bits = rng.integers(0, 2, length)
        y, _ = channel.transmit(bits, rng)
        pilots.append(bits)
        received.append(y)
    return pilots, received


class TestEstimation:
    def test_recovers_parameters(self):
        pilots, received = _make_pilots(0.06, 0.03, count=4, length=200, seed=2)
        est = estimate_channel_parameters(
            pilots, received, grid=(0.02, 0.06, 0.12)
        )
        assert est.insertion_prob == pytest.approx(0.06, abs=0.04)
        assert est.deletion_prob == pytest.approx(0.03, abs=0.04)
        assert np.isfinite(est.log_likelihood)

    def test_clean_channel_estimates_near_zero(self):
        pilots, received = _make_pilots(0.0, 0.0, count=2, length=150, seed=3)
        est = estimate_channel_parameters(
            pilots, received, grid=(0.01, 0.05)
        )
        assert est.insertion_prob < 0.02
        assert est.deletion_prob < 0.02

    def test_asymmetric_channel_ranked_correctly(self):
        """Heavy deletions, no insertions: the estimate must reflect
        the asymmetry even if the exact values are noisy."""
        pilots, received = _make_pilots(0.0, 0.12, count=4, length=200, seed=4)
        est = estimate_channel_parameters(
            pilots, received, grid=(0.01, 0.05, 0.12)
        )
        assert est.deletion_prob > est.insertion_prob + 0.03

    def test_likelihood_at_truth_not_worse(self):
        """The ML estimate's likelihood must be >= the truth's (it is
        the maximizer)."""
        from repro.coding.identification import _total_log_likelihood

        pilots, received = _make_pilots(0.05, 0.05, count=3, length=200, seed=5)
        est = estimate_channel_parameters(
            pilots, received, grid=(0.02, 0.05, 0.1)
        )
        truth_ll = _total_log_likelihood(
            0.05, 0.05, pilots, received, 1e-3, 24
        )
        assert est.log_likelihood >= truth_ll - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_channel_parameters([], [])
        with pytest.raises(ValueError):
            estimate_channel_parameters([np.zeros(5, dtype=int)], [])

    def test_auto_drift_window_covers_pilots(self):
        """A pilot with a large length difference must not poison the
        search (regression: fixed window used to penalize everything)."""
        pilots, received = _make_pilots(0.12, 0.0, count=3, length=220, seed=6)
        est = estimate_channel_parameters(
            pilots, received, grid=(0.02, 0.1)
        )
        assert est.insertion_prob > 0.05
