"""Statistical helpers."""

import numpy as np
import pytest

from repro.simulation.stats import (
    ConfidenceInterval,
    RunningStats,
    mean_confidence_interval,
    wilson_interval,
)


class TestMeanCI:
    def test_contains_true_mean_typically(self, rng):
        hits = 0
        for k in range(60):
            samples = rng.normal(5.0, 1.0, 40)
            ci = mean_confidence_interval(samples, confidence=0.95)
            hits += ci.contains(5.0)
        assert hits >= 50  # ~95% coverage

    def test_constant_samples(self):
        ci = mean_confidence_interval([3.0, 3.0, 3.0])
        assert ci.lower == ci.upper == 3.0
        assert ci.half_width == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)


class TestWilson:
    def test_half_proportion(self):
        ci = wilson_interval(50, 100)
        assert ci.estimate == 0.5
        assert ci.lower < 0.5 < ci.upper

    def test_zero_successes_lower_is_zero(self):
        ci = wilson_interval(0, 100)
        assert ci.lower == 0.0
        assert ci.upper > 0.0

    def test_all_successes_upper_is_one(self):
        ci = wilson_interval(100, 100)
        assert ci.upper == 1.0
        assert ci.lower < 1.0

    def test_more_trials_narrower(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert narrow.half_width < wide.half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=0.0)


class TestRunningStats:
    def test_matches_numpy(self, rng):
        xs = rng.normal(2.0, 3.0, 1000)
        rs = RunningStats()
        rs.extend(xs)
        assert rs.count == 1000
        assert rs.mean == pytest.approx(xs.mean())
        assert rs.variance == pytest.approx(xs.var(ddof=1))
        assert rs.std == pytest.approx(xs.std(ddof=1))

    def test_ci_matches_batch(self, rng):
        xs = rng.normal(0, 1, 200)
        rs = RunningStats()
        rs.extend(xs)
        ci_running = rs.confidence_interval()
        ci_batch = mean_confidence_interval(xs)
        assert ci_running.lower == pytest.approx(ci_batch.lower)
        assert ci_running.upper == pytest.approx(ci_batch.upper)

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean
        rs.push(1.0)
        with pytest.raises(ValueError):
            _ = rs.variance
