"""RNG streams, the experiment runner, and empirical MI estimation."""

import numpy as np
import pytest

from repro.infotheory.channels import bsc_capacity
from repro.infotheory.dmc import DiscreteMemorylessChannel
from repro.simulation.mutual_information import (
    joint_histogram,
    miller_madow_correction,
    per_position_mutual_information,
    plugin_mutual_information,
)
from repro.simulation.rng import RngFactory, make_rng
from repro.simulation.runner import ExperimentRunner


class TestRng:
    def test_make_rng_accepts_variants(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g
        assert isinstance(make_rng(5), np.random.Generator)
        assert isinstance(make_rng(None), np.random.Generator)

    def test_factory_deterministic(self):
        a = RngFactory(7).stream("channel").random(5)
        b = RngFactory(7).stream("channel").random(5)
        assert np.array_equal(a, b)

    def test_factory_streams_independent(self):
        f = RngFactory(7)
        a = f.stream("a").random(5)
        b = f.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        f1 = RngFactory(3)
        f1.stream("x")
        y_after = f1.stream("y").random(3)
        f2 = RngFactory(3)
        y_first = f2.stream("y").random(3)
        assert np.array_equal(y_after, y_first)

    def test_stream_cached(self):
        f = RngFactory(1)
        assert f.stream("s") is f.stream("s")

    def test_fresh_restarts(self):
        f = RngFactory(1)
        a = f.stream("s").random(3)
        b = f.fresh("s").random(3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            RngFactory(0).stream("")


class TestRunner:
    def test_aggregates_metrics(self):
        runner = ExperimentRunner(root_seed=0, replications=5)
        out = runner.run(lambda rng: {"x": float(rng.random())})
        assert out["x"].replications == 5
        assert 0 <= out["x"].mean <= 1

    def test_reproducible(self):
        def trial(rng):
            return {"v": float(rng.random())}

        a = ExperimentRunner(root_seed=9, replications=4).run(trial)
        b = ExperimentRunner(root_seed=9, replications=4).run(trial)
        assert a["v"].samples == b["v"].samples

    def test_metric_name_consistency_enforced(self):
        calls = [0]

        def trial(rng):
            calls[0] += 1
            return {"a": 1.0} if calls[0] == 1 else {"b": 1.0}

        runner = ExperimentRunner(replications=3)
        with pytest.raises(ValueError):
            runner.run(trial)

    def test_empty_metrics_rejected(self):
        runner = ExperimentRunner(replications=2)
        with pytest.raises(ValueError):
            runner.run(lambda rng: {})

    def test_sweep(self):
        runner = ExperimentRunner(root_seed=0, replications=3)
        out = runner.sweep(
            lambda rng, v: {"twice": 2 * v}, parameter_values=[1.0, 2.0]
        )
        assert out[1.0]["twice"].mean == pytest.approx(2.0)
        assert out[2.0]["twice"].mean == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(replications=1)
        with pytest.raises(ValueError):
            ExperimentRunner(confidence=2.0)


class TestEmpiricalMI:
    def test_joint_histogram_normalized(self, rng):
        xs = rng.integers(0, 3, 1000)
        ys = rng.integers(0, 4, 1000)
        joint = joint_histogram(xs, ys)
        assert joint.shape == (3, 4)
        assert joint.sum() == pytest.approx(1.0)

    def test_plugin_matches_bsc_capacity(self, rng):
        """MI of a uniform-input BSC sample approaches 1 - H(p)."""
        p = 0.11
        ch = DiscreteMemorylessChannel(
            np.array([[1 - p, p], [p, 1 - p]])
        )
        xs = rng.integers(0, 2, 400_000)
        ys = ch.transmit(xs, rng)
        mi = plugin_mutual_information(xs, ys, bias_correct=True)
        assert mi == pytest.approx(bsc_capacity(p), abs=0.005)

    def test_independent_streams_near_zero(self, rng):
        xs = rng.integers(0, 2, 100_000)
        ys = rng.integers(0, 2, 100_000)
        mi = plugin_mutual_information(xs, ys, bias_correct=True)
        assert mi < 0.001

    def test_bias_correction_magnitude(self):
        assert miller_madow_correction((4, 4), 1000) == pytest.approx(
            9 / (2000 * np.log(2))
        )
        with pytest.raises(ValueError):
            miller_madow_correction((2, 2), 0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            plugin_mutual_information([], [])
        with pytest.raises(ValueError):
            plugin_mutual_information([0, 1], [1])
        with pytest.raises(ValueError):
            joint_histogram([-1, 0], [0, 1])

    def test_per_position_identity(self, rng):
        xs = rng.integers(0, 4, 50_000)
        mi = per_position_mutual_information(xs, xs, alphabet_size=4)
        assert mi == pytest.approx(2.0, abs=0.01)

    def test_per_position_empty(self):
        assert per_position_mutual_information(
            np.array([]), np.array([]), alphabet_size=2
        ) == 0.0

    def test_per_position_collapses_under_shift(self, rng):
        """One deletion misaligns everything downstream: MI collapses
        even though the data is a perfect copy otherwise."""
        xs = rng.integers(0, 2, 50_000)
        shifted = xs[1:]  # first symbol 'deleted'
        mi = per_position_mutual_information(xs, shifted, alphabet_size=2)
        assert mi < 0.01
