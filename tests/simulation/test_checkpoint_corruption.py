"""Corrupt-checkpoint handling: ``discard_corrupt_checkpoint``.

Two corruption shapes that occur in practice: a JSON checkpoint
truncated mid-file (killed during a non-atomic copy), and binary
garbage at the checkpoint path (e.g. a truncated ``.npz`` written by
another tool). Both must either raise a ``ValueError`` that names the
escape hatch, or — with ``discard_corrupt_checkpoint=True`` — recompute
from scratch and produce exactly what an uninterrupted run produces.
"""

import io

import numpy as np
import pytest

from repro.simulation import ExperimentRunner


def trial(rng):
    return {"x": float(rng.random())}


def _samples(result):
    return {name: summary.samples for name, summary in result.items()}


def _write_valid_checkpoint(path):
    runner = ExperimentRunner(
        root_seed=8, replications=4, checkpoint_path=path
    )
    runner.run(trial)
    assert path.exists()


def _truncate_json(path):
    text = path.read_text(encoding="utf-8")
    assert len(text) > 40
    path.write_text(text[: len(text) // 2], encoding="utf-8")


def _write_truncated_npz(path):
    buffer = io.BytesIO()
    np.savez(buffer, samples=np.arange(64, dtype=np.float64))
    payload = buffer.getvalue()
    path.write_bytes(payload[: int(len(payload) * 0.6)])


CORRUPTIONS = [
    ("truncated-json", _truncate_json, True),
    ("truncated-npz", _write_truncated_npz, False),
]


@pytest.mark.parametrize(
    "label,corrupt,needs_seed", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
)
def test_corrupt_checkpoint_raises_and_names_the_flag(
    tmp_path, label, corrupt, needs_seed
):
    path = tmp_path / "ckpt.json"
    if needs_seed:
        _write_valid_checkpoint(path)
    corrupt(path)
    runner = ExperimentRunner(
        root_seed=8, replications=4, checkpoint_path=path
    )
    with pytest.raises(ValueError, match="discard_corrupt_checkpoint"):
        runner.run(trial)
    # Refusing to guess preserves the evidence for inspection.
    assert path.exists()


@pytest.mark.parametrize(
    "label,corrupt,needs_seed", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
)
def test_discard_flag_recomputes_identically(
    tmp_path, label, corrupt, needs_seed
):
    path = tmp_path / "ckpt.json"
    if needs_seed:
        _write_valid_checkpoint(path)
    corrupt(path)
    runner = ExperimentRunner(
        root_seed=8,
        replications=4,
        checkpoint_path=path,
        discard_corrupt_checkpoint=True,
    )
    recovered = runner.run(trial)
    assert recovered.resumed_replications == 0  # nothing was salvaged
    oracle = ExperimentRunner(root_seed=8, replications=4).run(trial)
    assert _samples(recovered) == _samples(oracle)
    # The rewritten checkpoint is valid again and fully resumes.
    resumed = ExperimentRunner(
        root_seed=8, replications=4, checkpoint_path=path
    ).run(trial)
    assert resumed.resumed_replications == 4


def test_discard_flag_is_inert_on_healthy_checkpoints(tmp_path):
    path = tmp_path / "ckpt.json"
    _write_valid_checkpoint(path)
    runner = ExperimentRunner(
        root_seed=8,
        replications=4,
        checkpoint_path=path,
        discard_corrupt_checkpoint=True,
    )
    result = runner.run(trial)
    assert result.resumed_replications == 4  # nothing discarded
