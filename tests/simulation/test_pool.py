"""SupervisedPool: typed failures, restarts, hang detection, budgets.

Every task function is module-level so ``ProcessPoolExecutor`` can
pickle it. Crash fixtures kill their own worker with ``SIGKILL`` — the
abrupt death a bare executor turns into ``BrokenProcessPool`` for every
outstanding future.
"""

import os
import signal
import time

import pytest

from repro.simulation import (
    PoolExhaustedError,
    PoolTaskError,
    SupervisedPool,
    WorkerCrashedError,
    WorkerHungError,
)


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def die(_x):
    os.kill(os.getpid(), signal.SIGKILL)


def nap(seconds):
    time.sleep(seconds)
    return seconds


def die_once(marker, x):
    """SIGKILL the first worker to claim *marker*; compute thereafter."""
    try:
        with open(marker, "x"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    except FileExistsError:
        pass
    return x * x


# ----------------------------------------------------------------------
# construction


def test_constructor_validation():
    with pytest.raises(ValueError, match="max_workers"):
        SupervisedPool(0)
    with pytest.raises(ValueError, match="max_restarts"):
        SupervisedPool(1, max_restarts=-1)
    with pytest.raises(ValueError, match="hang_seconds"):
        SupervisedPool(1, hang_seconds=0.0)


def test_context_manager_shuts_down():
    with SupervisedPool(1) as pool:
        assert pool.run(square, 4) == 16
    # Shutdown is idempotent and the pool lazily rebuilds on next use.
    pool.shutdown()
    assert pool.run(square, 5) == 25
    pool.shutdown()


# ----------------------------------------------------------------------
# run(): the service's one-task API


def test_run_returns_result_and_reraises_task_exception():
    with SupervisedPool(1) as pool:
        assert pool.run(square, 7) == 49
        with pytest.raises(ValueError, match="boom 3"):
            pool.run(boom, 3)
        # A task exception is not a pool failure: no restart burned.
        assert pool.restarts == 0


def test_run_worker_crash_is_typed_and_recoverable():
    with SupervisedPool(1, max_restarts=2) as pool:
        with pytest.raises(WorkerCrashedError):
            pool.run(die, 0)
        assert pool.restarts == 1
        # The rebuilt pool serves the next task normally.
        assert pool.run(square, 6) == 36


def test_run_hang_detection_terminates_and_recovers():
    with SupervisedPool(1, max_restarts=2) as pool:
        with pytest.raises(WorkerHungError):
            pool.run(nap, 30.0, timeout=0.2)
        assert pool.restarts == 1
        assert pool.run(square, 2) == 4


def test_run_restart_budget_exhausts_into_typed_error():
    with SupervisedPool(1, max_restarts=0) as pool:
        with pytest.raises(PoolExhaustedError):
            pool.run(die, 0)


def test_run_unbounded_restarts_for_service_tier():
    with SupervisedPool(1, max_restarts=None) as pool:
        for _ in range(3):
            with pytest.raises(WorkerCrashedError):
                pool.run(die, 0)
        assert pool.restarts == 3
        assert pool.run(square, 3) == 9


def test_pool_errors_share_a_base_class():
    for exc_type in (WorkerCrashedError, WorkerHungError, PoolExhaustedError):
        assert issubclass(exc_type, PoolTaskError)
        assert issubclass(exc_type, RuntimeError)


# ----------------------------------------------------------------------
# map_tasks(): the experiment runner's fan-out


def test_map_tasks_yields_every_task_exactly_once():
    tasks = [(k, (k,)) for k in range(7)]
    with SupervisedPool(3) as pool:
        outcomes = dict(pool.map_tasks(square, tasks))
    assert outcomes == {k: k * k for k in range(7)}
    assert pool.stopped_early is False


def test_map_tasks_isolates_task_exceptions():
    with SupervisedPool(2) as pool:
        outcomes = dict(pool.map_tasks(boom, [("only", (9,))]))
    assert isinstance(outcomes["only"], ValueError)
    assert pool.restarts == 0  # a raising task is not a pool failure


def test_map_tasks_resubmits_crashed_tasks_bit_identically(tmp_path):
    marker = str(tmp_path / "killed")
    tasks = [(k, (marker, k)) for k in range(6)]
    with SupervisedPool(2, max_restarts=3) as pool:
        outcomes = dict(pool.map_tasks(die_once, tasks))
    assert os.path.exists(marker)  # the crash actually fired
    assert pool.restarts >= 1
    # The resubmitted task (and any in-flight casualties) recompute the
    # same values: supervision changes scheduling, never results.
    assert outcomes == {k: k * k for k in range(6)}


def test_map_tasks_exhausted_budget_accounts_for_every_task(tmp_path):
    marker = str(tmp_path / "killed")
    tasks = [(k, (marker, k)) for k in range(5)]
    with SupervisedPool(2, max_restarts=0) as pool:
        outcomes = dict(pool.map_tasks(die_once, tasks))
    # Nothing is silently lost: each key resolved to a value or a
    # PoolExhaustedError, never dropped.
    assert set(outcomes) == set(range(5))
    exhausted = [
        v for v in outcomes.values() if isinstance(v, PoolExhaustedError)
    ]
    assert exhausted  # the spent budget surfaced as typed outcomes


def test_map_tasks_should_stop_blocks_next_submission():
    calls = []

    def stop_after_two():
        calls.append(None)
        return len(calls) > 2

    tasks = [(k, (k,)) for k in range(50)]
    with SupervisedPool(1) as pool:
        outcomes = dict(
            pool.map_tasks(square, tasks, should_stop=stop_after_two)
        )
    assert pool.stopped_early is True
    assert len(outcomes) < 50  # the tail was never submitted
    for key, value in outcomes.items():
        assert value == key * key


def test_map_tasks_stopped_early_resets_between_calls():
    tasks = [(k, (k,)) for k in range(3)]
    with SupervisedPool(1) as pool:
        dict(pool.map_tasks(square, tasks, should_stop=lambda: True))
        assert pool.stopped_early is True
        dict(pool.map_tasks(square, tasks))
        assert pool.stopped_early is False


def test_map_tasks_hang_detection_resubmits(tmp_path):
    # One task hangs on its first execution only (latch file), so the
    # terminate-and-resubmit path completes with full results.
    marker = str(tmp_path / "slow-once")
    tasks = [(k, (marker, k)) for k in range(4)]
    with SupervisedPool(2, max_restarts=3, hang_seconds=0.5) as pool:
        outcomes = dict(pool.map_tasks(hang_once, tasks))
    assert outcomes == {k: k * k for k in range(4)}
    assert pool.restarts >= 1


def hang_once(marker, x):
    """Sleep far beyond any hang budget on the first claim of *marker*."""
    try:
        with open(marker, "x"):
            pass
        time.sleep(30.0)
    except FileExistsError:
        pass
    return x * x
