"""Runner <-> result-store integration: whole-run caching, checkpoint
fingerprint migration, the corrupt-checkpoint escape hatch, and the
RunResult serializers."""

import json

import pytest

from repro.simulation.runner import (
    CHECKPOINT_SCHEMA_VERSION,
    RUNNER_FN_ID,
    ExperimentRunner,
    RunResult,
)
from repro.store import ResultStore, reset_store_counters, store_counters, use_store

CALLS = []


def counting_trial(rng):
    """Module-level so it is picklable AND code-fingerprintable."""
    CALLS.append(None)
    return {"value": float(rng.random())}


def flaky_trial(rng):
    value = float(rng.random())
    if value > 0.5:
        raise RuntimeError("injected permanent failure")
    return {"value": value}


@pytest.fixture(autouse=True)
def _reset_state():
    CALLS.clear()
    reset_store_counters()
    yield
    CALLS.clear()
    reset_store_counters()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def summaries_equal(a: RunResult, b: RunResult) -> bool:
    return a.to_dict() == b.to_dict()


class TestWholeRunCaching:
    def test_warm_run_dispatches_no_replications(self, store):
        runner = ExperimentRunner(root_seed=7, replications=4)
        with use_store(store):
            cold = runner.run(counting_trial)
            dispatched = len(CALLS)
            warm = runner.run(counting_trial)
        assert dispatched == 4
        assert len(CALLS) == 4  # warm run never called the trial
        assert summaries_equal(cold, warm)
        assert store_counters()[f"{RUNNER_FN_ID}:miss"] == 1
        assert store_counters()[f"{RUNNER_FN_ID}:hit"] == 1

    def test_store_off_is_bit_identical_to_store_on(self, store):
        runner = ExperimentRunner(root_seed=7, replications=4)
        plain = runner.run(counting_trial)
        with use_store(store):
            cached = runner.run(counting_trial)
            warm = runner.run(counting_trial)
        assert plain["value"].samples == cached["value"].samples
        assert plain["value"].samples == warm["value"].samples
        assert plain["value"].interval == warm["value"].interval

    def test_unfingerprintable_trial_bypasses(self, store):
        class OpaqueTrial:
            # Not a function, not a dataclass: no code fingerprint, so
            # the runner must bypass the store rather than guess a key.
            def __call__(self, rng):
                return {"value": float(rng.random())}

        runner = ExperimentRunner(root_seed=1, replications=3)
        with use_store(store):
            runner.run(OpaqueTrial())
        assert store_counters() == {f"{RUNNER_FN_ID}:bypass": 1}
        assert store.stats().entries == 0

    def test_different_config_or_label_misses(self, store):
        with use_store(store):
            ExperimentRunner(root_seed=1, replications=3).run(counting_trial)
            ExperimentRunner(root_seed=2, replications=3).run(counting_trial)
            ExperimentRunner(root_seed=1, replications=3).run(
                counting_trial, label="other"
            )
        assert store_counters()[f"{RUNNER_FN_ID}:miss"] == 3
        assert store.stats().entries == 3

    def test_incomplete_runs_are_not_cached(self, store):
        """A run with permanently failed replications must not be served
        as the full aggregate later."""
        runner = ExperimentRunner(
            root_seed=0, replications=6, max_trial_retries=0
        )
        with use_store(store):
            result = runner.run(flaky_trial)
        assert result.failed_replications  # seed 0 trips the >0.5 branch
        assert store.stats().entries == 0

    def test_cached_run_survives_process_boundary_shape(self, store):
        """The cached payload round-trips every RunResult field."""
        runner = ExperimentRunner(
            root_seed=3, replications=4, collect_timing=True
        )
        with use_store(store):
            cold = runner.run(counting_trial)
            warm = runner.run(counting_trial)
        assert warm.solver_statuses == cold.solver_statuses
        assert warm.failures == cold.failures
        assert warm.budget_exhausted is False
        assert set(warm.timing) == set(cold.timing)


class TestRunResultSerializers:
    def test_roundtrip_preserves_everything(self):
        runner = ExperimentRunner(
            root_seed=0, replications=6, max_trial_retries=0
        )
        result = runner.run(flaky_trial)
        clone = RunResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone["value"].samples == result["value"].samples
        assert clone["value"].interval == result["value"].interval
        assert clone.failures == result.failures
        assert clone.failed_replications == result.failed_replications
        assert clone.budget_exhausted == result.budget_exhausted

    def test_to_dict_is_json_serializable(self):
        result = ExperimentRunner(replications=3).run(counting_trial)
        text = json.dumps(result.to_dict())
        assert RunResult.from_dict(json.loads(text)).to_dict() == result.to_dict()


class TestCheckpointMigration:
    def legacy_config(self, runner):
        return {
            "root_seed": runner.root_seed,
            "replications": runner.replications,
            "confidence": runner.confidence,
        }

    def test_legacy_checkpoint_resumes_and_is_rewritten(self, tmp_path):
        path = tmp_path / "ckpt.json"
        runner = ExperimentRunner(
            root_seed=5, replications=4, checkpoint_path=path
        )
        full = ExperimentRunner(root_seed=5, replications=4).run(counting_trial)
        # Forge a legacy (pre-schema_version) checkpoint holding the
        # first two completed replications of the same run.
        CALLS.clear()
        completed = {
            str(k): {"value": full["value"].samples[k]} for k in range(2)
        }
        path.write_text(
            json.dumps(
                {
                    "config": self.legacy_config(runner),
                    "runs": {
                        "run": {
                            "completed": completed,
                            "failures": [],
                            "statuses": {},
                        }
                    },
                }
            )
        )
        result = runner.run(counting_trial)
        assert result.resumed_replications == 2
        assert len(CALLS) == 2  # only the missing replications ran
        assert result["value"].samples == full["value"].samples
        migrated = json.loads(path.read_text())
        assert (
            migrated["config"]["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        )
        assert "package_version" in migrated["config"]

    def test_versioned_mismatch_is_incompatible(self, tmp_path):
        path = tmp_path / "ckpt.json"
        config = ExperimentRunner(
            root_seed=5, replications=4, checkpoint_path=path
        )._config_fingerprint()
        config["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_text(json.dumps({"config": config, "runs": {}}))
        runner = ExperimentRunner(
            root_seed=5, replications=4, checkpoint_path=path
        )
        with pytest.raises(ValueError, match="incompatible"):
            runner.run(counting_trial)


class TestDiscardCorruptCheckpoint:
    def test_unreadable_checkpoint_error_names_the_flag(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        runner = ExperimentRunner(replications=3, checkpoint_path=path)
        with pytest.raises(ValueError) as excinfo:
            runner.run(counting_trial)
        assert "unreadable checkpoint" in str(excinfo.value)
        assert "discard_corrupt_checkpoint=True" in str(excinfo.value)

    def test_flag_discards_unreadable_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        runner = ExperimentRunner(
            replications=3,
            checkpoint_path=path,
            discard_corrupt_checkpoint=True,
        )
        result = runner.run(counting_trial)
        assert result.resumed_replications == 0
        # The checkpoint was rewritten from scratch and is valid again.
        state = json.loads(path.read_text())
        assert state["config"]["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_flag_discards_incompatible_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps(
                {
                    "config": {
                        "schema_version": 99,
                        "root_seed": 0,
                        "replications": 3,
                        "confidence": 0.95,
                    },
                    "runs": {},
                }
            )
        )
        runner = ExperimentRunner(
            replications=3,
            checkpoint_path=path,
            discard_corrupt_checkpoint=True,
        )
        result = runner.run(counting_trial)
        assert result.resumed_replications == 0
