"""Sequential (precision-targeted) Monte-Carlo."""

import numpy as np
import pytest

from repro.simulation.convergence import run_until_precise


class TestRunUntilPrecise:
    def test_reaches_absolute_target(self):
        result = run_until_precise(
            lambda rng: rng.normal(5.0, 1.0),
            abs_half_width=0.2,
            max_replications=5000,
        )
        assert result.reached_target
        assert result.interval.half_width <= 0.2
        assert result.estimate == pytest.approx(5.0, abs=0.5)

    def test_reaches_relative_target(self):
        result = run_until_precise(
            lambda rng: rng.normal(10.0, 2.0),
            rel_half_width=0.05,
            max_replications=5000,
        )
        assert result.reached_target
        assert result.interval.half_width / abs(result.estimate) <= 0.05

    def test_harder_targets_need_more_samples(self):
        loose = run_until_precise(
            lambda rng: rng.normal(0.0, 1.0),
            abs_half_width=0.5,
            root_seed=1,
        )
        tight = run_until_precise(
            lambda rng: rng.normal(0.0, 1.0),
            abs_half_width=0.1,
            root_seed=1,
        )
        assert tight.replications > loose.replications

    def test_cap_respected(self):
        result = run_until_precise(
            lambda rng: rng.normal(0.0, 100.0),
            abs_half_width=1e-6,
            max_replications=50,
        )
        assert result.replications == 50
        assert not result.reached_target

    def test_deterministic_trial_stops_immediately(self):
        result = run_until_precise(
            lambda rng: 3.0, abs_half_width=0.01, min_replications=4
        )
        assert result.reached_target
        assert result.replications <= 8
        assert result.estimate == 3.0

    def test_reproducible(self):
        a = run_until_precise(
            lambda rng: rng.normal(), abs_half_width=0.2, root_seed=7
        )
        b = run_until_precise(
            lambda rng: rng.normal(), abs_half_width=0.2, root_seed=7
        )
        assert a.estimate == b.estimate
        assert a.replications == b.replications

    def test_validation(self):
        with pytest.raises(ValueError):
            run_until_precise(lambda rng: 0.0)
        with pytest.raises(ValueError):
            run_until_precise(
                lambda rng: 0.0, abs_half_width=0.1, min_replications=1
            )
        with pytest.raises(ValueError):
            run_until_precise(
                lambda rng: 0.0,
                abs_half_width=0.1,
                min_replications=10,
                max_replications=5,
            )
        with pytest.raises(ValueError):
            run_until_precise(lambda rng: 0.0, abs_half_width=0.1, batch=0)

    def test_protocol_rate_estimation_use_case(self):
        """Realistic use: estimate the resend-protocol rate to +-1%."""
        from repro.core.events import ChannelParameters
        from repro.sync.feedback import ResendProtocol

        proto = ResendProtocol(ChannelParameters.from_rates(0.2, 0.0))

        def trial(rng):
            run = proto.run(rng.integers(0, 2, 2000), rng)
            return run.throughput_per_use

        result = run_until_precise(
            trial, rel_half_width=0.01, max_replications=500
        )
        assert result.reached_target
        assert result.estimate == pytest.approx(0.8, abs=0.02)
