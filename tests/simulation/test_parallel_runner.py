"""Parallel execution engine: determinism, resume, and bugfix regressions.

The contract under test: ``workers > 1`` changes *how* a run executes,
never *what* it computes. Every trial here is a module-level function
(not a closure) so ``ProcessPoolExecutor`` can pickle it.
"""

import time
import typing

import numpy as np
import pytest

from repro.numerics import SolverStatus, record_status
from repro.simulation.runner import (
    ExperimentRunner,
    RunResult,
    sweep_checkpoint_label,
)

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def metrics_trial(rng):
    """Deterministic-by-substream metrics."""
    values = rng.random(16)
    return {"mean": float(values.mean()), "max": float(values.max())}


def flaky_trial(rng):
    """Fails on a substream-determined subset of replications and
    reports a solver status on success."""
    draw = float(rng.random())
    if draw < 0.45:
        raise RuntimeError(f"injected failure at draw {draw:.3f}")
    record_status("fake_solver", SolverStatus.CONVERGED)
    return {"draw": draw}


def slow_trial(rng):
    time.sleep(0.35)
    return {"x": float(rng.random())}


def swept_trial(rng, value):
    return {"y": float(rng.random()) + value}


def _samples(result):
    return {name: summary.samples for name, summary in result.items()}


# ----------------------------------------------------------------------
# Bit-identical serial/parallel results


def test_parallel_matches_serial_bit_identical():
    serial = ExperimentRunner(root_seed=11, replications=8, workers=1)
    parallel = ExperimentRunner(root_seed=11, replications=8, workers=3)
    rs = serial.run(metrics_trial)
    rp = parallel.run(metrics_trial)
    assert _samples(rs) == _samples(rp)  # exact float equality
    assert rs["mean"].interval == rp["mean"].interval
    assert rs.failed_replications == rp.failed_replications == ()


def test_parallel_failures_and_statuses_match_serial():
    serial = ExperimentRunner(
        root_seed=5, replications=10, workers=1, max_trial_retries=2
    )
    parallel = ExperimentRunner(
        root_seed=5, replications=10, workers=4, max_trial_retries=2
    )
    rs = serial.run(flaky_trial)
    rp = parallel.run(flaky_trial)
    assert _samples(rs) == _samples(rp)
    assert rs.failures == rp.failures  # same retries, same order
    assert rs.failed_replications == rp.failed_replications
    assert rs.solver_statuses == rp.solver_statuses
    assert rs.solver_statuses  # the status surface is not empty
    assert rs.failures  # the injection actually fired


def test_parallel_requires_picklable_trial():
    runner = ExperimentRunner(root_seed=0, replications=4, workers=2)
    with pytest.raises(ValueError, match="picklable"):
        runner.run(lambda rng: {"x": float(rng.random())})


def test_worker_count_validation():
    with pytest.raises(ValueError, match="workers"):
        ExperimentRunner(root_seed=0, replications=4, workers=0)


# ----------------------------------------------------------------------
# Checkpoint/resume under workers > 1


def test_serial_partial_checkpoint_resumes_under_workers(tmp_path):
    path = tmp_path / "ckpt.json"
    # Pass 1: no retries, so the substream-determined failures stay
    # unfinished; the checkpoint holds only the successful subset.
    first = ExperimentRunner(
        root_seed=5,
        replications=10,
        workers=1,
        max_trial_retries=0,
        checkpoint_path=path,
    )
    r1 = first.run(flaky_trial)
    assert r1.failed_replications  # something is actually pending
    # Pass 2: resume the same checkpoint in parallel, now with retries.
    second = ExperimentRunner(
        root_seed=5,
        replications=10,
        workers=3,
        max_trial_retries=2,
        checkpoint_path=path,
    )
    r2 = second.run(flaky_trial)
    assert r2.resumed_replications == 10 - len(r1.failed_replications)
    # A fresh serial run with the same retry policy is the oracle.
    oracle = ExperimentRunner(
        root_seed=5, replications=10, workers=1, max_trial_retries=2
    ).run(flaky_trial)
    assert _samples(r2) == _samples(oracle)
    assert r2.solver_statuses == oracle.solver_statuses


def test_parallel_checkpoint_fully_resumes(tmp_path):
    path = tmp_path / "ckpt.json"
    cfg = dict(root_seed=3, replications=6, checkpoint_path=path)
    r1 = ExperimentRunner(workers=3, **cfg).run(metrics_trial)
    r2 = ExperimentRunner(workers=1, **cfg).run(metrics_trial)
    assert r2.resumed_replications == 6
    assert _samples(r1) == _samples(r2)


# ----------------------------------------------------------------------
# Wall-clock budget still stops a parallel run


@pytest.mark.slow
def test_parallel_budget_stops_early():
    runner = ExperimentRunner(
        root_seed=2,
        replications=12,
        workers=2,
        time_budget_seconds=1.0,
    )
    result = runner.run(slow_trial)
    assert result.budget_exhausted
    assert 2 <= result["x"].replications < 12


# ----------------------------------------------------------------------
# Satellite regression: solver statuses survive checkpoint resume


def test_solver_statuses_survive_resume(tmp_path):
    path = tmp_path / "ckpt.json"
    cfg = dict(
        root_seed=5, replications=10, max_trial_retries=2, checkpoint_path=path
    )
    fresh = ExperimentRunner(workers=1, **cfg).run(flaky_trial)
    assert fresh.solver_statuses
    resumed = ExperimentRunner(workers=1, **cfg).run(flaky_trial)
    assert resumed.resumed_replications == 10 - len(
        fresh.failed_replications
    )
    # Pre-fix, a resumed run dropped the checkpointed statuses and
    # reported solver health for the re-executed replications only.
    assert resumed.solver_statuses == fresh.solver_statuses
    assert resumed.failures == fresh.failures  # no duplicate records


# ----------------------------------------------------------------------
# Satellite regression: sweep annotation / return value


def test_sweep_returns_full_run_results():
    runner = ExperimentRunner(root_seed=1, replications=4)
    out = runner.sweep(swept_trial, [0.0, 0.5])
    assert set(out) == {0.0, 0.5}
    for result in out.values():
        assert isinstance(result, RunResult)
        # The RunResult metadata the old annotation denied exists.
        assert result.failures == ()
        assert result.solver_statuses == {}


def test_sweep_annotation_names_runresult():
    hints = typing.get_type_hints(ExperimentRunner.sweep)
    assert hints["return"] == typing.Dict[float, RunResult]


# ----------------------------------------------------------------------
# Satellite regression: canonical sweep checkpoint labels


def test_sweep_label_is_canonical_across_types():
    # Same real number, different carrier types -> same label.
    assert sweep_checkpoint_label(1) == sweep_checkpoint_label(1.0)
    # np.float32(0.1) is NOT the double 0.1; pre-fix f-string labels
    # rendered both as "sweep/0.1", silently sharing checkpoint state.
    assert sweep_checkpoint_label(np.float32(0.1)) != sweep_checkpoint_label(
        0.1
    )
    assert str(np.float32(0.1)) == "0.1"  # the collision the fix removes
    # Shortest-roundtrip repr is bijective on floats.
    assert sweep_checkpoint_label(0.1 + 0.2) != sweep_checkpoint_label(0.3)
    assert sweep_checkpoint_label(0.5) == "sweep/0.5"


def test_sweep_keys_are_plain_floats():
    runner = ExperimentRunner(root_seed=1, replications=4)
    out = runner.sweep(swept_trial, [np.float32(0.5), 1])
    assert all(type(k) is float for k in out)
    assert set(out) == {0.5, 1.0}


# ----------------------------------------------------------------------
# Timing breakdown


def test_timing_disabled_by_default():
    runner = ExperimentRunner(root_seed=0, replications=4)
    assert runner.run(metrics_trial).timing == {}


def test_timing_breakdown_serial():
    runner = ExperimentRunner(
        root_seed=0, replications=4, collect_timing=True
    )
    timing = runner.run(metrics_trial).timing
    assert {"trial", "total"} <= set(timing)
    assert all(v >= 0.0 for v in timing.values())
    assert timing["trial"] <= timing["total"] * 1.05


def test_timing_breakdown_parallel_merges_workers():
    runner = ExperimentRunner(
        root_seed=0, replications=6, workers=2, collect_timing=True
    )
    timing = runner.run(metrics_trial).timing
    assert {"trial", "total"} <= set(timing)


def test_timing_does_not_change_results():
    base = ExperimentRunner(root_seed=9, replications=6).run(metrics_trial)
    timed = ExperimentRunner(
        root_seed=9, replications=6, collect_timing=True
    ).run(metrics_trial)
    assert _samples(base) == _samples(timed)
