"""Sequential Monte-Carlo: zero-mean relative-width fallback and the
solver-status view of a run (satellite of the guarded-numerics PR)."""

import pytest

from repro.numerics import SolverStatus, collect_solver_statuses
from repro.simulation.convergence import run_until_precise


def alternating_trial():
    """Trial returning exactly +1, -1, +1, ... so the running mean is
    exactly 0.0 whenever the CI is checked (batch-aligned even counts)."""
    calls = []

    def trial(rng):
        calls.append(None)
        return 1.0 if len(calls) % 2 else -1.0

    return trial


class TestZeroMeanFallback:
    def test_relative_only_runs_to_cap(self):
        # A zero mean makes the relative criterion unsatisfiable; with
        # no absolute criterion the run must draw until the cap and say
        # so honestly.
        result = run_until_precise(
            alternating_trial(),
            rel_half_width=0.5,
            min_replications=8,
            max_replications=32,
            batch=8,
        )
        assert result.replications == 32
        assert not result.reached_target
        assert result.status is SolverStatus.MAX_ITER
        assert result.estimate == pytest.approx(0.0, abs=1e-12)

    def test_falls_back_to_absolute_criterion_when_given(self):
        result = run_until_precise(
            alternating_trial(),
            rel_half_width=0.5,
            abs_half_width=2.0,  # loose: satisfied at the first check
            min_replications=8,
            max_replications=64,
            batch=8,
        )
        assert result.reached_target
        assert result.replications == 8
        assert result.status is SolverStatus.CONVERGED

    def test_neither_criterion_raises(self):
        with pytest.raises(ValueError, match="abs_half_width"):
            run_until_precise(alternating_trial())


class TestStatusSurface:
    def test_status_property_mirrors_reached_target(self):
        hit = run_until_precise(
            lambda rng: 5.0, abs_half_width=0.1, max_replications=64
        )
        assert hit.reached_target
        assert hit.status is SolverStatus.CONVERGED
        miss = run_until_precise(
            lambda rng: float(rng.random()),
            abs_half_width=1e-12,
            min_replications=8,
            max_replications=16,
        )
        assert not miss.reached_target
        assert miss.status is SolverStatus.MAX_ITER

    def test_terminal_status_recorded_with_collector(self):
        with collect_solver_statuses() as counts:
            run_until_precise(
                lambda rng: 5.0, abs_half_width=0.1, max_replications=64
            )
            run_until_precise(
                lambda rng: float(rng.random()),
                abs_half_width=1e-12,
                min_replications=8,
                max_replications=16,
            )
        assert counts == {
            "sequential_mc:converged": 1,
            "sequential_mc:max_iter": 1,
        }
