"""ExperimentRunner surfaces guarded-solver statuses from inside trials
(satellite of the guarded-numerics PR)."""

import numpy as np

from repro.infotheory import binary_symmetric_channel, blahut_arimoto_guarded
from repro.numerics import SolverStatus, record_status
from repro.simulation.runner import ExperimentRunner


class TestSolverStatusSurface:
    def test_statuses_aggregate_across_replications(self):
        def trial(rng):
            record_status("toy_solver", SolverStatus.CONVERGED)
            if rng.random() < 2.0:  # every replication
                record_status("toy_solver", SolverStatus.STALLED)
            return {"value": float(rng.random())}

        runner = ExperimentRunner(replications=4)
        result = runner.run(trial)
        assert result.solver_statuses == {
            "toy_solver:converged": 4,
            "toy_solver:stalled": 4,
        }

    def test_real_guarded_solver_statuses_surface(self):
        w = binary_symmetric_channel(0.1).transition_matrix

        def trial(rng):
            ba = blahut_arimoto_guarded(w)
            return {"capacity": ba.capacity}

        result = ExperimentRunner(replications=3).run(trial)
        assert result.solver_statuses == {"blahut_arimoto:converged": 3}
        assert result["capacity"].mean > 0.5

    def test_failed_execution_contributes_no_counts(self):
        calls = []

        def trial(rng):
            record_status("toy_solver", SolverStatus.CONVERGED)
            calls.append(None)
            if len(calls) == 1:  # first execution crashes after recording
                raise RuntimeError("boom")
            return {"value": 1.0}

        runner = ExperimentRunner(replications=3, max_trial_retries=1)
        result = runner.run(trial)
        # 4 executions ran (1 failed + 3 successful); only the
        # successful ones contribute status counts.
        assert len(calls) == 4
        assert result.solver_statuses == {"toy_solver:converged": 3}
        assert len(result.failures) == 1

    def test_no_guarded_solves_means_empty_mapping(self):
        result = ExperimentRunner(replications=2).run(
            lambda rng: {"value": float(rng.random())}
        )
        assert result.solver_statuses == {}

    def test_counts_are_plain_ints(self):
        def trial(rng):
            record_status("s", SolverStatus.ABORTED)
            return {"value": 0.0}

        result = ExperimentRunner(replications=2).run(trial)
        assert all(
            isinstance(v, int) and not isinstance(v, np.bool_)
            for v in result.solver_statuses.values()
        )
