"""Crash-proofing of the Monte-Carlo experiment runner: exception
isolation, retry substreams, wall-clock budget, metric-name validation,
and checkpoint/resume determinism."""

import json

import numpy as np
import pytest

from repro.simulation.runner import (
    ExperimentRunner,
    ReplicationFailure,
    RunResult,
    TrialSummary,
)


def metric_trial(rng):
    return {"value": float(rng.random()), "other": float(rng.random())}


class TestValidation:
    def test_constructor_guards(self):
        with pytest.raises(ValueError):
            ExperimentRunner(replications=1)
        with pytest.raises(ValueError):
            ExperimentRunner(confidence=1.0)
        with pytest.raises(ValueError):
            ExperimentRunner(max_trial_retries=-1)
        with pytest.raises(ValueError):
            ExperimentRunner(time_budget_seconds=0.0)

    def test_empty_metrics_raise(self):
        runner = ExperimentRunner(replications=3)
        with pytest.raises(ValueError, match="replication 0 returned no metrics"):
            runner.run(lambda rng: {})

    def test_metric_mismatch_names_the_replication(self):
        def trial(rng):
            trial.calls += 1
            if trial.calls == 3:
                return {"value": 1.0, "rogue": 2.0}
            return {"value": 1.0, "other": 2.0}

        trial.calls = 0
        runner = ExperimentRunner(replications=5)
        with pytest.raises(ValueError) as excinfo:
            runner.run(trial)
        msg = str(excinfo.value)
        assert "replication 2" in msg
        assert "missing: ['other']" in msg
        assert "unexpected: ['rogue']" in msg


class TestExceptionIsolation:
    def test_crash_is_recorded_and_retried(self):
        calls = []

        def trial(rng):
            calls.append(None)
            if len(calls) == 2:  # first execution of replication 1
                raise RuntimeError("injected crash")
            return {"value": float(rng.random())}

        runner = ExperimentRunner(replications=5, max_trial_retries=1)
        result = runner.run(trial)
        assert isinstance(result, RunResult)
        assert result["value"].replications == 5  # retry recovered it
        assert result.failed_replications == ()
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure == ReplicationFailure(1, 0, "RuntimeError('injected crash')")

    def test_retry_uses_fresh_substream(self):
        """The retried replication draws different randomness than the
        crashed attempt would have."""
        seen = {}

        def trial(rng):
            v = float(rng.random())
            k = len(seen)
            if k == 1 and 1 not in seen:
                seen[1] = v
                raise RuntimeError("boom")
            seen.setdefault(k, v)
            return {"value": v}

        runner = ExperimentRunner(replications=3, max_trial_retries=1)
        result = runner.run(trial)
        # Replication 1's successful sample differs from its crashed draw.
        assert result["value"].samples[1] != seen[1]

    def test_permanent_failure_drops_the_replication(self):
        def trial(rng):
            v = float(rng.random())
            if v > 0.0:  # replication index unknown here; use a counter
                pass
            trial.calls += 1
            if trial.calls in (3, 4):  # both attempts of replication 2
                raise ValueError("always broken")
            return {"value": v}

        trial.calls = 0
        runner = ExperimentRunner(replications=4, max_trial_retries=1)
        result = runner.run(trial)
        assert result.failed_replications == (2,)
        assert result["value"].replications == 3
        assert len(result.failures) == 2

    def test_all_crashing_raises_runtime_error(self):
        def trial(rng):
            raise RuntimeError("nothing works")

        runner = ExperimentRunner(replications=3, max_trial_retries=0)
        with pytest.raises(RuntimeError, match="nothing works"):
            runner.run(trial)

    def test_crashes_do_not_shift_other_streams(self):
        """Replication k's sample depends only on k, not on whether
        earlier replications crashed (streams are index-derived)."""

        def clean(rng):
            return {"value": float(rng.random())}

        def crashy(rng):
            crashy.calls += 1
            if crashy.calls == 1:
                raise RuntimeError("first execution dies")
            return {"value": float(rng.random())}

        crashy.calls = 0
        a = ExperimentRunner(root_seed=9, replications=4).run(clean)
        b = ExperimentRunner(root_seed=9, replications=4, max_trial_retries=1).run(
            crashy
        )
        # Replications 1..3 are untouched by replication 0's crash.
        assert a["value"].samples[1:] == b["value"].samples[1:]


class TestTimeBudget:
    def test_budget_stops_early(self):
        def slow(rng):
            import time

            time.sleep(0.05)
            return {"value": float(rng.random())}

        runner = ExperimentRunner(replications=50, time_budget_seconds=0.2)
        result = runner.run(slow)
        assert result.budget_exhausted
        assert 2 <= result["value"].replications < 50
        assert result.elapsed_seconds < 5.0


class TestDeterminismAndResume:
    def test_same_root_seed_bit_identical(self):
        a = ExperimentRunner(root_seed=7, replications=6).run(metric_trial)
        b = ExperimentRunner(root_seed=7, replications=6).run(metric_trial)
        assert a["value"].samples == b["value"].samples
        assert a["other"].samples == b["other"].samples
        assert a["value"].interval == b["value"].interval
        c = ExperimentRunner(root_seed=8, replications=6).run(metric_trial)
        assert a["value"].samples != c["value"].samples

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        """Crash mid-run, resume from the checkpoint: the final samples
        equal an uninterrupted run's exactly."""
        path = tmp_path / "ckpt.json"
        reference = ExperimentRunner(root_seed=3, replications=8).run(metric_trial)

        def dies_at_5(rng):
            dies_at_5.calls += 1
            if dies_at_5.calls == 5:
                raise KeyboardInterrupt  # simulated hard kill
            return metric_trial(rng)

        dies_at_5.calls = 0
        first = ExperimentRunner(
            root_seed=3, replications=8, checkpoint_path=path, max_trial_retries=0
        )
        with pytest.raises(KeyboardInterrupt):
            first.run(dies_at_5)
        assert path.exists()
        state = json.loads(path.read_text())
        assert len(state["runs"]["run"]["completed"]) == 4

        resumed = ExperimentRunner(
            root_seed=3, replications=8, checkpoint_path=path
        ).run(metric_trial)
        assert resumed.resumed_replications == 4
        assert resumed["value"].samples == reference["value"].samples
        assert resumed["other"].samples == reference["other"].samples
        assert resumed["value"].interval == reference["value"].interval

    def test_completed_checkpoint_skips_all_work(self, tmp_path):
        path = tmp_path / "ckpt.json"
        runner = ExperimentRunner(root_seed=1, replications=4, checkpoint_path=path)
        full = runner.run(metric_trial)

        def never_called(rng):
            raise AssertionError("resume should not re-execute trials")

        again = ExperimentRunner(
            root_seed=1, replications=4, checkpoint_path=path
        ).run(never_called)
        assert again.resumed_replications == 4
        assert again["value"].samples == full["value"].samples

    def test_incompatible_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ExperimentRunner(root_seed=1, replications=4, checkpoint_path=path).run(
            metric_trial
        )
        other = ExperimentRunner(root_seed=2, replications=4, checkpoint_path=path)
        with pytest.raises(ValueError, match="incompatible"):
            other.run(metric_trial)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{not json")
        runner = ExperimentRunner(replications=3, checkpoint_path=path)
        with pytest.raises(ValueError, match="unreadable"):
            runner.run(metric_trial)

    def test_sweep_labels_do_not_collide(self, tmp_path):
        path = tmp_path / "ckpt.json"
        runner = ExperimentRunner(root_seed=2, replications=3, checkpoint_path=path)

        def trial(rng, v):
            return {"value": v + float(rng.random())}

        out = runner.sweep(trial, [0.0, 10.0])
        state = json.loads(path.read_text())
        assert set(state["runs"]) == {"sweep/0.0", "sweep/10.0"}
        assert out[10.0]["value"].mean == pytest.approx(
            out[0.0]["value"].mean + 10.0
        )


class TestBackwardCompat:
    def test_result_behaves_like_dict(self):
        result = ExperimentRunner(replications=3).run(metric_trial)
        assert set(result) == {"value", "other"}
        assert isinstance(result["value"], TrialSummary)
        assert {k: v for k, v in result.items()} == dict(result)
