"""Chaos regressions: worker death and budget cutoff must not change
what a run computes.

The SIGKILL scenario is the one that used to take down the whole
parallel phase: ``ProcessPoolExecutor`` poisons every outstanding
future with ``BrokenProcessPool`` when any worker dies. The supervised
pool rebuilds and resubmits instead — and because every replication
re-derives its RNG substream from its arguments, the recovered run is
bit-identical to one that never crashed.
"""

import functools
from pathlib import Path

from repro.faults import KillWorkerOnce
from repro.simulation import ExperimentRunner


def chaos_trial(rng):
    return {"x": float(rng.random()), "y": float(rng.random())}


def marking_trial(rng, outdir, fail_after=10**6):
    """Write one marker per execution; refuse past *fail_after* markers."""
    markers = sorted(Path(outdir).glob("rep-*"))
    if len(markers) >= fail_after:
        raise RuntimeError("fixture refuses further replications")
    (Path(outdir) / f"rep-{len(markers)}").touch()
    return {"x": float(rng.random())}


def _samples(result):
    return {name: summary.samples for name, summary in result.items()}


def test_sigkilled_worker_mid_replication_is_bit_identical(tmp_path):
    marker = str(tmp_path / "killed")
    serial = ExperimentRunner(root_seed=17, replications=8, workers=1)
    oracle = serial.run(chaos_trial)

    chaotic = ExperimentRunner(root_seed=17, replications=8, workers=2)
    survived = chaotic.run(KillWorkerOnce(chaos_trial, marker))

    assert Path(marker).exists()  # the SIGKILL actually fired
    assert survived.pool_restarts >= 1  # and the pool rebuilt
    assert _samples(survived) == _samples(oracle)  # exact float equality
    assert survived["x"].interval == oracle["x"].interval
    assert survived.failed_replications == ()


def test_kill_wrapper_is_inert_in_the_parent_process(tmp_path):
    # workers=1 executes in-process: KillWorkerOnce must refuse to kill
    # the orchestrating process and just run the trial.
    marker = str(tmp_path / "never")
    runner = ExperimentRunner(root_seed=17, replications=4, workers=1)
    wrapped = runner.run(KillWorkerOnce(chaos_trial, marker))
    plain = ExperimentRunner(root_seed=17, replications=4, workers=1).run(
        chaos_trial
    )
    assert not Path(marker).exists()
    assert _samples(wrapped) == _samples(plain)
    assert wrapped.pool_restarts == 0


def test_exhausted_budget_blocks_every_new_submission(tmp_path):
    """Regression: the budget used to be checked only after completions,
    so a resumed run with nothing to learn still dispatched new work.
    Now ``should_stop`` gates every submission: an already-expired
    budget must execute zero trials."""
    ckpt = tmp_path / "ckpt.json"
    first_dir = tmp_path / "first"
    first_dir.mkdir()
    # Pass 1: replications 0-1 complete, 2-5 fail -> checkpoint holds 2.
    seeded = ExperimentRunner(
        root_seed=4,
        replications=6,
        workers=1,
        max_trial_retries=0,
        checkpoint_path=ckpt,
    )
    r1 = seeded.run(
        functools.partial(
            marking_trial, outdir=str(first_dir), fail_after=2
        )
    )
    assert len(r1.failed_replications) == 4

    # Pass 2: resume under workers with a budget that is already spent
    # by the time the first submission is considered.
    second_dir = tmp_path / "second"
    second_dir.mkdir()
    resumed = ExperimentRunner(
        root_seed=4,
        replications=6,
        workers=2,
        max_trial_retries=0,
        checkpoint_path=ckpt,
        time_budget_seconds=1e-6,
    )
    r2 = resumed.run(
        functools.partial(marking_trial, outdir=str(second_dir))
    )
    assert r2.budget_exhausted is True
    assert r2.resumed_replications == 2
    assert r2["x"].samples == r1["x"].samples  # checkpointed work only
    # The regression assertion: no trial ever executed.
    assert list(second_dir.iterdir()) == []
