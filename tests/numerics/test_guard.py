"""IterationGuard status taxonomy, best-iterate retention, and the
solver-status collector."""

import numpy as np
import pytest

from repro.numerics import (
    IterationGuard,
    SolverStatus,
    collect_solver_statuses,
    record_status,
)


def drive(guard, residuals, values=None):
    """Feed residuals until the guard terminates; return the status."""
    status = None
    for i, r in enumerate(residuals):
        value = None if values is None else values[i]
        status = guard.update(r, value=value)
        if status is not None:
            return status
    return status


class TestTerminalStatuses:
    def test_converged(self):
        guard = IterationGuard("t", max_iter=100, tol=1e-6)
        status = drive(guard, [1.0, 0.1, 1e-7], values=["a", "b", "c"])
        assert status is SolverStatus.CONVERGED
        assert status.ok
        assert guard.best_value == "c"
        assert guard.iterations == 3

    def test_max_iter(self):
        guard = IterationGuard("t", max_iter=5, tol=0.0)
        status = drive(guard, [1.0 / (k + 1) for k in range(10)])
        assert status is SolverStatus.MAX_ITER
        assert not status.ok
        assert guard.iterations == 5

    def test_stalled_on_flat_residual(self):
        guard = IterationGuard("t", max_iter=1000, tol=1e-9, stall_window=5)
        status = drive(guard, [1.0] * 100)
        assert status is SolverStatus.STALLED
        assert guard.iterations == 6  # best at 1, no new best for 5 more

    def test_oscillation_reads_as_stall(self):
        guard = IterationGuard("t", max_iter=1000, tol=1e-9, stall_window=6)
        status = drive(guard, [1.0, 2.0] * 50)
        assert status is SolverStatus.STALLED

    def test_diverged(self):
        guard = IterationGuard(
            "t", max_iter=1000, tol=1e-9, divergence_factor=10.0
        )
        status = drive(guard, [1.0, 0.5, 100.0])
        assert status is SolverStatus.DIVERGED

    def test_aborted_on_nan(self):
        guard = IterationGuard("t", max_iter=100)
        status = drive(guard, [1.0, float("nan")])
        assert status is SolverStatus.ABORTED

    def test_aborted_on_inf(self):
        guard = IterationGuard("t", max_iter=100)
        assert drive(guard, [np.inf]) is SolverStatus.ABORTED

    def test_explicit_abort(self):
        guard = IterationGuard("t", max_iter=100)
        guard.update(1.0)
        assert guard.abort() is SolverStatus.ABORTED
        assert guard.status is SolverStatus.ABORTED

    def test_detection_can_be_disabled(self):
        guard = IterationGuard(
            "t", max_iter=50, stall_window=None, divergence_factor=None
        )
        status = drive(guard, [1.0] * 50 + [1e9])
        assert status is SolverStatus.MAX_ITER


class TestBestIterate:
    def test_best_value_survives_later_worse_iterates(self):
        guard = IterationGuard(
            "t", max_iter=10, tol=0.0, stall_window=None, divergence_factor=None
        )
        drive(guard, [1.0, 0.01, 0.5, 0.9], values=["w", "best", "x", "y"])
        assert guard.best_value == "best"
        assert guard.best_residual == pytest.approx(0.01)
        assert guard.best_iteration == 2

    def test_converged_value_overrides_best(self):
        # On convergence the *final* iterate is the answer, even if an
        # earlier residual was (numerically) smaller.
        guard = IterationGuard("t", max_iter=10, tol=0.5)
        status = drive(guard, [1.0, 0.4], values=["a", "final"])
        assert status is SolverStatus.CONVERGED
        assert guard.best_value == "final"


class TestDiagnostics:
    def test_fields_and_describe(self):
        guard = IterationGuard("mysolver", max_iter=100, tol=1e-6, tail_length=3)
        drive(guard, [4.0, 3.0, 2.0, 1.0, 1e-7])
        diag = guard.diagnostics(notes=("retry 1",))
        assert diag.solver == "mysolver"
        assert diag.status is SolverStatus.CONVERGED
        assert diag.iterations == 5
        assert diag.residual_tail == (2.0, 1.0, 1e-7)  # tail_length trims
        assert diag.best_iteration == 5
        assert diag.retries == 0
        assert diag.notes == ("retry 1",)
        text = diag.describe()
        assert "mysolver" in text
        assert "converged" in text

    def test_unterminated_guard_reports_max_iter(self):
        guard = IterationGuard("t", max_iter=100)
        guard.update(1.0)
        assert guard.diagnostics().status is SolverStatus.MAX_ITER


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iter": 0},
            {"max_iter": 10, "tol": -1.0},
            {"max_iter": 10, "stall_window": 0},
            {"max_iter": 10, "divergence_factor": 1.0},
            {"max_iter": 10, "tail_length": 0},
        ],
    )
    def test_bad_constructor_args(self, kwargs):
        with pytest.raises(ValueError):
            IterationGuard("t", **kwargs)


class TestStatusCollector:
    def test_record_without_collector_is_noop(self):
        record_status("orphan", SolverStatus.STALLED)  # must not raise

    def test_counts_accumulate(self):
        with collect_solver_statuses() as counts:
            record_status("ba", SolverStatus.CONVERGED)
            record_status("ba", SolverStatus.CONVERGED)
            record_status("ba", SolverStatus.STALLED)
            record_status("fsm", "aborted")
        assert counts == {
            "ba:converged": 2,
            "ba:stalled": 1,
            "fsm:aborted": 1,
        }

    def test_nested_collectors_both_receive(self):
        with collect_solver_statuses() as outer:
            record_status("s", SolverStatus.CONVERGED)
            with collect_solver_statuses() as inner:
                record_status("s", SolverStatus.MAX_ITER)
        assert outer == {"s:converged": 1, "s:max_iter": 1}
        assert inner == {"s:max_iter": 1}

    def test_collector_closes_on_exception(self):
        with pytest.raises(RuntimeError):
            with collect_solver_statuses():
                raise RuntimeError("boom")
        record_status("after", SolverStatus.CONVERGED)  # collector gone


class TestSolverStatus:
    def test_only_converged_is_ok(self):
        assert SolverStatus.CONVERGED.ok
        for status in SolverStatus:
            if status is not SolverStatus.CONVERGED:
                assert not status.ok

    def test_string_valued(self):
        assert SolverStatus.MAX_ITER.value == "max_iter"
        assert SolverStatus("stalled") is SolverStatus.STALLED
