"""Extreme-regime regression suite (stress-marked).

The paper's interesting limits — ``P_d -> 1``, ``P_i + P_d -> 1``,
degenerate transition tables — are exactly where unguarded capacity
solvers NaN out or spin. Every test here asserts the guarded solvers
return *finite* estimates with *honest* statuses; none may raise.
"""

import numpy as np
import pytest

from repro.infotheory import (
    bec_capacity,
    binary_erasure_channel,
    blahut_arimoto,
    blahut_arimoto_guarded,
    converted_channel,
    z_channel,
    z_channel_capacity,
)
from repro.numerics import SolverStatus, collect_solver_statuses

pytestmark = pytest.mark.stress

EXTREME_PD = (0.999, 1.0 - 1e-12)


def assert_honest(result):
    """Finite estimate, finite input distribution, taxonomy status."""
    assert np.isfinite(result.capacity)
    assert result.capacity >= 0.0
    assert np.all(np.isfinite(result.input_distribution))
    assert result.input_distribution.sum() == pytest.approx(1.0)
    assert isinstance(result.status, SolverStatus)
    assert result.converged == (result.status is SolverStatus.CONVERGED)


class TestDeletionLimit:
    @pytest.mark.parametrize("pd", EXTREME_PD)
    def test_erasure_channel_near_pd_one(self, pd):
        w = binary_erasure_channel(pd).transition_matrix
        result = blahut_arimoto_guarded(w)
        assert_honest(result)
        if result.converged:
            tolerance = max(1e-8, 10.0 * result.gap)
            assert abs(result.capacity - bec_capacity(pd)) <= tolerance

    @pytest.mark.parametrize("pd", EXTREME_PD)
    def test_z_channel_near_pd_one(self, pd):
        result = blahut_arimoto_guarded(z_channel(pd).transition_matrix)
        assert_honest(result)
        # The capacity-achieving input mass vanishes as pd -> 1; the
        # solve may honestly report max_iter, but the best-so-far
        # estimate must still be close.
        assert abs(result.capacity - z_channel_capacity(pd)) <= 1e-6

    def test_exact_pd_one_is_zero_capacity(self):
        result = blahut_arimoto_guarded(
            binary_erasure_channel(1.0).transition_matrix
        )
        assert_honest(result)
        assert result.capacity == pytest.approx(0.0, abs=1e-9)


class TestInsertionPlusDeletionLimit:
    def test_pi_plus_pd_approaching_one(self):
        # Composite erase-or-flip channel: survive with prob
        # 1 - pd - pi, flip with prob pi, erase with prob pd. With
        # pi -> (1 - pd)/2 the surviving symbol is a coin flip and
        # capacity collapses to ~0 — the P_i + P_d -> 1 wall.
        pd = 0.999
        pi = (1.0 - pd) / 2.0 - 1e-9
        keep = 1.0 - pd - pi
        w = np.array([[keep, pi, pd], [pi, keep, pd]])
        result = blahut_arimoto_guarded(w)
        assert_honest(result)
        assert result.capacity <= 1e-6

    def test_converted_channel_at_full_insertion(self):
        # insertion_prob = 1 drives the converted M-ary channel to the
        # uniform (zero-capacity) table.
        w = converted_channel(2, 1.0).transition_matrix
        result = blahut_arimoto_guarded(w)
        assert_honest(result)
        assert result.capacity == pytest.approx(0.0, abs=1e-9)


class TestDegenerateTables:
    def test_one_column_channel(self):
        # Every input maps to the same output: capacity exactly 0.
        result = blahut_arimoto_guarded(np.ones((4, 1)))
        assert_honest(result)
        assert result.status is SolverStatus.CONVERGED
        assert result.capacity == pytest.approx(0.0, abs=1e-12)

    def test_duplicate_row_channel(self):
        # Two indistinguishable inputs; capacity of the merged channel.
        w = np.array([[0.9, 0.1], [0.9, 0.1], [0.1, 0.9]])
        result = blahut_arimoto_guarded(w)
        assert_honest(result)
        assert result.converged


class TestHonestPartialAnswers:
    def test_truncated_run_is_finite_with_honest_status(self):
        # Starve the plain (unguarded-ladder) solver of iterations: the
        # status must say so and the best-so-far estimate stays finite.
        result = blahut_arimoto(z_channel(0.999).transition_matrix, max_iter=20)
        assert np.isfinite(result.capacity)
        assert not result.converged
        assert result.status in (
            SolverStatus.MAX_ITER,
            SolverStatus.STALLED,
        )
        assert result.diagnostics is not None
        assert result.diagnostics.iterations == result.iterations

    def test_statuses_surface_through_collector(self):
        grid = [
            binary_erasure_channel(pd).transition_matrix for pd in EXTREME_PD
        ] + [np.ones((3, 1))]
        with collect_solver_statuses() as counts:
            for w in grid:
                result = blahut_arimoto_guarded(w)
                assert np.isfinite(result.capacity)
        recorded = sum(
            count
            for key, count in counts.items()
            if key.startswith("blahut_arimoto:")
        )
        assert recorded == len(grid)
