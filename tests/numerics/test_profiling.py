"""Stage-timing collector semantics (repro.numerics.profiling)."""

from repro.numerics import (
    collect_stage_timings,
    record_stage_seconds,
    stage,
    timing_active,
)


def test_no_collector_is_a_noop():
    assert not timing_active()
    with stage("lattice"):
        pass
    record_stage_seconds("lattice", 1.0)  # silently dropped
    with collect_stage_timings() as totals:
        pass
    assert totals == {}


def test_stage_accumulates_into_open_collector():
    with collect_stage_timings() as totals:
        assert timing_active()
        with stage("lattice"):
            pass
        with stage("lattice"):
            pass
        record_stage_seconds("solver", 0.25)
    assert not timing_active()
    assert totals["lattice"] >= 0.0
    assert totals["solver"] == 0.25


def test_nested_collectors_both_receive_records():
    with collect_stage_timings() as outer:
        record_stage_seconds("a", 1.0)
        with collect_stage_timings() as inner:
            record_stage_seconds("a", 2.0)
        record_stage_seconds("b", 0.5)
    assert inner == {"a": 2.0}
    assert outer == {"a": 3.0, "b": 0.5}


def test_stages_nest_and_sum():
    with collect_stage_timings() as totals:
        with stage("trial"):
            with stage("lattice"):
                pass
    # Inner stage time is attributed to both enclosing names.
    assert set(totals) == {"trial", "lattice"}
    assert totals["trial"] >= totals["lattice"]
