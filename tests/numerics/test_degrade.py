"""degrade_gracefully retry ladder: first-accepted wins, best-ranked
fallback, retries accounting, and status recording."""

import pytest

from repro.numerics import (
    GuardedValue,
    SolverDiagnostics,
    SolverStatus,
    collect_solver_statuses,
    degrade_gracefully,
)


def diag(status, best_residual, retries=0):
    return SolverDiagnostics(
        solver="toy",
        status=status,
        iterations=3,
        residual_tail=(best_residual,),
        best_residual=best_residual,
        best_iteration=1,
        retries=retries,
    )


def make_solve(outcomes):
    """A solve() whose successive calls pop from *outcomes*; records the
    kwargs each call received."""
    calls = []

    def solve(**kwargs):
        calls.append(kwargs)
        status, residual = outcomes[len(calls) - 1]
        return GuardedValue(
            value=float(len(calls)), status=status, diagnostics=diag(status, residual)
        )

    solve.calls = calls
    return solve


class TestLadder:
    def test_first_attempt_accepted_stops_immediately(self):
        solve = make_solve([(SolverStatus.CONVERGED, 1e-12)])
        out = degrade_gracefully(solve, ({"damping": 0.5},), solver="toy")
        assert out.ok
        assert out.value == 1.0
        assert solve.calls == [{}]  # ladder never consulted
        assert out.diagnostics.retries == 0

    def test_adjustments_passed_as_kwargs_in_order(self):
        solve = make_solve(
            [
                (SolverStatus.STALLED, 1e-3),
                (SolverStatus.STALLED, 1e-4),
                (SolverStatus.CONVERGED, 1e-11),
            ]
        )
        ladder = ({"damping": 0.5}, {"damping": 0.9, "tol_scale": 1e4})
        out = degrade_gracefully(solve, ladder, solver="toy")
        assert solve.calls == [{}, {"damping": 0.5}, {"damping": 0.9, "tol_scale": 1e4}]
        assert out.status is SolverStatus.CONVERGED
        assert out.value == 3.0
        assert out.diagnostics.retries == 2

    def test_no_acceptance_returns_best_ranked(self):
        solve = make_solve(
            [
                (SolverStatus.STALLED, 1e-3),
                (SolverStatus.MAX_ITER, 1e-6),  # best residual
                (SolverStatus.STALLED, 1e-4),
            ]
        )
        out = degrade_gracefully(solve, ({}, {}), solver="toy")
        assert out.status is SolverStatus.MAX_ITER
        assert out.value == 2.0  # the middle attempt
        assert out.diagnostics.retries == 2
        assert not out.ok

    def test_custom_accept_statuses(self):
        solve = make_solve([(SolverStatus.MAX_ITER, 1e-3)])
        out = degrade_gracefully(
            solve,
            ({"damping": 0.5},),
            solver="toy",
            accept=(SolverStatus.CONVERGED, SolverStatus.MAX_ITER),
        )
        assert out.status is SolverStatus.MAX_ITER
        assert solve.calls == [{}]

    def test_custom_rank(self):
        solve = make_solve(
            [(SolverStatus.STALLED, 1e-3), (SolverStatus.STALLED, 1e-6)]
        )
        # Rank by value descending: prefer the *first* attempt.
        out = degrade_gracefully(
            solve, ({},), solver="toy", rank=lambda a: a.value
        )
        assert out.value == 1.0

    def test_empty_ladder_single_attempt(self):
        solve = make_solve([(SolverStatus.ABORTED, float("inf"))])
        out = degrade_gracefully(solve, solver="toy")
        assert out.status is SolverStatus.ABORTED
        assert solve.calls == [{}]


class TestStatusRecording:
    def test_final_status_recorded_under_solver_name(self):
        solve = make_solve(
            [(SolverStatus.STALLED, 1e-3), (SolverStatus.CONVERGED, 1e-11)]
        )
        with collect_solver_statuses() as counts:
            degrade_gracefully(solve, ({},), solver="toy")
        # Only the *chosen* attempt's status is recorded, once.
        assert counts == {"toy:converged": 1}

    def test_unconverged_outcome_recorded_honestly(self):
        solve = make_solve([(SolverStatus.STALLED, 1e-3)])
        with collect_solver_statuses() as counts:
            degrade_gracefully(solve, solver="toy")
        assert counts == {"toy:stalled": 1}


class TestGuardedValue:
    def test_ok_property(self):
        assert GuardedValue(1.0, SolverStatus.CONVERGED).ok
        assert not GuardedValue(1.0, SolverStatus.STALLED).ok

    def test_diagnostics_optional(self):
        gv = GuardedValue(0.5, SolverStatus.CONVERGED)
        assert gv.diagnostics is None

    def test_results_without_diagnostics_survive_retries(self):
        # A result object lacking usable diagnostics ranks as +inf but
        # degrade_gracefully must still return it rather than crash.
        calls = []

        def solve(**kwargs):
            calls.append(kwargs)
            return GuardedValue(2.0, SolverStatus.STALLED, diagnostics=None)

        out = degrade_gracefully(solve, ({},), solver="toy")
        assert out.status is SolverStatus.STALLED
        assert len(calls) == 2

    def test_rank_rejects_non_finite_best_residual(self):
        a = GuardedValue(
            1.0, SolverStatus.ABORTED, diagnostics=diag(SolverStatus.ABORTED, float("nan"))
        )
        b = GuardedValue(
            2.0, SolverStatus.STALLED, diagnostics=diag(SolverStatus.STALLED, 0.5)
        )
        outcomes = [a, b]

        def solve(**kwargs):
            return outcomes.pop(0)

        out = degrade_gracefully(solve, ({},), solver="toy")
        assert out is not None
        assert out.value == 2.0  # finite residual beats NaN residual


def test_unconverged_is_not_accepted_by_default():
    with pytest.raises(IndexError):
        # Exhausting the outcomes list proves every ladder step ran: no
        # early acceptance of a non-converged status.
        solve = make_solve([(SolverStatus.STALLED, 1e-3)])
        degrade_gracefully(solve, ({}, {}), solver="toy")
