"""Guarded root bracketing: geometric expansion, Brent translation,
diagnostics on failure, and status recording."""

import numpy as np
import pytest

from repro.numerics import (
    BracketingError,
    SolverStatus,
    collect_solver_statuses,
    expand_bracket,
    guarded_brentq,
)


class TestExpandBracket:
    def test_already_bracketing_interval_returned_unchanged(self):
        lo, hi = expand_bracket(lambda x: 1.0 - x, 0.0, 2.0, hi_cap=100.0)
        assert (lo, hi) == (0.0, 2.0)

    def test_geometric_growth_until_sign_change(self):
        f = lambda x: 10.0 - x  # noqa: E731 - root at 10
        lo, hi = expand_bracket(f, 0.0, 1.0, hi_cap=100.0)
        assert lo == 0.0
        assert hi == 16.0  # 1 -> 2 -> 4 -> 8 -> 16
        assert f(lo) > 0 >= f(hi)

    def test_custom_growth_factor(self):
        lo, hi = expand_bracket(
            lambda x: 50.0 - x, 0.0, 1.0, grow=10.0, hi_cap=1e6
        )
        assert hi == 100.0

    def test_cap_exceeded_raises_with_diagnostics(self):
        with pytest.raises(BracketingError) as excinfo:
            expand_bracket(
                lambda x: 1.0, 0.0, 1.0, hi_cap=64.0, solver="nosign"
            )
        diag = excinfo.value.diagnostics
        assert diag.solver == "nosign"
        assert diag.hi > 64.0
        assert diag.f_hi == 1.0
        assert diag.expansions >= 6
        assert diag.trail  # expansion trail attached
        assert "nosign" in str(excinfo.value)

    def test_non_finite_function_value_raises(self):
        def f(x):
            return 1.0 if x < 4 else float("nan")

        with pytest.raises(BracketingError):
            expand_bracket(f, 0.0, 1.0, hi_cap=1e6)

    def test_failure_records_aborted_status(self):
        with collect_solver_statuses() as counts:
            with pytest.raises(BracketingError):
                expand_bracket(lambda x: 1.0, 0.0, 1.0, hi_cap=8.0, solver="s")
        assert counts == {"s:aborted": 1}

    def test_bracketing_error_is_a_runtime_error(self):
        # Pre-existing `except RuntimeError` handlers must keep working.
        with pytest.raises(RuntimeError):
            expand_bracket(lambda x: 1.0, 0.0, 1.0, hi_cap=2.0)

    def test_bad_arguments(self):
        with pytest.raises(ValueError, match="grow"):
            expand_bracket(lambda x: -x, 0.0, 1.0, grow=1.0, hi_cap=10.0)
        with pytest.raises(ValueError, match="hi > lo"):
            expand_bracket(lambda x: -x, 1.0, 1.0, hi_cap=10.0)


class TestGuardedBrentq:
    def test_finds_root_and_records_converged(self):
        with collect_solver_statuses() as counts:
            root = guarded_brentq(
                lambda x: x**2 - 2.0, 0.0, 2.0, xtol=1e-12, solver="sqrt2"
            )
        assert root == pytest.approx(np.sqrt(2.0), abs=1e-10)
        assert counts == {"sqrt2:converged": 1}

    def test_no_sign_change_translated_to_bracketing_error(self):
        with collect_solver_statuses() as counts:
            with pytest.raises(BracketingError) as excinfo:
                guarded_brentq(
                    lambda x: x + 1.0, 0.0, 1.0, xtol=1e-9, solver="bad"
                )
        diag = excinfo.value.diagnostics
        assert (diag.lo, diag.hi) == (0.0, 1.0)
        assert diag.f_lo == 1.0
        assert diag.f_hi == 2.0
        assert counts == {"bad:aborted": 1}
        assert excinfo.value.__cause__ is not None

    def test_composes_with_expand_bracket(self):
        f = lambda x: np.exp(-x) - 0.25  # noqa: E731 - root at ln 4
        lo, hi = expand_bracket(f, 0.0, 0.5, hi_cap=100.0, solver="chain")
        root = guarded_brentq(f, lo, hi, xtol=1e-12, solver="chain")
        assert root == pytest.approx(np.log(4.0), abs=1e-10)


class TestDiagnosticsDescribe:
    def test_describe_mentions_interval_and_expansions(self):
        try:
            expand_bracket(lambda x: 2.0, 0.0, 1.0, hi_cap=4.0, solver="d")
        except BracketingError as exc:
            text = exc.diagnostics.describe()
            assert "d:" in text
            assert "expansions" in text
        else:  # pragma: no cover - the call above must raise
            pytest.fail("expected BracketingError")
