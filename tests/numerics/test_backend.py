"""Kernel-backend registry: registration, resolution order, overrides."""

import numpy as np
import pytest

from repro.numerics import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    get_backend,
    numpy_step,
    register_backend,
    use_backend,
)
from repro.numerics.backend import _REGISTRY
from repro.numerics.safeops import safe_log2


def _dummy_step(p, w, log_w):
    return np.zeros(p.shape)


@pytest.fixture
def scratch_backend():
    """A throwaway backend registered for one test, then removed."""
    backend = KernelBackend(
        name="scratch", step=_dummy_step, description="test backend"
    )
    register_backend(backend)
    try:
        yield backend
    finally:
        _REGISTRY.pop("scratch", None)


class TestRegistry:
    def test_numpy_always_available_and_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert get_backend("numpy").step is numpy_step

    def test_default_resolution_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"
        assert get_backend(None).name == "numpy"

    def test_backend_instance_passes_through(self):
        backend = KernelBackend(name="inline", step=_dummy_step)
        assert get_backend(backend) is backend

    def test_unknown_name_raises_listing_available(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="numpy"):
            get_backend("no-such-backend")

    def test_duplicate_registration_rejected(self, scratch_backend):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(scratch_backend)
        # replace=True is the explicit escape hatch.
        register_backend(scratch_backend, replace=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            KernelBackend(name="", step=_dummy_step)
        with pytest.raises(ValueError, match="non-empty"):
            KernelBackend(name="   ", step=_dummy_step)

    def test_registered_backend_listed(self, scratch_backend):
        assert "scratch" in available_backends()
        assert get_backend("scratch") is scratch_backend


class TestResolutionOrder:
    def test_env_var_selects_backend(self, monkeypatch, scratch_backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scratch")
        assert get_backend().name == "scratch"

    def test_env_var_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "nmupy")
        with pytest.raises(ValueError, match="nmupy"):
            get_backend()

    def test_empty_env_var_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert get_backend().name == "numpy"

    def test_use_backend_beats_env(self, monkeypatch, scratch_backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        with use_backend("scratch") as backend:
            assert backend is scratch_backend
            assert get_backend().name == "scratch"
        assert get_backend().name == "numpy"

    def test_use_backend_nests_innermost_wins(self, scratch_backend):
        with use_backend("numpy"):
            with use_backend("scratch"):
                assert get_backend().name == "scratch"
            assert get_backend().name == "numpy"

    def test_explicit_name_beats_override(self, scratch_backend):
        with use_backend("scratch"):
            assert get_backend("numpy").name == "numpy"

    def test_override_popped_on_error(self, scratch_backend):
        with pytest.raises(RuntimeError):
            with use_backend("scratch"):
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"


class TestNumpyStep:
    def test_matches_scalar_divergence(self):
        rng = np.random.default_rng(3)
        k, nx, ny = 4, 3, 5
        w = rng.random((k, nx, ny))
        w /= w.sum(axis=2, keepdims=True)
        p = rng.random((k, nx))
        p /= p.sum(axis=1, keepdims=True)
        log_w = np.where(w > 0, safe_log2(w), 0.0)
        d = numpy_step(p, w, log_w)
        assert d.shape == (k, nx)
        for i in range(k):
            q = p[i] @ w[i]
            expected = np.einsum(
                "xy,xy->x", w[i], log_w[i] - safe_log2(q)[None, :]
            )
            np.testing.assert_allclose(d[i], expected, atol=1e-13)

    def test_numba_loader_declines_or_loads(self):
        # Without numba installed the bundled entry point must decline
        # (return None) rather than raise; with it, a working backend.
        from repro.numerics.backend_numba import load_backend

        backend = load_backend()
        if backend is None:
            pytest.skip("numba not installed — loader declined cleanly")
        assert backend.name == "numba"
        rng = np.random.default_rng(5)
        w = rng.random((2, 3, 4))
        w /= w.sum(axis=2, keepdims=True)
        p = np.full((2, 3), 1.0 / 3.0)
        log_w = np.where(w > 0, safe_log2(w), 0.0)
        np.testing.assert_allclose(
            backend.step(p, w, log_w), numpy_step(p, w, log_w), atol=1e-12
        )
