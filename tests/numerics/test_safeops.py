"""Log-domain primitives: flooring, domain validation, stable reductions."""

import numpy as np
import pytest

from repro.numerics import (
    LOG_FLOOR,
    logsumexp2,
    masked_log2,
    normalized_exp,
    normalized_exp2,
    safe_log,
    safe_log2,
)


class TestSafeLog:
    def test_positive_values_pass_through(self):
        x = np.array([0.5, 1.0, 2.0])
        assert np.allclose(safe_log(x), np.log(x))
        assert np.allclose(safe_log2(x), np.log2(x))

    def test_zero_maps_to_log_of_floor(self):
        assert safe_log(0.0) == pytest.approx(np.log(LOG_FLOOR))
        assert safe_log2(0.0) == pytest.approx(np.log2(LOG_FLOOR))
        assert np.isfinite(safe_log(0.0))
        assert np.isfinite(safe_log2(0.0))

    def test_custom_floor(self):
        assert safe_log(0.0, floor=1e-12) == pytest.approx(np.log(1e-12))
        assert safe_log2(1e-20, floor=1e-12) == pytest.approx(np.log2(1e-12))

    def test_shape_preserved(self):
        x = np.zeros((3, 4))
        assert safe_log(x).shape == (3, 4)
        assert safe_log2(x).shape == (3, 4)

    def test_negative_input_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            safe_log(-0.1)
        with pytest.raises(ValueError, match="non-negative"):
            safe_log2(np.array([0.5, -1e-9]))

    def test_non_positive_floor_raises(self):
        with pytest.raises(ValueError, match="floor must be positive"):
            safe_log(0.5, floor=0.0)
        with pytest.raises(ValueError, match="floor must be positive"):
            safe_log2(0.5, floor=-1.0)

    def test_underflowed_probability_stays_finite(self):
        # The motivating case: a 5e-324 subnormal forward-backward mass.
        assert np.isfinite(safe_log(5e-324))
        assert np.isfinite(safe_log2(5e-324))


class TestMaskedLog2:
    def test_positive_entries_get_plain_log2(self):
        x = np.array([0.25, 0.5, 1.0, 2.0])
        assert np.array_equal(masked_log2(x), np.log2(x))

    def test_zero_entries_are_exactly_zero(self):
        out = masked_log2(np.array([0.0, 0.5, 0.0]))
        assert out[0] == 0.0 and out[2] == 0.0
        assert out[1] == np.log2(0.5)

    def test_matches_the_idiom_it_replaces(self):
        # The shared helper must be bitwise what every call site used
        # to spell as np.where(w > 0, safe_log2(w), 0.0).
        rng = np.random.default_rng(7)
        w = rng.random((5, 8))
        w[w < 0.3] = 0.0
        assert np.array_equal(
            masked_log2(w), np.where(w > 0, safe_log2(w), 0.0)
        )

    def test_subnormal_entries_stay_finite(self):
        # A 5e-324 subnormal is > 0, so it is logged — through the
        # floor, keeping the result finite instead of -inf.
        out = masked_log2(np.array([5e-324, 0.0]))
        assert np.isfinite(out[0])
        assert out[0] == np.log2(LOG_FLOOR)
        assert out[1] == 0.0

    def test_custom_floor(self):
        out = masked_log2(np.array([1e-20]), floor=1e-12)
        assert out[0] == pytest.approx(np.log2(1e-12))

    def test_negative_input_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            masked_log2(np.array([0.5, -1e-9]))

    def test_non_positive_floor_raises(self):
        with pytest.raises(ValueError, match="floor must be positive"):
            masked_log2(np.array([0.5]), floor=0.0)

    def test_shape_preserved(self):
        assert masked_log2(np.zeros((3, 4))).shape == (3, 4)


class TestLogSumExp2:
    def test_matches_reference_on_moderate_values(self):
        a = np.array([-3.0, -1.0, 0.5, 2.0])
        assert logsumexp2(a) == pytest.approx(np.log2(np.sum(np.exp2(a))))

    def test_no_overflow_on_large_logits(self):
        assert logsumexp2(np.array([1000.0, 1000.0])) == pytest.approx(1001.0)

    def test_mixed_neg_inf_entries_ignored(self):
        a = np.array([-np.inf, 0.0, 1.0])
        assert logsumexp2(a) == pytest.approx(np.log2(1.0 + 2.0))

    def test_all_neg_inf_returns_neg_inf(self):
        assert logsumexp2(np.array([-np.inf, -np.inf])) == -np.inf

    def test_axis_reduction(self):
        a = np.array([[0.0, 1.0], [-np.inf, -np.inf]])
        out = logsumexp2(a, axis=1)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(np.log2(3.0))
        assert out[1] == -np.inf

    def test_scalar_return_for_full_reduction(self):
        assert isinstance(logsumexp2([0.0, 0.0]), float)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            logsumexp2(np.array([]))


class TestNormalizedExp:
    def test_matches_reference_softmax(self):
        logits = np.array([-1.0, 0.0, 2.5])
        expected2 = np.exp2(logits) / np.exp2(logits).sum()
        expected_e = np.exp(logits) / np.exp(logits).sum()
        assert np.allclose(normalized_exp2(logits), expected2)
        assert np.allclose(normalized_exp(logits), expected_e)

    def test_sums_to_one_under_extreme_logits(self):
        logits = np.array([0.0, -2000.0, 3000.0])
        for fn in (normalized_exp2, normalized_exp):
            p = fn(logits)
            assert np.all(np.isfinite(p))
            assert p.sum() == pytest.approx(1.0)
            assert p[2] == pytest.approx(1.0)

    def test_all_neg_inf_degrades_to_uniform(self):
        p = normalized_exp2(np.array([-np.inf, -np.inf, -np.inf]))
        assert np.allclose(p, 1.0 / 3.0)
        p = normalized_exp(np.array([-np.inf, -np.inf]))
        assert np.allclose(p, 0.5)

    def test_axis_handling(self):
        logits = np.array([[0.0, 0.0], [-np.inf, -np.inf]])
        p = normalized_exp2(logits, axis=1)
        assert np.allclose(p, 0.5)
        p0 = normalized_exp2(np.array([[0.0], [1.0]]), axis=0)
        assert p0.sum() == pytest.approx(1.0)
