"""Property suite for the Kraskov kNN MI estimators.

Anchors the estimators on channels with closed-form mutual
information — independence (MI = 0), noiseless M-ary (MI = log2 M),
the binary symmetric channel (MI = 1 - h(p)) — across sample sizes,
and pins the cKDTree fast paths to their naive O(n^2) oracles
bit-for-bit.

Documented bias trend (mixed estimator, BSC(0.1), capacity-achieving
uniform input, seed-averaged): the estimate is biased low by an amount
that shrinks with both n and k; with the self-exclusive counting
convention used here the residual bias at k=8 is ~0.02 bits at n=512
and ~0.005 bits at n=4096 — the margin the E17 agreement gate
(0.05 bits at n=4096) rests on. The parametrized tolerances below
encode that trend: looser at small n, tight at large n.
"""

import numpy as np
import pytest

from repro.estimation import (
    ksg_mutual_information,
    ksg_mutual_information_reference,
    mixed_mi_contributions,
    mixed_mutual_information,
    mixed_mutual_information_reference,
    tie_break_jitter,
)
from repro.simulation.rng import RngFactory


def _h2(p: float) -> float:
    return float(-p * np.log2(p) - (1 - p) * np.log2(1 - p))


def _bsc_pairs(n: int, crossover: float, factory: RngFactory):
    x = factory.fresh("x").integers(0, 2, n)
    flip = factory.fresh("flip").random(n) < crossover
    return x, np.where(flip, 1 - x, x).astype(float)


class TestMixedEstimatorAnchors:
    @pytest.mark.parametrize("n", [512, 2048])
    def test_independent_pairs_give_zero(self, n):
        factory = RngFactory(101)
        x = factory.fresh("x").integers(0, 2, n)
        y = factory.fresh("y").normal(size=n)  # independent of x
        mi = mixed_mutual_information(x, y, k=8, rng=factory.fresh("j"))
        assert abs(mi) < 0.05

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_noiseless_mary_gives_log2_m(self, m):
        factory = RngFactory(202 + m)
        x = factory.fresh("x").integers(0, m, 2048)
        mi = mixed_mutual_information(
            x, x.astype(float), k=8, rng=factory.fresh("j")
        )
        assert mi == pytest.approx(np.log2(m), abs=0.05)

    @pytest.mark.parametrize(
        "n,tol",
        [(512, 0.08), (2048, 0.05), (4096, 0.03)],
        ids=["n512", "n2048", "n4096"],
    )
    def test_bsc_tracks_closed_form_with_shrinking_bias(self, n, tol):
        # The tolerance ladder IS the documented bias trend: the
        # absolute error bound tightens as n grows.
        crossover = 0.1
        truth = 1.0 - _h2(crossover)
        factory = RngFactory(n)
        x, y = _bsc_pairs(n, crossover, factory)
        mi = mixed_mutual_information(x, y, k=8, rng=factory.fresh("j"))
        assert mi == pytest.approx(truth, abs=tol)

    def test_bias_shrinks_with_k(self):
        # At fixed n the mixed estimator's systematic error decreases
        # (weakly, over seed-averages) as k grows; check the coarse
        # ordering on an averaged batch to avoid flaking on one draw.
        crossover = 0.1
        truth = 1.0 - _h2(crossover)
        errs = {}
        for k in (4, 16):
            batch = []
            for seed in range(5):
                factory = RngFactory(1000 + seed)
                x, y = _bsc_pairs(2048, crossover, factory)
                batch.append(
                    mixed_mutual_information(
                        x, y, k=k, rng=factory.fresh("j")
                    )
                )
            errs[k] = abs(float(np.mean(batch)) - truth)
        assert errs[16] <= errs[4] + 0.01

    def test_contributions_mean_is_estimate(self):
        factory = RngFactory(7)
        x, y = _bsc_pairs(600, 0.2, factory)
        xi = mixed_mi_contributions(x, y, k=6, rng=factory.fresh("j"))
        mi = mixed_mutual_information(x, y, k=6, rng=factory.fresh("j"))
        assert float(np.mean(xi)) == mi


class TestKsg1Anchors:
    def test_independent_gaussians_give_zero(self):
        factory = RngFactory(11)
        u = factory.fresh("u").normal(size=1500)
        v = factory.fresh("v").normal(size=1500)
        mi = ksg_mutual_information(u, v, k=4, rng=factory.fresh("j"))
        assert abs(mi) < 0.05

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_correlated_gaussians_track_closed_form(self, rho):
        # I(X;Y) = -0.5 log2(1 - rho^2) for a bivariate Gaussian.
        factory = RngFactory(int(rho * 100))
        n = 3000
        u = factory.fresh("u").normal(size=n)
        w = factory.fresh("w").normal(size=n)
        v = rho * u + np.sqrt(1 - rho**2) * w
        truth = -0.5 * np.log2(1 - rho**2)
        mi = ksg_mutual_information(u, v, k=4, rng=factory.fresh("j"))
        assert mi == pytest.approx(truth, abs=0.1)


class TestOracleParity:
    """The tree paths must match the O(n^2) scans bit-for-bit."""

    def test_mixed_matches_reference(self):
        factory = RngFactory(42)
        x, y = _bsc_pairs(700, 0.15, factory)
        fast = mixed_mutual_information(x, y, k=5, rng=factory.fresh("j"))
        slow = mixed_mutual_information_reference(
            x, y, k=5, rng=factory.fresh("j")
        )
        assert fast == slow

    def test_mixed_contributions_match_reference(self):
        factory = RngFactory(43)
        x = factory.fresh("x").integers(0, 3, 500)
        y = x + 0.4 * factory.fresh("n").normal(size=500)
        fast = mixed_mi_contributions(x, y, k=4, rng=factory.fresh("j"))
        slow = mixed_mutual_information_reference(
            x, y, k=4, rng=factory.fresh("j"), return_contributions=True
        )
        assert np.array_equal(fast, slow)

    def test_ksg1_matches_reference(self):
        factory = RngFactory(44)
        u = factory.fresh("u").normal(size=400)
        v = u + 0.7 * factory.fresh("v").normal(size=400)
        fast = ksg_mutual_information(u, v, k=3, rng=factory.fresh("j"))
        slow = ksg_mutual_information_reference(
            u, v, k=3, rng=factory.fresh("j")
        )
        assert fast == slow


class TestDeterminismAndJitter:
    def test_same_stream_position_is_bit_identical(self):
        factory_a = RngFactory(9)
        factory_b = RngFactory(9)
        x = factory_a.fresh("x").integers(0, 2, 400)
        _ = factory_b.fresh("x").integers(0, 2, 400)
        y = x.astype(float)
        a = mixed_mutual_information(x, y, k=4, rng=factory_a.fresh("j"))
        b = mixed_mutual_information(x, y, k=4, rng=factory_b.fresh("j"))
        assert a == b

    def test_jitter_is_tiny_and_deterministic(self):
        values = np.array([0.0, 1.0, 1.0, 2.0])
        a = tie_break_jitter(values, RngFactory(3).fresh("j"))
        b = tie_break_jitter(values, RngFactory(3).fresh("j"))
        assert np.array_equal(a, b)
        assert np.max(np.abs(a.ravel() - values)) < 1e-9

    def test_discrete_ties_do_not_crash_or_blow_up(self):
        # A fully discrete y with massive tie classes is the exact
        # case the jitter exists for.
        factory = RngFactory(5)
        x = factory.fresh("x").integers(0, 2, 1000)
        mi = mixed_mutual_information(
            x, x.astype(float), k=8, rng=factory.fresh("j")
        )
        assert mi == pytest.approx(1.0, abs=0.05)


class TestValidation:
    def test_empty_inputs_rejected(self):
        rng = RngFactory(1).fresh("j")
        with pytest.raises(ValueError, match="non-empty"):
            mixed_mutual_information(
                np.array([], dtype=int), np.array([]), rng=rng
            )

    def test_non_integer_labels_rejected(self):
        rng = RngFactory(1).fresh("j")
        with pytest.raises(ValueError, match="integer"):
            mixed_mutual_information(
                np.array([0.5, 1.5]), np.array([1.0, 2.0]), rng=rng
            )

    def test_length_mismatch_rejected(self):
        rng = RngFactory(1).fresh("j")
        with pytest.raises(ValueError, match="same number"):
            mixed_mutual_information(
                np.array([0, 1, 0]), np.array([1.0, 2.0]), rng=rng
            )

    def test_small_symbol_class_rejected(self):
        rng = RngFactory(1).fresh("j")
        x = np.array([0] * 50 + [1] * 3)
        y = x.astype(float)
        with pytest.raises(ValueError, match="needs more than k"):
            mixed_mutual_information(x, y, k=8, rng=rng)

    def test_non_finite_samples_rejected(self):
        rng = RngFactory(1).fresh("j")
        x = np.array([0, 1] * 20)
        y = x.astype(float)
        y[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            mixed_mutual_information(x, y, k=2, rng=rng)

    def test_too_few_samples_for_k_rejected(self):
        rng = RngFactory(1).fresh("j")
        with pytest.raises(ValueError, match="need more than"):
            ksg_mutual_information(
                np.arange(4.0), np.arange(4.0), k=4, rng=rng
            )
