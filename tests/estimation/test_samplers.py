"""Sampler adapters: protocol conformance, determinism, semantics."""

import numpy as np
import pytest

from repro.estimation import (
    ChannelSampler,
    DMCSampler,
    PacketGapSampler,
    SchedulerTimingSampler,
    TimedDMCSampler,
    bsc_sampler,
    mary_sampler,
)
from repro.simulation.rng import RngFactory

ALL_SAMPLERS = [
    bsc_sampler(0.1),
    mary_sampler(4, 0.2),
    DMCSampler([[0.7, 0.3], [0.2, 0.8]]),
    TimedDMCSampler([[0.9, 0.1], [0.1, 0.9]], [1.0, 2.5]),
    SchedulerTimingSampler((1, 2, 4), 0.2),
    PacketGapSampler((1.0, 2.0), loss_prob=0.1, jitter_std=0.05),
]


@pytest.mark.parametrize(
    "sampler", ALL_SAMPLERS, ids=lambda s: type(s).__name__
)
class TestProtocol:
    def test_conforms_to_protocol(self, sampler):
        assert isinstance(sampler, ChannelSampler)

    def test_sample_shape_and_determinism(self, sampler):
        m = sampler.num_symbols
        x = RngFactory(1).fresh("x").integers(0, m, 200)
        a = sampler.sample(x, RngFactory(2).fresh("s"))
        b = sampler.sample(x, RngFactory(2).fresh("s"))
        assert a.shape == (200,)
        assert np.array_equal(a, b)
        assert np.all(np.isfinite(a))

    def test_durations_positive_and_sized(self, sampler):
        tau = sampler.symbol_durations()
        assert tau.shape == (sampler.num_symbols,)
        assert np.all(tau > 0)


class TestDMCSampler:
    def test_empirical_transition_matches_matrix(self):
        sampler = DMCSampler([[0.7, 0.3], [0.2, 0.8]])
        x = np.repeat(np.arange(2), 20000)
        y = sampler.sample(x, RngFactory(3).fresh("s"))
        for s in range(2):
            frac = float(np.mean(y[x == s] == 1))
            assert frac == pytest.approx(
                sampler.transition[s][1], abs=0.02
            )

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DMCSampler([[0.7, 0.2], [0.2, 0.8]])
        with pytest.raises(ValueError, match="finite"):
            DMCSampler([[np.nan, 1.0], [0.5, 0.5]])
        with pytest.raises(ValueError, match="rectangular"):
            DMCSampler([[1.0], [0.5, 0.5]])

    def test_bsc_helper_validates(self):
        with pytest.raises(ValueError):
            bsc_sampler(1.5)

    def test_mary_helper_shape(self):
        sampler = mary_sampler(8)
        assert sampler.num_symbols == 8
        with pytest.raises(ValueError, match="at least 2"):
            mary_sampler(1)


class TestTimedDMCSampler:
    def test_duration_validation(self):
        with pytest.raises(ValueError, match="match the input"):
            TimedDMCSampler([[1.0, 0.0], [0.0, 1.0]], [1.0])
        with pytest.raises(ValueError, match="positive"):
            TimedDMCSampler([[1.0, 0.0], [0.0, 1.0]], [1.0, -2.0])

    def test_durations_surface(self):
        sampler = TimedDMCSampler([[1.0, 0.0], [0.0, 1.0]], [1.0, 2.5])
        assert np.array_equal(sampler.symbol_durations(), [1.0, 2.5])


class TestSchedulerTimingSampler:
    def test_noiseless_gaps_equal_bursts(self):
        sampler = SchedulerTimingSampler((1, 2, 4))
        x = np.array([0, 1, 2, 2, 0])
        y = sampler.sample(x, RngFactory(1).fresh("s"))
        assert np.array_equal(y, [1.0, 2.0, 4.0, 4.0, 1.0])

    def test_preemption_only_stretches(self):
        sampler = SchedulerTimingSampler((1, 2, 4), 0.4)
        x = RngFactory(2).fresh("x").integers(0, 3, 500)
        y = sampler.sample(x, RngFactory(2).fresh("s"))
        holds = np.asarray((1, 2, 4))[x]
        assert np.all(y >= holds)  # one-sided noise, never shrinks

    def test_expected_duration_accounts_for_stretch(self):
        sampler = SchedulerTimingSampler((1, 2, 4), 0.5)
        # hold / (1 - q) + 1 receiver quantum
        assert np.allclose(sampler.symbol_durations(), [3.0, 5.0, 9.0])

    def test_reuses_simulator_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SchedulerTimingSampler((2, 1))
        with pytest.raises(ValueError, match="preempt_prob"):
            SchedulerTimingSampler((1, 2), 1.0)


class TestPacketGapSampler:
    def test_lossless_gaps_are_jittered_durations(self):
        sampler = PacketGapSampler((1.0, 2.0))
        x = np.array([0, 1, 1, 0])
        y = sampler.sample(x, RngFactory(4).fresh("s"))
        assert np.array_equal(y, [1.0, 2.0, 2.0, 1.0])

    def test_deleted_symbols_get_merged_gap(self):
        sampler = PacketGapSampler((1.0, 2.0), loss_prob=0.4)
        x = RngFactory(5).fresh("x").integers(0, 2, 300)
        y = sampler.sample(x, RngFactory(5).fresh("s"))
        durations = np.asarray((1.0, 2.0))
        # Every output is an observed gap: at least as long as some
        # sent gap, and any value above max(durations) must be a merge
        # (sum of >= 2 sent gaps).
        assert np.all(y >= durations[0] - 1e-9)
        merged = y > durations[1] + 1e-9
        assert np.any(merged)  # loss at 0.4 over 300 symbols: certain
        assert np.all(y[merged] >= 2 * durations[0] - 1e-9)

    def test_all_interior_lost_flow_is_finite(self):
        # Degenerate path: with every interior packet lost the
        # receiver sees nothing — outputs must still be finite and
        # deterministic, not NaN.
        sampler = PacketGapSampler((1.0, 2.0), loss_prob=0.999999)
        x = np.array([0, 1, 0])
        y = sampler.sample(x, RngFactory(6).fresh("s"))
        assert y.shape == (3,)
        assert np.all(np.isfinite(y))

    def test_prob_validation(self):
        with pytest.raises(ValueError, match="loss_prob"):
            PacketGapSampler((1.0, 2.0), loss_prob=1.5)
        with pytest.raises(ValueError, match="jitter_std"):
            PacketGapSampler((1.0, 2.0), jitter_std=-0.1)
