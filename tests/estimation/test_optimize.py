"""Capacity optimizer: projection, convergence, determinism, caching."""

import numpy as np
import pytest

from repro.estimation import (
    DMCSampler,
    bsc_sampler,
    estimate_sample_capacity,
    mary_sampler,
    project_to_simplex,
)
from repro.estimation.optimize import ESTIMATE_FN_ID, SOLVER_NAME
from repro.infotheory.blahut_arimoto import blahut_arimoto
from repro.numerics import SolverStatus, collect_solver_statuses
from repro.numerics.profiling import collect_stage_timings
from repro.store import (
    ResultStore,
    reset_store_counters,
    store_counters,
    use_store,
)


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_store_counters()
    yield
    reset_store_counters()


class TestSimplexProjection:
    def test_already_on_simplex_is_fixed_point(self):
        p = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_to_simplex(p), p)

    @pytest.mark.parametrize("floor", [0.0, 0.01, 0.1])
    def test_projection_is_feasible(self, floor):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.normal(size=5) * 3
            p = project_to_simplex(v, floor)
            assert p.sum() == pytest.approx(1.0)
            assert np.all(p >= floor - 1e-12)

    def test_projection_minimizes_distance(self):
        # Compare against a dense grid on the 2-simplex.
        v = np.array([0.9, 0.4, -0.1])
        p = project_to_simplex(v)
        grid = [
            np.array([a, b, 1 - a - b])
            for a in np.linspace(0, 1, 101)
            for b in np.linspace(0, 1 - a, max(2, int((1 - a) * 100) + 1))
        ]
        best = min(grid, key=lambda q: float(np.sum((q - v) ** 2)))
        assert np.sum((p - v) ** 2) <= np.sum((best - v) ** 2) + 1e-6

    def test_infeasible_floor_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            project_to_simplex(np.ones(4), floor=0.3)


class TestEstimateAgainstBlahutArimoto:
    """The tier-1 agreement gate, asserted at the API level (E17
    asserts it again at the experiment level)."""

    def test_bsc_within_gate_at_4096(self):
        sampler = bsc_sampler(0.1)
        exact = blahut_arimoto(np.asarray(sampler.transition))
        result = estimate_sample_capacity(sampler, n_samples=4096, seed=0)
        assert abs(result.capacity - exact.capacity) <= 0.05

    def test_four_symbol_within_gate_at_4096(self):
        rows = (
            (0.85, 0.05, 0.05, 0.05),
            (0.05, 0.85, 0.05, 0.05),
            (0.05, 0.05, 0.85, 0.05),
            (0.10, 0.10, 0.40, 0.40),
        )
        exact = blahut_arimoto(np.asarray(rows))
        result = estimate_sample_capacity(
            DMCSampler(rows), n_samples=4096, seed=0
        )
        assert abs(result.capacity - exact.capacity) <= 0.05
        # The optimizer must also have moved toward BA's maximizer:
        # the skewed fourth symbol gets down-weighted.
        assert result.input_distribution[3] < 0.15

    def test_noiseless_4ary_near_two_bits(self):
        result = estimate_sample_capacity(
            mary_sampler(4), n_samples=2048, seed=1
        )
        assert result.capacity == pytest.approx(2.0, abs=0.05)
        assert result.mean_time == pytest.approx(1.0)


class TestDeterminismAndDiagnostics:
    def test_repeat_runs_bit_identical(self):
        sampler = bsc_sampler(0.2)
        a = estimate_sample_capacity(sampler, n_samples=1024, seed=7)
        b = estimate_sample_capacity(sampler, n_samples=1024, seed=7)
        assert a.capacity == b.capacity
        assert np.array_equal(a.input_distribution, b.input_distribution)
        assert a.split_estimates == b.split_estimates
        assert a.half_sample_mi == b.half_sample_mi

    def test_different_seed_different_draws(self):
        sampler = bsc_sampler(0.2)
        a = estimate_sample_capacity(sampler, n_samples=1024, seed=7)
        b = estimate_sample_capacity(sampler, n_samples=1024, seed=8)
        assert a.capacity != b.capacity  # same channel, fresh noise

    def test_status_recorded_and_diagnostics_noted(self):
        with collect_solver_statuses() as counts:
            result = estimate_sample_capacity(
                bsc_sampler(0.1), n_samples=1024, seed=0
            )
        key = f"{SOLVER_NAME}:{result.status.value}"
        assert counts.get(key) == 1
        notes = result.diagnostics.notes
        assert any(n.startswith("split_even=") for n in notes)
        assert any(n.startswith("split_odd=") for n in notes)
        assert any(n.startswith("half_sample_mi=") for n in notes)

    def test_split_fields_populated(self):
        result = estimate_sample_capacity(
            bsc_sampler(0.1), n_samples=1024, seed=0
        )
        even, odd = result.split_estimates
        assert np.isfinite(even) and np.isfinite(odd)
        assert result.split_spread == abs(even - odd)
        # Subsample variance at n=1024 is small but nonzero.
        assert 0 < result.split_spread < 0.2
        # Half-sample estimate exists and is in a sane range.
        assert np.isfinite(result.half_sample_mi)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            estimate_sample_capacity(mary_sampler(8), n_samples=128)


class TestStoreReplay:
    def test_warm_replay_hits_store_with_zero_optimizer_work(self, tmp_path):
        sampler = bsc_sampler(0.15)
        store = ResultStore(tmp_path)
        with use_store(store):
            cold = estimate_sample_capacity(sampler, n_samples=1024, seed=3)
            assert store_counters() == {f"{ESTIMATE_FN_ID}:miss": 1}
            with collect_stage_timings() as stages:
                with collect_solver_statuses() as counts:
                    warm = estimate_sample_capacity(
                        sampler, n_samples=1024, seed=3
                    )
        # Answered from the store: no optimize stage ran — zero
        # optimizer iterations paid — and the stored status replayed
        # into the collector exactly as the cold solve recorded it.
        assert store_counters()[f"{ESTIMATE_FN_ID}:hit"] == 1
        assert "estimation:optimize" not in stages
        assert counts == {f"{SOLVER_NAME}:{cold.status.value}": 1}
        assert warm.capacity == cold.capacity
        assert np.array_equal(
            warm.input_distribution, cold.input_distribution
        )
        assert warm.iterations == cold.iterations
        assert warm.status is cold.status or warm.status == cold.status

    def test_key_distinguishes_sampler_and_knobs(self, tmp_path):
        store = ResultStore(tmp_path)
        with use_store(store):
            estimate_sample_capacity(bsc_sampler(0.1), n_samples=1024)
            estimate_sample_capacity(bsc_sampler(0.2), n_samples=1024)
            estimate_sample_capacity(bsc_sampler(0.1), n_samples=2048)
        assert store_counters() == {f"{ESTIMATE_FN_ID}:miss": 3}

    def test_no_store_is_pure_passthrough(self):
        result = estimate_sample_capacity(
            bsc_sampler(0.1), n_samples=1024, seed=0
        )
        assert store_counters() == {}
        assert isinstance(result.status, SolverStatus)
