"""The ``repro lint`` CLI subcommand: exit codes and output formats."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_path_exits_zero(capsys):
    target = str(FIXTURES / "prob001_good.py")
    assert main(["lint", target]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_violations_exit_one_with_file_line(capsys):
    target = str(FIXTURES / "prob001_bad.py")
    assert main(["lint", target]) == 1
    out = capsys.readouterr().out
    assert "PROB001" in out
    assert "prob001_bad.py:" in out


def test_rule_filter(capsys):
    target = str(FIXTURES / "prob001_bad.py")
    assert main(["lint", target, "--rule", "DET001"]) == 0
    assert main(["lint", target, "--rule", "DET001", "--rule", "PROB001"]) == 1


def test_json_format(capsys):
    target = str(FIXTURES / "prob002_bad.py")
    assert main(["lint", target, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and len(payload) == 1
    record = payload[0]
    assert record["rule_id"] == "PROB002"
    assert record["file"].endswith("prob002_bad.py")
    assert record["line"] >= 1
    assert "message" in record


def test_unknown_rule_exits_two(capsys):
    assert main(["lint", "--rule", "NOPE999"]) == 2
    assert "NOPE999" in capsys.readouterr().err


def test_project_lint_is_clean(capsys):
    """`repro lint` with no paths lints the whole repository."""
    assert main(["lint"]) == 0
