"""Project-scoped rules (REG001, API001) against fixture mini-trees."""

from pathlib import Path

from repro.analysis import lint_project

FIXTURES = Path(__file__).parent / "fixtures"


class TestExperimentWiring:
    def test_fully_wired_tree_is_clean(self):
        assert lint_project(FIXTURES / "reg001_good", rule_ids=["REG001"]) == []

    def test_unwired_experiment_flagged_on_all_three_surfaces(self):
        findings = lint_project(FIXTURES / "reg001_bad", rule_ids=["REG001"])
        messages = [f.message for f in findings]
        assert len(findings) == 3, "\n".join(f.format() for f in findings)
        assert any("registry" in m for m in messages)
        assert any("benchmark" in m for m in messages)
        assert any("EXPERIMENTS.md" in m for m in messages)
        assert all(f.rule_id == "REG001" for f in findings)


class TestPublicApi:
    def test_covered_tree_is_clean(self):
        assert lint_project(FIXTURES / "api001_good", rule_ids=["API001"]) == []

    def test_phantom_export_and_uncovered_package_flagged(self):
        findings = lint_project(FIXTURES / "api001_bad", rule_ids=["API001"])
        messages = [f.message for f in findings]
        assert len(findings) == 2, "\n".join(f.format() for f in findings)
        assert any("'ghost'" in m for m in messages)
        assert any("lacks an __all__" in m for m in messages)
