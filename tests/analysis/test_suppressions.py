"""Suppression directive semantics: ``# repro: noqa[RULE,...]``."""

from repro.analysis import SuppressionIndex, lint_source

VIOLATION = "flag = p == 0.0\n"


def test_finding_without_directive_survives():
    findings = lint_source(VIOLATION, rule_ids=["PROB001"])
    assert len(findings) == 1
    assert findings[0].rule_id == "PROB001"


def test_matching_directive_suppresses():
    src = "flag = p == 0.0  # repro: noqa[PROB001]\n"
    assert lint_source(src, rule_ids=["PROB001"]) == []


def test_directive_lists_multiple_rules():
    src = "flag = p == 0.0  # repro: noqa[DET001, PROB001]\n"
    assert lint_source(src, rule_ids=["PROB001"]) == []


def test_directive_for_other_rule_does_not_suppress():
    src = "flag = p == 0.0  # repro: noqa[DET001]\n"
    assert len(lint_source(src, rule_ids=["PROB001"])) == 1


def test_bare_noqa_does_not_suppress():
    """Rule ids are mandatory — a bare noqa is not a blank cheque."""
    src = "flag = p == 0.0  # repro: noqa\n"
    assert len(lint_source(src, rule_ids=["PROB001"])) == 1


def test_directive_only_covers_its_own_line():
    src = "a = p == 0.0  # repro: noqa[PROB001]\nb = q == 1.0\n"
    findings = lint_source(src, rule_ids=["PROB001"])
    assert len(findings) == 1
    assert findings[0].line == 2


def test_index_is_case_insensitive_on_rule_ids():
    idx = SuppressionIndex.from_source("x = 1  # repro: noqa[prob001]\n")
    assert idx.is_suppressed(1, "PROB001")
    assert not idx.is_suppressed(1, "DET001")
