"""Per-rule behaviour against the fixture snippets.

Each file-scoped rule has a ``<rule>_bad.py`` fixture that must produce
exactly the expected findings and a ``<rule>_good.py`` fixture that must
produce none — so rule regressions fail in both directions (missed
violations and false positives).
"""

from pathlib import Path

import pytest

from repro.analysis import UnknownRuleError, all_rule_ids, get_rules, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

# (rule id, bad fixture, expected finding count)
BAD_CASES = [
    ("RNG001", "rng001_bad.py", 3),
    ("RNG002", "rng002_bad.py", 2),
    ("RNG003", "rng003_bad.py", 2),
    ("RNG004", "rng004_bad.py", 4),
    ("DET001", "det001_bad.py", 3),
    ("PROB001", "prob001_bad.py", 4),
    ("PROB002", "prob002_bad.py", 1),
    ("NUM001", "num001_bad.py", 4),
    ("STORE001", "store001_bad.py", 6),
    ("SVC001", "svc001_bad.py", 3),
    ("EST001", "est001_bad.py", 3),
]

GOOD_CASES = [
    ("RNG001", "rng001_good.py"),
    ("RNG002", "rng002_good.py"),
    ("RNG003", "rng003_good.py"),
    ("RNG004", "rng004_good.py"),
    ("DET001", "det001_good.py"),
    ("PROB001", "prob001_good.py"),
    ("PROB002", "prob002_good.py"),
    ("NUM001", "num001_good.py"),
    ("STORE001", "store001_good.py"),
    ("SVC001", "svc001_good.py"),
    ("EST001", "est001_good.py"),
]


@pytest.mark.parametrize("rule_id,fixture,expected", BAD_CASES)
def test_bad_fixture_is_flagged(rule_id, fixture, expected):
    findings = lint_file(FIXTURES / fixture, rule_ids=[rule_id])
    assert len(findings) == expected, "\n".join(f.format() for f in findings)
    assert all(f.rule_id == rule_id for f in findings)
    assert all(f.line >= 1 for f in findings)


@pytest.mark.parametrize("rule_id,fixture", GOOD_CASES)
def test_good_fixture_is_clean(rule_id, fixture):
    findings = lint_file(FIXTURES / fixture, rule_ids=[rule_id])
    assert findings == [], "\n".join(f.format() for f in findings)


@pytest.mark.parametrize("rule_id,fixture,expected", BAD_CASES)
def test_rule_filter_excludes_other_rules(rule_id, fixture, expected):
    """Linting a bad fixture under a *different* rule finds nothing."""
    other = "DET001" if rule_id != "DET001" else "RNG001"
    assert lint_file(FIXTURES / fixture, rule_ids=[other]) == []


def test_findings_are_sorted_and_formatted():
    findings = lint_file(FIXTURES / "rng001_bad.py", rule_ids=["RNG001"])
    lines = [f.line for f in findings]
    assert lines == sorted(lines)
    first = findings[0].format()
    assert "rng001_bad.py" in first
    assert "RNG001" in first
    # file:line:col: RULE message
    assert first.count(":") >= 3


def test_unknown_rule_raises():
    with pytest.raises(UnknownRuleError):
        get_rules(["NOPE999"])
    with pytest.raises(UnknownRuleError):
        lint_file(FIXTURES / "rng001_good.py", rule_ids=["RNG999"])


def test_parallel_worker_code_keeps_rng_discipline():
    """The process-pool runner must not regress the Generator-API rules:
    no legacy global state, no unseeded generators, no import-time
    Generator shared (and silently cloned) across worker processes."""
    src = Path(__file__).parents[2] / "src" / "repro"
    rng_rules = ["RNG001", "RNG002", "RNG003", "RNG004"]
    for module in (
        src / "simulation" / "runner.py",
        src / "numerics" / "profiling.py",
        src / "experiments" / "e4_convergence.py",
    ):
        findings = lint_file(module, rule_ids=rng_rules)
        assert findings == [], "\n".join(f.format() for f in findings)


def test_rule_catalog_is_complete():
    ids = all_rule_ids()
    assert set(ids) == {
        "RNG001",
        "RNG002",
        "RNG003",
        "RNG004",
        "DET001",
        "PROB001",
        "PROB002",
        "REG001",
        "API001",
        "NUM001",
        "STORE001",
        "SVC001",
        "EST001",
        "GRAPH001",
        "GRAPH002",
        "GRAPH003",
        "LINT001",
    }
    for rule in get_rules():
        assert rule.title
        assert rule.rationale
