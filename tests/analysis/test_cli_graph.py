"""The ``repro graph`` and ``repro lint --graph`` CLI surfaces.

These run against the repository's own source tree (the CLI resolves
the project root), so they double as end-to-end smoke tests of the
whole-program analysis on real code.
"""

import json

from repro.cli import main


def test_lint_graph_is_clean(capsys):
    assert main(["lint", "--graph"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_graph_rejects_explicit_paths(capsys):
    assert main(["lint", "--graph", "src/repro/cli.py"]) == 2
    assert "--graph" in capsys.readouterr().err


def test_lint_sarif_format(capsys):
    assert main(["lint", "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"GRAPH001", "GRAPH002", "GRAPH003", "LINT001"} <= rule_ids
    assert run["results"] == []


def test_graph_effects_on_cached_solver(capsys):
    assert main(["graph", "effects", "blahut_arimoto"]) == 0
    out = capsys.readouterr().out
    assert "cached_solve target" in out
    assert "transitively pure" in out


def test_graph_calls_lists_edges(capsys):
    assert main(["graph", "calls", "ExperimentRunner.run"]) == 0
    out = capsys.readouterr().out
    assert "calls:" in out


def test_graph_why_prints_witness(capsys):
    assert main(["graph", "why", "ExperimentRunner.run", "filesystem"]) == 0
    out = capsys.readouterr().out
    assert "ExperimentRunner.run" in out
    assert "└─" in out


def test_graph_why_unreachable_exits_one(capsys):
    assert main(["graph", "why", "blahut_arimoto", "clock"]) == 1
    assert "does not transitively reach" in capsys.readouterr().out


def test_graph_unknown_function_exits_two(capsys):
    assert main(["graph", "calls", "no_such_function_xyz"]) == 2
    assert "no_such_function_xyz" in capsys.readouterr().err


def test_graph_ambiguous_suffix_lists_candidates(capsys):
    # Bare "run" matches several functions; the CLI must list them.
    code = main(["graph", "calls", "run"])
    err = capsys.readouterr().err
    if code == 2:
        assert "ambiguous" in err or "matches" in err
    else:  # a unique resolution is also acceptable if the repo changes
        assert code == 0
