"""Incremental reuse of per-module summaries through the result store."""

from pathlib import Path

import pytest

from repro.analysis.graph import analyze_source_root
from repro.analysis.graph.project import GRAPH_CACHE_FN_ID
from repro.store import (
    ResultStore,
    reset_store_counters,
    store_counters,
    use_store,
)

FIXTURE_SRC = (
    Path(__file__).parent / "fixtures" / "graph_clock" / "src"
)


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_store_counters()
    yield
    reset_store_counters()


def test_no_store_is_a_plain_computation():
    analysis = analyze_source_root(FIXTURE_SRC)
    assert analysis.cache_hits == 0
    assert analysis.cache_misses > 0
    assert store_counters() == {}


def test_cold_then_warm_run_reuses_every_summary(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        cold = analyze_source_root(FIXTURE_SRC)
        warm = analyze_source_root(FIXTURE_SRC)
    n = cold.cache_misses
    assert n > 0 and cold.cache_hits == 0
    assert warm.cache_hits == n and warm.cache_misses == 0
    assert warm.reanalyzed == ()
    assert store_counters() == {
        f"{GRAPH_CACHE_FN_ID}:miss": n,
        f"{GRAPH_CACHE_FN_ID}:hit": n,
    }
    # The cached round-trip is semantics-preserving.
    assert warm.closure == cold.closure


def test_modified_file_is_the_only_reextraction(tmp_path):
    src = tmp_path / "src"
    pkg = src / "clockpkg"
    for path in FIXTURE_SRC.rglob("*.py"):
        dest = src / path.relative_to(FIXTURE_SRC)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(path.read_text(encoding="utf-8"), encoding="utf-8")
    store = ResultStore(tmp_path / "cache")
    with use_store(store):
        analyze_source_root(src)
        timing = pkg / "timing.py"
        timing.write_text(
            timing.read_text(encoding="utf-8") + "\n\nX = 1\n",
            encoding="utf-8",
        )
        warm = analyze_source_root(src)
    assert warm.reanalyzed == ("clockpkg.timing",)
    assert warm.cache_misses == 1
