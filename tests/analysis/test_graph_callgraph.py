"""Unit tests for cross-module linking and the transitive effect closure."""

import textwrap

from repro.analysis.graph import (
    Effect,
    build_call_graph,
    extract_module,
    format_witness,
    transitive_effects,
    witness_chain,
)


def _graph(**sources):
    """Build a call graph from ``module_name="source"`` kwargs.

    Dots in module names are spelled as ``__`` in the kwarg (Python
    identifiers cannot contain dots).
    """
    modules = {}
    for key, source in sources.items():
        module = key.replace("__", ".")
        summary = extract_module(
            module, module.replace(".", "/") + ".py", textwrap.dedent(source)
        )
        modules[module] = summary
    return build_call_graph(modules)


def _callees(graph, qname):
    return set(graph.functions[qname].callee_names())


# -- alias and re-export resolution ------------------------------------


def test_from_import_alias_resolves_across_modules():
    g = _graph(
        pkg__a="""
        def f():
            return 1
        """,
        pkg__b="""
        from pkg.a import f as g

        def caller():
            return g()
        """,
    )
    assert _callees(g, "pkg.b.caller") == {"pkg.a.f"}


def test_reexport_chain_resolves_through_init():
    g = _graph(
        pkg="""
        from pkg.impl import solve
        """,
        pkg__impl="""
        def solve():
            return 1
        """,
        pkg__user="""
        import pkg

        def caller():
            return pkg.solve()
        """,
    )
    assert _callees(g, "pkg.user.caller") == {"pkg.impl.solve"}


def test_cyclic_reexports_terminate_as_unknown():
    g = _graph(
        pkg__a="""
        from pkg.b import thing
        """,
        pkg__b="""
        from pkg.a import thing
        """,
        pkg__user="""
        from pkg.a import thing

        def caller():
            return thing()
        """,
    )
    node = g.functions["pkg.user.caller"]
    assert node.callees == []
    assert len(node.unresolved) == 1


# -- method dispatch ---------------------------------------------------


def test_method_dispatch_on_dataclass_local():
    g = _graph(
        pkg__model="""
        from dataclasses import dataclass

        @dataclass
        class Model:
            rate: float

            def solve(self):
                return self.rate
        """,
        pkg__use="""
        from pkg.model import Model

        def caller():
            m = Model(0.5)
            return m.solve()
        """,
    )
    assert _callees(g, "pkg.use.caller") == {"pkg.model.Model.solve"}


def test_self_method_dispatch_walks_bases():
    g = _graph(
        pkg__base="""
        class Base:
            def shared(self):
                return 1
        """,
        pkg__child="""
        from pkg.base import Base

        class Child(Base):
            def caller(self):
                return self.shared()
        """,
    )
    assert _callees(g, "pkg.child.Child.caller") == {"pkg.base.Base.shared"}


def test_own_nested_function_is_linked_not_unresolved():
    g = _graph(
        pkg__m="""
        def outer():
            def inner():
                return 1
            return inner()
        """,
    )
    node = g.functions["pkg.m.outer"]
    assert _callees(g, "pkg.m.outer") == {"pkg.m.outer.inner"}
    assert node.unresolved == []


def test_bare_name_skips_class_scope():
    # A method body cannot see a sibling method by bare name; the call
    # must fall through to the module-level function of that name.
    g = _graph(
        pkg__m="""
        def helper():
            return 1

        class C:
            def helper(self):
                return 2

            def caller(self):
                return helper()
        """,
    )
    assert _callees(g, "pkg.m.C.caller") == {"pkg.m.helper"}


# -- decorators --------------------------------------------------------


def test_cached_solve_decorator_sets_fn_id():
    g = _graph(
        pkg__s="""
        from repro.store import cached_solve

        @cached_solve("my_id")
        def solve(x):
            return x
        """,
    )
    assert g.functions["pkg.s.solve"].cached_fn_id == "my_id"


def test_cached_solve_without_id_defaults_to_name():
    g = _graph(
        pkg__s="""
        from repro.store import cached_solve

        @cached_solve()
        def solve(x):
            return x
        """,
    )
    assert g.functions["pkg.s.solve"].cached_fn_id == "solve"


def test_functools_wraps_decorator_links_to_wrapper():
    # A local decorator's effects must not be lost: the decorated
    # function gets an edge to the decorator function itself.
    g = _graph(
        pkg__d="""
        import functools
        import time

        def timed(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                t0 = time.perf_counter()
                return fn(*args, **kwargs)
            return wrapper

        @timed
        def work(x):
            return x
        """,
    )
    assert "pkg.d.timed" in _callees(g, "pkg.d.work")
    closure = transitive_effects(g)
    # work -> timed -> (nested wrapper defines the clock read; the
    # wrapper itself is a separate node reached via timed's body only
    # if timed calls it — it does not, so CLOCK stays on the wrapper).
    assert Effect.CLOCK in closure["pkg.d.timed.wrapper"]


# -- submissions -------------------------------------------------------


def _submissions(graph, qname):
    return graph.functions[qname].submissions


def test_submission_verdicts():
    g = _graph(
        pkg__tasks="""
        def square(x):
            return x * x
        """,
        pkg__driver="""
        from concurrent.futures import ProcessPoolExecutor

        from pkg.tasks import square

        def ok(values):
            pool = ProcessPoolExecutor(2)
            return pool.submit(square, values)

        def bad_lambda(values):
            pool = ProcessPoolExecutor(2)
            return pool.submit(lambda v: v, values)

        def bad_nested(values):
            def helper(v):
                return v
            pool = ProcessPoolExecutor(2)
            return pool.submit(helper, values)

        def forwards(fn, values):
            pool = ProcessPoolExecutor(2)
            return pool.submit(fn, values)
        """,
    )
    (ok,) = _submissions(g, "pkg.driver.ok")
    assert ok.verdict == "ok"
    (lam,) = _submissions(g, "pkg.driver.bad_lambda")
    assert lam.verdict == "violation"
    assert "lambda" in lam.detail
    (nested,) = _submissions(g, "pkg.driver.bad_nested")
    assert nested.verdict == "violation"
    assert "nested" in nested.detail
    (fwd,) = _submissions(g, "pkg.driver.forwards")
    assert fwd.verdict == "param"


def test_self_attr_pool_submission_detected():
    g = _graph(
        pkg__r="""
        from concurrent.futures import ProcessPoolExecutor

        def work(x):
            return x

        class Runner:
            def __init__(self):
                self._pool = ProcessPoolExecutor(2)

            def go(self):
                return self._pool.submit(work, 1)
        """,
    )
    (sub,) = _submissions(g, "pkg.r.Runner.go")
    assert sub.verdict == "ok"
    assert sub.api == "pool.submit"


# -- effect closure and witnesses --------------------------------------


def test_closure_propagates_through_cycle():
    g = _graph(
        pkg__m="""
        import time

        def stamp():
            return time.time()

        def poll(n):
            if n <= 0:
                return stamp()
            return wait(n - 1)

        def wait(n):
            return poll(n)
        """,
    )
    closure = transitive_effects(g)
    assert Effect.CLOCK in closure["pkg.m.poll"]
    assert Effect.CLOCK in closure["pkg.m.wait"]


def test_waived_origin_not_propagated():
    g = _graph(
        pkg__m="""
        import time

        def budget():
            return time.monotonic()  # repro: noqa[DET001]

        def caller():
            return budget()
        """,
    )
    closure = transitive_effects(g)
    assert closure["pkg.m.caller"] == frozenset()


def test_witness_chain_is_shortest_and_renders():
    g = _graph(
        pkg__m="""
        import os

        def leaf():
            return os.environ["X"]

        def middle():
            return leaf()

        def top():
            return middle()
        """,
    )
    closure = transitive_effects(g)
    steps = witness_chain(g, "pkg.m.top", Effect.ENV, closure)
    assert [s.qname for s in steps] == [
        "pkg.m.top",
        "pkg.m.middle",
        "pkg.m.leaf",
    ]
    rendered = format_witness(steps, g)
    assert "pkg.m.top" in rendered
    assert "os.environ[...]" in rendered


def test_witness_chain_none_when_unreachable():
    g = _graph(
        pkg__m="""
        def pure(x):
            return x + 1
        """,
    )
    closure = transitive_effects(g)
    assert witness_chain(g, "pkg.m.pure", Effect.CLOCK, closure) is None
