"""Fixture-driven tests for GRAPH001/GRAPH002/GRAPH003.

Each ``tests/analysis/fixtures/graph_*`` directory is a miniature
``src/`` tree exhibiting exactly one violation family; the rules run
against its :class:`ProjectAnalysis` exactly as ``repro lint --graph``
would, and the witnesses are reproduced through the public
:func:`witness_chain` / :func:`format_witness` API (what ``repro graph
why`` prints).
"""

from pathlib import Path

import pytest

from repro.analysis import GraphContext, get_rules
from repro.analysis.graph import (
    Effect,
    analyze_source_root,
    format_witness,
    witness_chain,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _findings(fixture, rule_id):
    root = FIXTURES / fixture
    analysis = analyze_source_root(root / "src")
    ctx = GraphContext(root=root, analysis=analysis)
    (rule,) = get_rules([rule_id])
    return analysis, rule.check_graph(ctx)


# -- GRAPH001: cache purity --------------------------------------------


def test_graph001_flags_impure_cached_solver():
    analysis, findings = _findings("graph_impure_cache", "GRAPH001")
    (finding,) = findings
    assert finding.rule_id == "GRAPH001"
    assert finding.file == "cachepkg/solver.py"
    assert "impure_solve" in finding.message
    assert "ENV" in finding.message
    # The one-line witness names the chain through the alias hop.
    assert "read_knob" in finding.message


def test_graph001_witness_reproduces_via_api():
    analysis, _ = _findings("graph_impure_cache", "GRAPH001")
    steps = witness_chain(
        analysis.graph, "cachepkg.solver.solve", Effect.ENV, analysis.closure
    )
    assert [s.qname for s in steps] == [
        "cachepkg.solver.solve",
        "cachepkg.solver._scale",
        "cachepkg.helpers.read_knob",
    ]
    rendered = format_witness(steps, analysis.graph)
    assert "cachepkg/helpers.py" in rendered
    assert "os.environ[...]" in rendered


def test_graph001_waived_clock_target_is_clean():
    analysis, findings = _findings("graph_impure_cache", "GRAPH001")
    # solve_pure only reaches a waived clock origin: not flagged.
    assert all("fn_id='pure_solve'" not in f.message for f in findings)
    assert analysis.closure["cachepkg.solver.solve_pure"] == frozenset()


# -- GRAPH002: pool picklability ---------------------------------------


def test_graph002_flags_lambda_and_nested_only():
    _, findings = _findings("graph_pool_lambda", "GRAPH002")
    assert len(findings) == 2
    assert {f.file for f in findings} == {"poolpkg/driver.py"}
    details = " / ".join(f.message for f in findings)
    assert "lambda" in details
    assert "helper" in details
    # The clean and forwarding submissions are not flagged.
    assert "square" not in details


# -- GRAPH003: transitive clock reachability ---------------------------


def test_graph003_flags_entry_point_through_cycle():
    _, findings = _findings("graph_clock", "GRAPH003")
    (finding,) = findings
    assert finding.file == "clockpkg/experiments/trial.py"
    assert "clockpkg.experiments.trial.run" in finding.message
    assert "time.time()" in finding.message


def test_graph003_witness_walks_the_cycle():
    analysis, _ = _findings("graph_clock", "GRAPH003")
    steps = witness_chain(
        analysis.graph,
        "clockpkg.experiments.trial.run",
        Effect.CLOCK,
        analysis.closure,
    )
    assert steps[0].qname == "clockpkg.experiments.trial.run"
    assert steps[-1].qname == "clockpkg.timing.stamp"
    assert steps[-1].detail == "time.time()"


def test_graph003_ignores_non_entry_points():
    analysis, findings = _findings("graph_clock", "GRAPH003")
    assert len(findings) == 1  # only run(), not summarize()/helpers


# -- cross-fixture sanity ----------------------------------------------


@pytest.mark.parametrize(
    "fixture, clean_rules",
    [
        ("graph_impure_cache", ["GRAPH002", "GRAPH003"]),
        ("graph_pool_lambda", ["GRAPH001", "GRAPH003"]),
        ("graph_clock", ["GRAPH001", "GRAPH002"]),
    ],
)
def test_fixtures_violate_exactly_one_rule(fixture, clean_rules):
    for rule_id in clean_rules:
        _, findings = _findings(fixture, rule_id)
        assert findings == [], f"{fixture} unexpectedly fails {rule_id}"
