"""Fixture package: a memoized solver that reaches the environment."""
