"""A ``@cached_solve`` target that transitively reads ``os.environ``."""

from repro.store import cached_solve

from cachepkg.helpers import budget_left, read_knob as knob


def _scale(x):
    """Intermediate hop so the GRAPH001 witness chain has depth two."""
    return x * knob()


@cached_solve("impure_solve")
def solve(x):
    """Cached solver whose value depends on the environment (GRAPH001)."""
    return _scale(x) + 1.0


@cached_solve("pure_solve")
def solve_pure(x, budget):
    """Cached solver that only touches a *waived* clock origin: clean."""
    return x if budget_left(budget) > 0 else 0.0
