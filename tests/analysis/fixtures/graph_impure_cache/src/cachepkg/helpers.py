"""Helpers with environment and clock effects, one of them waived."""

import os
import time


def read_knob():
    """Read a tuning knob from the environment (impure)."""
    return float(os.environ["CACHEPKG_KNOB"])


def stamp():
    """Unwaived wall-clock read."""
    return time.time()


def budget_left(deadline):
    """Audited clock boundary: the origin line carries a waiver."""
    return deadline - time.monotonic()  # repro: noqa[DET001]
