"""Timing helpers, including a mutually recursive pair (a call cycle)."""

import time


def stamp():
    """Wall-clock read at the bottom of the experiment call chain."""
    return time.time()


def poll(n):
    """Half of a call cycle that eventually reaches the clock."""
    if n <= 0:
        return stamp()
    return wait(n - 1)


def wait(n):
    """Other half of the cycle: calls back into ``poll``."""
    return poll(n)
