"""Experiments subpackage (the GRAPH003 entry-point namespace)."""
