"""An experiment whose ``run`` transitively reads the wall clock."""

from clockpkg.timing import wait


def run(seed=0):
    """Entry point: named ``run`` inside an ``experiments`` package."""
    return wait(seed)


def summarize():
    """Not an entry point (name is not ``run``): never flagged."""
    return 0
