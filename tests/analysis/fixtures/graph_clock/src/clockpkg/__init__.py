"""Fixture package: an experiment entry point that reaches the clock."""
