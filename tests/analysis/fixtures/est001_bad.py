"""EST001 violations: kd-trees constructed outside repro.estimation."""

import scipy.spatial
from scipy.spatial import cKDTree  # finding 1: direct import
from scipy.spatial import KDTree  # finding 2: documented alias


def nearest_neighbour_counts(points, radius):
    tree = cKDTree(points)
    return tree.query_ball_point(points, radius, return_length=True)


def alias_flavour(points):
    return KDTree(points)


def fully_qualified(points):
    # finding 3: the qualified spelling dodges a plain import check
    return scipy.spatial.cKDTree(points)
