"""Fixture: locally constructed generators (2 RNG003 findings)."""

import numpy as np


def draw(n):
    rng = np.random.default_rng(0)
    return rng.random(n)


def run(params, n):
    local_rng = np.random.default_rng(1)
    return sample_events(params, n, local_rng)  # noqa: F821
