"""Fixture: import-time Generator construction (4 RNG004 findings)."""

import numpy as np

from repro.simulation.rng import make_rng

SHARED_RNG = np.random.default_rng(0)
FACTORY_RNG = make_rng(7)


class Sampler:
    rng = np.random.default_rng(1)  # class attribute: one stream for all


def draw(n, rng=make_rng(0)):  # default evaluates once, at import
    return rng.random(n)
