"""Fixture benchmark for E1 only — E2 has none."""


def test_bench_e1(benchmark):
    pass
