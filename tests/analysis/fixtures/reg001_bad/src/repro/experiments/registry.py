"""Fixture registry missing the E2 entry."""

from . import e1_demo

EXPERIMENTS = {"E1": e1_demo.run}
