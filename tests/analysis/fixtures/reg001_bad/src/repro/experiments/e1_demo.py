"""Fixture experiment E1."""


def run():
    return None
