"""Fixture experiment E2 — unregistered, unbenchmarked, undocumented."""


def run():
    return None
