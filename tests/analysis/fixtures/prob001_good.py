"""Fixture: tolerance-based boundary tests (no findings)."""

from repro.infotheory import is_one, is_zero


def is_perfect(p):
    return is_zero(p)


def saturated(q):
    return is_one(q)


def count_done(n):
    return n == 0  # integer equality is not a probability boundary test
