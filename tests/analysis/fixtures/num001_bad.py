"""Fixture: ad-hoc floors inside probability logs (4 NUM001 findings)."""

import numpy as np


def floored_log(p):
    return np.log(np.maximum(p, 1e-300))


def floored_log2(p):
    return np.log2(np.clip(p, 1e-12, None))


def scalar_floor(x):
    return np.log(max(x, 1e-300))


def nested_floor(q):
    return np.log2(1.0 + np.maximum(q, 0.0))
