"""Fixture: seeded default_rng (no findings)."""

import numpy as np
from numpy.random import default_rng


def make(seed):
    return default_rng(seed)


a = np.random.default_rng(123)
