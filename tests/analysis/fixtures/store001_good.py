"""Fixture: disciplined store access through the repro.store API."""

import os

from repro.store import ResultStore, resolve_store, use_store

store = ResultStore("/tmp/cache")


def publish(key: str, value) -> bool:
    return store.put(key, value, fn_id="demo")


def read(key: str):
    # Reads are fine: fetch() tolerates corruption, and read_text on the
    # layout does not break the atomic-publish contract.
    manifest = (store.path_for(key) / "manifest.json").read_text()
    return store.get(key), manifest


def activate():
    with use_store(resolve_store()):
        pass


def unrelated_environment() -> str:
    return os.environ.get("HOME", "")
