"""SVC001 bad fixture: solver calls inside coroutine bodies."""

import repro.core.theorems as theorems
from repro.core.capacity import erasure_upper_bound
from repro.core.estimation import CapacityEstimator


async def handle_query(query):
    # Direct imported-callable solve inside a coroutine.
    return erasure_upper_bound(query.bits, query.deletion)


async def handle_estimate(query):
    estimator = CapacityEstimator(query.bits)  # call on solver class
    return estimator


async def handle_bracket(query):
    # Module-alias attribute call.
    return theorems.capacity_bracket(query.bits, query.pd, query.pi)
