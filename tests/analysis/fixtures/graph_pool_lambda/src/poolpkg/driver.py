"""Submission sites covering each GRAPH002 verdict class."""

from concurrent.futures import ProcessPoolExecutor

from poolpkg.tasks import square


def submit_ok(values):
    """Good: submits an importable module-level function."""
    pool = ProcessPoolExecutor(2)
    return pool.submit(square, values)


def submit_lambda(values):
    """Bad: a lambda cannot be pickled at all."""
    pool = ProcessPoolExecutor(2)
    return pool.submit(lambda v: v * v, values)


def submit_nested(values):
    """Bad: a nested closure fails to unpickle under spawn."""

    def helper(v):
        return v * v

    pool = ProcessPoolExecutor(2)
    return pool.submit(helper, values)


def forward(fn, values):
    """Forwarding wrapper: verdict ``param``, checked at call sites."""
    pool = ProcessPoolExecutor(2)
    return pool.submit(fn, values)
