"""Fixture package: every GRAPH002 pool-submission verdict."""
