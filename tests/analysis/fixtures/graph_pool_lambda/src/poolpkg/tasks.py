"""Worker-side task functions (picklable by importable name)."""


def square(x):
    """Module-level task: pickles by qualified name, GRAPH002-clean."""
    return x * x
