"""Fixture registry: every experiment module is wired up."""

from . import e1_demo

EXPERIMENTS = {"E1": e1_demo.run}
