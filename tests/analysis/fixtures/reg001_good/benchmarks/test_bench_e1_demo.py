"""Fixture benchmark for E1."""


def test_bench_e1(benchmark):
    pass
