"""Fixture: float equality at probability boundaries (4 PROB001 findings)."""


def is_perfect(p):
    return p == 0.0


def saturated(q):
    return 1.0 == q


def mixed(a, b):
    return a != 0.0 or b == 1.0
