"""Fixture: store-layout writes and activation reads outside repro.store."""

import os

from repro.store import ResultStore

store = ResultStore("/tmp/cache")


def sneak_entry(key: str) -> None:
    store.path_for(key).mkdir(parents=True)  # bypasses atomic publish
    (store.path_for(key) / "payload.json").write_text("{}")
    (store.objects_dir / key[:2] / key).unlink()


def fork_activation() -> str:
    root = os.environ["REPRO_STORE_DIR"]
    fallback = os.environ.get("REPRO_STORE_DIR", "")
    return os.getenv("REPRO_STORE_DIR", root or fallback)
