"""Fixture: clock readings supplied by the caller (no findings)."""


def elapsed_within(elapsed_seconds, budget_seconds):
    """Pure comparison — the caller supplies the clock readings."""
    return elapsed_seconds <= budget_seconds
