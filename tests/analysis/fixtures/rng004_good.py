"""Fixture: generators built inside functions from explicit seeds."""

import numpy as np

from repro.simulation.rng import RngFactory, make_rng


def fresh_stream(root_seed, k):
    # Worker-side reconstruction: derive the substream locally instead
    # of sharing a Generator across process boundaries.
    return RngFactory(root_seed).fresh(f"trial/{k}")


def draw(n, seed=0):
    rng = make_rng(seed)
    return rng.random(n)


def with_generator_param(rng: np.random.Generator):
    return rng.integers(0, 2)
