"""SVC001 good fixture: solves stay off the event loop.

Synchronous helpers may call solvers; coroutines pass solver
*references* to the worker tier instead of calling them.
"""

import asyncio

from repro.core.capacity import erasure_upper_bound


def coarse_bound(query):
    # Sync function: solver calls are fine here.
    return erasure_upper_bound(query.bits, query.deletion)


async def handle_query(query, executor):
    loop = asyncio.get_running_loop()
    # Passing the solver as a reference (no Call node) is the sanctioned
    # pattern: the executor thread, not the loop, runs it.
    return await loop.run_in_executor(
        executor, erasure_upper_bound, query.bits, query.deletion
    )
