"""Fixture: rng threaded through parameters and attributes (no findings)."""


def draw(n, rng):
    return rng.random(n)


class Simulator:
    def __init__(self, rng):
        self._rng = rng

    def step(self, n):
        return self._rng.random(n)


def run(params, n, rng):
    return sample_events(params, n, rng=rng)  # noqa: F821
