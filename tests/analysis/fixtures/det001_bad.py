"""Fixture: wall-clock reads in simulation logic (3 DET001 findings)."""

import time
from datetime import datetime


def stamp():
    started = time.time()
    elapsed = time.perf_counter()
    return datetime.now(), started, elapsed
