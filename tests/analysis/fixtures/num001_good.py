"""Fixture: log-domain safety via repro.numerics (no NUM001 findings)."""

import numpy as np

from repro.numerics import safe_log, safe_log2


def floored_log(p):
    return safe_log(p)


def floored_log2(p):
    return safe_log2(p, floor=1e-12)


def plain_log(x):
    return np.log(x)  # no flooring idiom in the argument


def masked_log(w):
    return np.where(w > 0, safe_log2(w), 0.0)


def count_log(n):
    return np.log2(max(n, 2))  # integer clamp on a count, not a floor
