"""Fixture: Generator-API RNG usage (no findings)."""

from numpy.random import SeedSequence, default_rng

rng = default_rng(SeedSequence(0))
values = rng.uniform(size=10)
