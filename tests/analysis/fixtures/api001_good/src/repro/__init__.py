"""Fixture package with a clean public surface."""

from .mypkg import thing

__all__ = ["thing"]
