"""Fixture subpackage."""

__all__ = ["thing"]


def thing():
    """Return the answer."""
    return 42
