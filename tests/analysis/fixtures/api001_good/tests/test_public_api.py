"""Fixture hygiene test: PACKAGES covers every package."""

PACKAGES = [
    "repro",
    "repro.mypkg",
]
