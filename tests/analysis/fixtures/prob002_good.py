"""Fixture: probability dataclass validated in __post_init__ (no findings)."""

from dataclasses import dataclass

from repro.infotheory import validate_probability


@dataclass(frozen=True)
class FaultProfile:
    drop_prob: float
    p_corrupt: float
    label: str = "default"

    def __post_init__(self):
        for name in ("drop_prob", "p_corrupt"):
            object.__setattr__(
                self, name, validate_probability(getattr(self, name), name)
            )
