"""Fixture: legacy global-state numpy RNG usage (3 RNG001 findings)."""

import numpy as np
from numpy.random import randint

np.random.seed(0)
values = np.random.rand(10)
