"""EST001-clean: neighbour searches go through repro.estimation."""

from scipy.spatial import distance_matrix  # other scipy.spatial names fine

from repro.estimation import mixed_mutual_information
from repro.simulation.rng import RngFactory


def estimate(x, y):
    return mixed_mutual_information(
        x, y, k=8, rng=RngFactory(0).fresh("jitter")
    )


def pairwise(points):
    return distance_matrix(points, points)
