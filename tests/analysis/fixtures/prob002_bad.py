"""Fixture: probability dataclass without validation (1 PROB002 finding)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultProfile:
    drop_prob: float
    p_corrupt: float
    label: str = "default"
