"""Fixture: argument-less default_rng (2 RNG002 findings)."""

import numpy as np
from numpy.random import default_rng

a = np.random.default_rng()
b = default_rng()
