"""Fixture package exporting a name it never binds."""

__all__ = ["thing", "ghost"]


def thing():
    """Return the answer."""
    return 42
