"""Fixture subpackage with no __all__ at all."""


def helper():
    """Return one."""
    return 1
