"""Fixture hygiene test: PACKAGES misses repro.mypkg."""

PACKAGES = [
    "repro",
]
