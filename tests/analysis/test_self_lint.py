"""Tier-1 gate: the repository lints clean under its own rules.

This is the enforcement point for the determinism / probability-domain /
registry-completeness invariants: any unsuppressed finding anywhere in
``src/`` fails the suite with a ``file:line`` report.
"""

from repro.analysis import find_project_root, lint_project


def test_repository_is_lint_clean():
    root = find_project_root()
    assert root is not None, "cannot locate the repository root"
    findings = lint_project(root)
    assert not findings, "unsuppressed lint findings:\n" + "\n".join(
        f.format() for f in findings
    )


def test_repository_is_graph_clean():
    """Whole-program self-analysis: every ``@cached_solve`` target is
    transitively pure, every pool submission is picklable, and no
    experiment entry point reaches the wall clock — with zero
    unsuppressed GRAPH/LINT001 findings."""
    root = find_project_root()
    assert root is not None, "cannot locate the repository root"
    findings = lint_project(root, graph=True)
    assert not findings, "unsuppressed graph findings:\n" + "\n".join(
        f.format() for f in findings
    )
