"""Unit tests for per-module extraction (:mod:`repro.analysis.graph.symbols`)."""

import textwrap

from repro.analysis.graph import Effect, ModuleSummary, extract_module


def _extract(source, module="m", path="m.py"):
    return extract_module(module, path, textwrap.dedent(source))


def _effects_of(summary, qname):
    return {o.effect for o in summary.functions[qname].effects if not o.waived}


# -- import aliases ----------------------------------------------------


def test_plain_import_alias():
    s = _extract("import numpy as np\n")
    assert s.imports["np"] == "numpy"


def test_from_import_alias():
    s = _extract("from x.y import f as g\n")
    assert s.imports["g"] == "x.y.f"


def test_relative_import_resolves_against_package():
    s = _extract(
        "from .helpers import knob\n", module="pkg.solver", path="pkg/solver.py"
    )
    assert s.imports["knob"] == "pkg.helpers.knob"


def test_relative_import_from_init_resolves_against_self():
    s = _extract(
        "from .core import run\n", module="pkg", path="pkg/__init__.py"
    )
    assert s.imports["run"] == "pkg.core.run"


# -- effect detection --------------------------------------------------


def test_clock_via_time_module():
    s = _extract(
        """
        import time

        def f():
            return time.perf_counter()
        """
    )
    assert _effects_of(s, "m.f") == {Effect.CLOCK}


def test_clock_via_datetime_now():
    s = _extract(
        """
        from datetime import datetime

        def f():
            return datetime.now()
        """
    )
    assert _effects_of(s, "m.f") == {Effect.CLOCK}


def test_rng_via_aliased_numpy():
    s = _extract(
        """
        import numpy as np

        def f():
            return np.random.default_rng()
        """
    )
    assert _effects_of(s, "m.f") == {Effect.RNG}


def test_rng_via_from_import_alias():
    s = _extract(
        """
        from numpy.random import default_rng as mk

        def f():
            return mk()
        """
    )
    assert _effects_of(s, "m.f") == {Effect.RNG}


def test_env_via_environ_subscript():
    s = _extract(
        """
        import os

        def f():
            return os.environ["KNOB"]
        """
    )
    assert _effects_of(s, "m.f") == {Effect.ENV}


def test_filesystem_via_open_builtin():
    s = _extract(
        """
        def f(p):
            with open(p) as fh:
                return fh.read()
        """
    )
    assert Effect.FILESYSTEM in _effects_of(s, "m.f")


def test_global_mutation_via_global_statement():
    s = _extract(
        """
        _COUNT = 0

        def f():
            global _COUNT
            _COUNT += 1
        """
    )
    assert Effect.GLOBAL_MUTATION in _effects_of(s, "m.f")


def test_global_mutation_via_module_level_container():
    s = _extract(
        """
        _CACHE = {}

        def f(k, v):
            _CACHE[k] = v
        """
    )
    assert Effect.GLOBAL_MUTATION in _effects_of(s, "m.f")


def test_local_container_mutation_is_not_global():
    s = _extract(
        """
        def f(k, v):
            d = {}
            d[k] = v
            return d
        """
    )
    assert _effects_of(s, "m.f") == set()


def test_stdout_via_print():
    s = _extract(
        """
        def f():
            print("hi")
        """
    )
    assert _effects_of(s, "m.f") == {Effect.STDOUT}


def test_unknown_for_opaque_method():
    # A receiver the extractor cannot type (a call expression) with a
    # method outside the benign vocabulary is the conservative UNKNOWN.
    s = _extract(
        """
        def f():
            return make().solve_somehow()
        """
    )
    assert Effect.UNKNOWN in _effects_of(s, "m.f")


def test_param_receiver_is_sanctioned():
    # Injected dependencies carry no effect: the caller threaded them in.
    s = _extract(
        """
        def f(x):
            return x.solve_somehow()
        """
    )
    assert _effects_of(s, "m.f") == set()


# -- waivers -----------------------------------------------------------


def test_noqa_waives_clock_origin():
    s = _extract(
        """
        import time

        def f():
            return time.time()  # repro: noqa[DET001]
        """
    )
    origins = s.functions["m.f"].effects
    assert [o.waived for o in origins] == [True]
    assert _effects_of(s, "m.f") == set()


def test_unrelated_noqa_does_not_waive():
    s = _extract(
        """
        import time

        def f():
            return time.time()  # repro: noqa[PROB001]
        """
    )
    assert _effects_of(s, "m.f") == {Effect.CLOCK}


def test_docstring_directive_text_is_inert():
    s = _extract(
        '''
        import time

        def f():
            """Mentions # repro: noqa[DET001] in prose only."""
            return time.time()
        '''
    )
    assert _effects_of(s, "m.f") == {Effect.CLOCK}


# -- structure ---------------------------------------------------------


def test_param_receiver_calls_are_param_kind():
    s = _extract(
        """
        def f(rng):
            return rng.normal()
        """
    )
    (call,) = s.functions["m.f"].calls
    assert call.kind == "param"


def test_cached_solve_decorator_is_recorded():
    s = _extract(
        """
        from repro.store import cached_solve

        @cached_solve("my_id")
        def f(x):
            return x
        """
    )
    (dec,) = s.functions["m.f"].decorators
    assert dec.parts == ("cached_solve",)
    assert dec.args[0].kind == "str"
    assert dec.args[0].text == "my_id"


def test_dataclass_detection_and_method_table():
    s = _extract(
        """
        from dataclasses import dataclass

        @dataclass
        class Model:
            rate: float

            def solve(self):
                return self.rate
        """
    )
    cls = s.classes["m.Model"]
    assert cls.is_dataclass
    assert cls.methods["solve"] == "m.Model.solve"
    assert s.functions["m.Model.solve"].kind == "method"


def test_self_attr_ctor_is_recorded():
    s = _extract(
        """
        from repro.parallel import SupervisedPool

        class Runner:
            def __init__(self):
                self._pool = SupervisedPool(4)
        """
    )
    cls = s.classes["m.Runner"]
    assert cls.attr_ctors["_pool"] == ("SupervisedPool",)


def test_nested_function_gets_own_node():
    s = _extract(
        """
        def outer():
            def inner():
                return 1
            return inner()
        """
    )
    assert s.functions["m.outer.inner"].kind == "nested"


def test_summary_json_round_trip():
    s = _extract(
        """
        import time
        from dataclasses import dataclass

        _REGISTRY = {}

        @dataclass
        class Model:
            rate: float

            def solve(self):
                return helper(self.rate)

        def helper(x):
            _REGISTRY[x] = time.time()
            return x
        """
    )
    restored = ModuleSummary.from_dict(s.to_dict())
    assert restored == s
