"""LINT001: unused-suppression detection semantics."""

import textwrap

from repro.analysis import lint_source


def _lint(source, **kwargs):
    return lint_source(textwrap.dedent(source), **kwargs)


def test_used_suppression_is_not_flagged():
    findings = _lint(
        """
        def f(p):
            return p == 0.0  # repro: noqa[PROB001]
        """
    )
    assert findings == []


def test_unused_suppression_is_flagged():
    findings = _lint(
        """
        def f(p):
            return p  # repro: noqa[PROB001]
        """
    )
    (finding,) = findings
    assert finding.rule_id == "LINT001"
    assert "PROB001" in finding.message
    assert "unused" in finding.message


def test_unknown_rule_id_is_always_flagged():
    findings = _lint(
        """
        def f(p):
            return p == 0.0  # repro: noqa[PROB01]
        """
    )
    rule_ids = {f.rule_id for f in findings}
    # The typo'd directive suppresses nothing, so PROB001 still fires
    # AND the directive itself is flagged.
    assert rule_ids == {"LINT001", "PROB001"}
    lint001 = next(f for f in findings if f.rule_id == "LINT001")
    assert "typo" in lint001.message


def test_graph_waivers_are_exempt():
    # GRAPH/DET waivers at effect origins act at a distance: no
    # same-line finding even when honored, so LINT001 must not flag a
    # GRAPH-prefixed id.
    findings = _lint(
        """
        import time

        def budget():
            return time.monotonic()  # repro: noqa[GRAPH001]
        """
    )
    # DET001 still fires (the waiver names GRAPH001, not DET001) but
    # the GRAPH-prefixed directive is never reported as unused.
    assert all(f.rule_id != "LINT001" for f in findings)


def test_filtered_run_has_no_evidence():
    # A --rule run that never executed PROB001 cannot call its
    # directives unused.
    findings = _lint(
        """
        def f(p):
            return p  # repro: noqa[PROB001]
        """,
        rule_ids=["DET001", "LINT001"],
    )
    assert findings == []


def test_lint001_respects_rule_filter():
    # LINT001 itself only runs when selected.
    findings = _lint(
        """
        def f(p):
            return p  # repro: noqa[PROB001]
        """,
        rule_ids=["PROB001"],
    )
    assert findings == []
