"""The fixture mini-trees are lint targets, not test modules."""

collect_ignore = ["fixtures"]
