"""The §3.1 storage covert channel processes."""

import numpy as np
import pytest

from repro.os_model.covert import (
    HandshakeReceiver,
    HandshakeSender,
    ObliviousReceiver,
    ObliviousSender,
)
from repro.os_model.kernel import UniprocessorKernel
from repro.os_model.scheduler import RandomScheduler, RoundRobinScheduler


class TestOblivious:
    def test_round_robin_perfect_delivery(self, rng):
        msg = rng.integers(0, 2, 1000)
        sender = ObliviousSender(0, msg)
        receiver = ObliviousReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RoundRobinScheduler())
        kernel.run(2000, rng)
        assert np.array_equal(receiver.received, msg)

    def test_random_schedule_loses_and_duplicates(self, rng):
        msg = rng.integers(0, 2, 5000)
        sender = ObliviousSender(0, msg)
        receiver = ObliviousReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RandomScheduler())
        kernel.run(
            200_000, rng, stop_condition=lambda _k: sender.done
        )
        # The receiver's stream differs from the message (stale reads
        # and overwrites) — the §3.1 phenomenon.
        got = receiver.received
        n = min(got.size, msg.size)
        assert not np.array_equal(got[:n], msg[:n])

    def test_sender_done_flag(self, rng):
        sender = ObliviousSender(0, np.array([1, 0]))
        receiver = ObliviousReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RoundRobinScheduler())
        kernel.run(10, rng)
        assert sender.done
        assert sender.position == 2

    def test_done_sender_stops_annotating(self, rng):
        sender = ObliviousSender(0, np.array([1]))
        kernel = UniprocessorKernel([sender], RoundRobinScheduler())
        trace = kernel.run(5, rng)
        assert trace.annotations == ["send", None, None, None, None]

    def test_message_validation(self):
        with pytest.raises(ValueError):
            ObliviousSender(0, np.zeros((2, 2), dtype=int))


class TestHandshake:
    def test_lossless_under_random_schedule(self, rng):
        msg = rng.integers(0, 2, 3000)
        sender = HandshakeSender(0, msg)
        receiver = HandshakeReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RandomScheduler())
        kernel.run(200_000, rng, stop_condition=lambda _k: sender.done)
        got = receiver.received
        assert np.array_equal(got, msg[: got.size])
        assert got.size >= msg.size - 1  # last symbol may be in flight

    def test_waits_counted(self, rng):
        msg = rng.integers(0, 2, 1000)
        sender = HandshakeSender(0, msg)
        receiver = HandshakeReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RandomScheduler())
        kernel.run(100_000, rng, stop_condition=lambda _k: sender.done)
        assert sender.waits > 0
        assert receiver.waits > 0

    def test_round_robin_no_sender_waits_needed(self, rng):
        """Under perfect alternation starting with the sender, the
        handshake wastes no sender quanta."""
        msg = rng.integers(0, 2, 100)
        sender = HandshakeSender(0, msg)
        receiver = HandshakeReceiver(1)
        kernel = UniprocessorKernel([sender, receiver], RoundRobinScheduler())
        kernel.run(200, rng)
        assert sender.waits == 0
        assert receiver.waits == 0
        assert np.array_equal(receiver.received, msg)
