"""Burst-length timing covert channel."""

import numpy as np
import pytest

from repro.os_model.timing_channel import (
    TimingChannelConfig,
    simulate_timing_channel,
)


class TestConfig:
    def test_valid(self):
        cfg = TimingChannelConfig([1, 2, 4], preempt_prob=0.1)
        assert cfg.num_symbols == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingChannelConfig([])
        with pytest.raises(ValueError):
            TimingChannelConfig([2, 1])  # not increasing
        with pytest.raises(ValueError):
            TimingChannelConfig([1, 1])  # duplicate
        with pytest.raises(ValueError):
            TimingChannelConfig([0, 1])
        with pytest.raises(ValueError):
            TimingChannelConfig([1, 2], preempt_prob=1.0)


class TestSimulation:
    def test_noiseless_perfect_decoding(self, rng):
        cfg = TimingChannelConfig([1, 3])
        msg = rng.integers(0, 2, 5000)
        run = simulate_timing_channel(msg, cfg, rng)
        assert run.symbol_errors == 0
        assert np.array_equal(run.decoded, msg)

    def test_quanta_accounting(self, rng):
        cfg = TimingChannelConfig([1, 3])
        msg = np.array([0, 1, 0])
        run = simulate_timing_channel(msg, cfg, rng)
        # 1+1 + 3+1 + 1+1 quanta.
        assert run.quanta == 8

    def test_preemption_causes_one_sided_errors(self, rng):
        cfg = TimingChannelConfig([1, 4], preempt_prob=0.4)
        msg = rng.integers(0, 2, 20_000)
        run = simulate_timing_channel(msg, cfg, rng)
        assert run.symbol_errors > 0
        # Errors are one-sided: a 0 (short burst) can stretch into a 1,
        # but a 1 can never shrink into a 0 — the timed-Z structure.
        upgraded = np.count_nonzero((msg == 0) & (run.decoded == 1))
        downgraded = np.count_nonzero((msg == 1) & (run.decoded == 0))
        assert upgraded > 0
        assert downgraded == 0

    def test_empirical_rate_below_stc_capacity(self, rng):
        cfg = TimingChannelConfig([1, 2, 4])
        msg = rng.integers(0, 3, 20_000)
        run = simulate_timing_channel(msg, cfg, rng)
        # Uniform signaling cannot beat the STC capacity.
        assert run.empirical_rate <= run.stc_capacity + 1e-9
        assert run.mutual_information_rate <= run.empirical_rate + 1e-9

    def test_noise_reduces_information_rate(self, rng):
        cfg_clean = TimingChannelConfig([1, 4])
        cfg_noisy = TimingChannelConfig([1, 4], preempt_prob=0.5)
        msg = rng.integers(0, 2, 30_000)
        clean = simulate_timing_channel(msg, cfg_clean, np.random.default_rng(1))
        noisy = simulate_timing_channel(msg, cfg_noisy, np.random.default_rng(1))
        assert noisy.mutual_information_rate < clean.mutual_information_rate

    def test_message_validation(self, rng):
        cfg = TimingChannelConfig([1, 2])
        with pytest.raises(ValueError):
            simulate_timing_channel(np.array([0, 2]), cfg, rng)
        with pytest.raises(ValueError):
            simulate_timing_channel(np.zeros((2, 2), dtype=int), cfg, rng)


class TestSchedulersExtra:
    """The stride and MLFQ schedulers added for the E7 design space."""

    def test_stride_equal_tickets_alternates(self, rng):
        from repro.os_model.measurement import run_oblivious_channel
        from repro.os_model.scheduler import StrideScheduler

        m = run_oblivious_channel(StrideScheduler(), rng, message_symbols=3000)
        assert m.params.deletion == 0.0
        assert m.params.insertion == 0.0

    def test_stride_proportional_share(self, rng):
        from repro.os_model.kernel import UniprocessorKernel
        from repro.os_model.process import IdleProcess
        from repro.os_model.scheduler import StrideScheduler

        a = IdleProcess(0, tickets=3)
        b = IdleProcess(1, tickets=1)
        kernel = UniprocessorKernel([a, b], StrideScheduler())
        trace = kernel.run(4000, rng)
        share = np.asarray(trace.schedule).mean()  # fraction of pid 1
        assert share == pytest.approx(0.25, abs=0.02)

    def test_mlfq_synchronous_for_symmetric_pair(self, rng):
        from repro.os_model.measurement import run_oblivious_channel
        from repro.os_model.scheduler import MultilevelFeedbackScheduler

        m = run_oblivious_channel(
            MultilevelFeedbackScheduler(), rng, message_symbols=3000
        )
        assert m.params.deletion == 0.0

    def test_mlfq_validation(self):
        from repro.os_model.scheduler import MultilevelFeedbackScheduler

        with pytest.raises(ValueError):
            MultilevelFeedbackScheduler(levels=0)
        with pytest.raises(ValueError):
            MultilevelFeedbackScheduler(boost_period=0)
