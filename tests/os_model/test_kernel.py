"""Kernel, processes, and schedulers."""

import numpy as np
import pytest

from repro.os_model.kernel import SharedRegister, UniprocessorKernel
from repro.os_model.process import IdleProcess, Process
from repro.os_model.scheduler import (
    FuzzyTimeScheduler,
    LotteryScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class CountingProcess(Process):
    def step(self, kernel):
        kernel.annotate(f"step-{self.pid}")


class TestSharedRegister:
    def test_read_write(self):
        reg = SharedRegister(5)
        assert reg.read() == 5
        reg.write(9)
        assert reg.read() == 9
        assert reg.writes == 1
        assert reg.reads == 2


class TestProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountingProcess(-1)
        with pytest.raises(ValueError):
            CountingProcess(0, tickets=0)

    def test_default_name(self):
        assert CountingProcess(3).name == "proc-3"

    def test_idle_process_does_nothing(self, rng):
        idle = IdleProcess(0)
        kernel = UniprocessorKernel([idle], RoundRobinScheduler())
        kernel.run(10, rng)
        assert kernel.register.writes == 0


class TestKernel:
    def test_trace_records_schedule(self, rng):
        procs = [CountingProcess(0), CountingProcess(1)]
        kernel = UniprocessorKernel(procs, RoundRobinScheduler())
        trace = kernel.run(6, rng)
        assert trace.schedule == [0, 1, 0, 1, 0, 1]
        assert trace.annotations[0] == "step-0"
        assert trace.runs_of(0) == 3

    def test_duplicate_pids_rejected(self):
        with pytest.raises(ValueError):
            UniprocessorKernel(
                [CountingProcess(0), CountingProcess(0)], RoundRobinScheduler()
            )

    def test_empty_process_list_rejected(self):
        with pytest.raises(ValueError):
            UniprocessorKernel([], RoundRobinScheduler())

    def test_sync_variables(self, rng):
        kernel = UniprocessorKernel([CountingProcess(0)], RoundRobinScheduler())
        assert kernel.read_sync("x") == 0
        kernel.toggle_sync("x")
        assert kernel.read_sync("x") == 1
        kernel.toggle_sync("x")
        assert kernel.read_sync("x") == 0

    def test_stop_condition(self, rng):
        kernel = UniprocessorKernel([CountingProcess(0)], RoundRobinScheduler())
        kernel.run(100, rng, stop_condition=lambda k: k.time >= 7)
        assert kernel.time == 7

    def test_negative_quanta_rejected(self, rng):
        kernel = UniprocessorKernel([CountingProcess(0)], RoundRobinScheduler())
        with pytest.raises(ValueError):
            kernel.run(-1, rng)


class TestSchedulers:
    def _run(self, scheduler, num_procs=2, quanta=10_000, seed=0):
        procs = [CountingProcess(pid) for pid in range(num_procs)]
        kernel = UniprocessorKernel(procs, scheduler)
        trace = kernel.run(quanta, np.random.default_rng(seed))
        return np.asarray(trace.schedule)

    def test_round_robin_alternates(self):
        sched = self._run(RoundRobinScheduler())
        assert np.array_equal(sched[::2], np.zeros(5000))
        assert np.array_equal(sched[1::2], np.ones(5000))

    def test_random_is_fair(self):
        sched = self._run(RandomScheduler())
        assert sched.mean() == pytest.approx(0.5, abs=0.02)

    def test_lottery_respects_tickets(self):
        procs = [
            CountingProcess(0, tickets=3),
            CountingProcess(1, tickets=1),
        ]
        kernel = UniprocessorKernel(procs, LotteryScheduler())
        trace = kernel.run(20_000, np.random.default_rng(0))
        share = np.asarray(trace.schedule).mean()
        assert share == pytest.approx(0.25, abs=0.02)

    def test_priority_preempts(self):
        procs = [
            CountingProcess(0, priority=0),
            CountingProcess(1, priority=5),
        ]
        kernel = UniprocessorKernel(procs, PriorityScheduler())
        trace = kernel.run(100, np.random.default_rng(0))
        assert all(pid == 1 for pid in trace.schedule)

    def test_priority_round_robins_within_class(self):
        procs = [
            CountingProcess(0, priority=1),
            CountingProcess(1, priority=1),
        ]
        kernel = UniprocessorKernel(procs, PriorityScheduler())
        trace = kernel.run(10, np.random.default_rng(0))
        assert trace.schedule == [0, 1] * 5

    def test_fuzzy_time_repeats_processes(self):
        sched = self._run(FuzzyTimeScheduler(0.5), quanta=20_000)
        repeats = (sched[1:] == sched[:-1]).mean()
        # Round-robin alone would give zero repeats.
        assert repeats == pytest.approx(0.5, abs=0.03)

    def test_fuzzy_validation(self):
        with pytest.raises(ValueError):
            FuzzyTimeScheduler(1.0)

    def test_schedulers_reject_empty_ready(self):
        rng = np.random.default_rng(0)
        for sched in (
            RoundRobinScheduler(),
            RandomScheduler(),
            LotteryScheduler(),
            PriorityScheduler(),
            FuzzyTimeScheduler(),
        ):
            with pytest.raises(ValueError):
                sched.select([], rng)
