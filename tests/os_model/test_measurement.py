"""Trace classification and scheduler measurement (paper §3.1-3.2)."""

import numpy as np
import pytest

from repro.core.events import ChannelEvent
from repro.os_model.kernel import KernelTrace
from repro.os_model.measurement import (
    classify_trace,
    measure_scheduler,
    run_oblivious_channel,
)
from repro.os_model.process import IdleProcess
from repro.os_model.scheduler import (
    FuzzyTimeScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def make_trace(annotations):
    return KernelTrace(
        schedule=list(range(len(annotations))), annotations=list(annotations)
    )


class TestClassifyTrace:
    def test_alternation_all_transmissions(self):
        events = classify_trace(make_trace(["send", "recv"] * 4))
        assert list(events) == [int(ChannelEvent.TRANSMISSION)] * 4

    def test_double_send_is_deletion(self):
        events = classify_trace(make_trace(["send", "send", "recv"]))
        assert list(events) == [
            int(ChannelEvent.DELETION),
            int(ChannelEvent.TRANSMISSION),
        ]

    def test_double_recv_is_insertion(self):
        events = classify_trace(make_trace(["send", "recv", "recv"]))
        assert list(events) == [
            int(ChannelEvent.TRANSMISSION),
            int(ChannelEvent.INSERTION),
        ]

    def test_leading_recv_is_insertion(self):
        events = classify_trace(make_trace(["recv", "send", "recv"]))
        assert list(events) == [
            int(ChannelEvent.INSERTION),
            int(ChannelEvent.TRANSMISSION),
        ]

    def test_waits_and_none_ignored(self):
        events = classify_trace(
            make_trace(["send", "send-wait", None, "recv", "recv-wait"])
        )
        assert list(events) == [int(ChannelEvent.TRANSMISSION)]

    def test_empty_trace(self):
        assert classify_trace(make_trace([])).size == 0


class TestRunObliviousChannel:
    def test_round_robin_synchronous(self, rng):
        m = run_oblivious_channel(
            RoundRobinScheduler(), rng, message_symbols=2000
        )
        assert m.params.deletion == 0.0
        assert m.params.insertion == 0.0
        assert m.report.corrected_capacity == 1.0

    def test_random_one_third_events(self, rng):
        m = run_oblivious_channel(RandomScheduler(), rng, message_symbols=20_000)
        # S/R i.i.d. fair coin: deletions, insertions, transmissions
        # each ~1/3 of channel events.
        assert m.params.deletion == pytest.approx(1 / 3, abs=0.02)
        assert m.params.insertion == pytest.approx(1 / 3, abs=0.02)

    def test_background_load_halves_quantum_rate(self, rng):
        base = run_oblivious_channel(RandomScheduler(), rng, message_symbols=10_000)
        loaded = run_oblivious_channel(
            RandomScheduler(),
            rng,
            message_symbols=10_000,
            extra_processes=[IdleProcess(9), IdleProcess(10)],
        )
        # Event *rates* are unchanged; per-quantum throughput halves.
        assert loaded.params.deletion == pytest.approx(
            base.params.deletion, abs=0.03
        )
        assert loaded.corrected_capacity_per_quantum == pytest.approx(
            base.corrected_capacity_per_quantum / 2, rel=0.1
        )

    def test_achievable_ranking(self, rng):
        rr = run_oblivious_channel(RoundRobinScheduler(), rng, message_symbols=5000)
        rnd = run_oblivious_channel(RandomScheduler(), rng, message_symbols=5000)
        assert rr.achievable_per_quantum > rnd.achievable_per_quantum

    def test_sender_slots_accounting(self, rng):
        m = run_oblivious_channel(RandomScheduler(), rng, message_symbols=5000)
        counts = np.bincount(m.events, minlength=4)
        slots = counts[int(ChannelEvent.DELETION)] + counts[
            int(ChannelEvent.TRANSMISSION)
        ]
        assert m.sender_slots_per_quantum == pytest.approx(slots / m.quanta)

    def test_metrics_dict(self, rng):
        metrics = measure_scheduler(
            FuzzyTimeScheduler(0.3), rng, message_symbols=3000
        )
        assert set(metrics) == {
            "deletion",
            "insertion",
            "corrected_capacity",
            "corrected_per_quantum",
            "achievable_per_quantum",
            "degradation",
        }
        assert 0 <= metrics["deletion"] < 1
