"""Covert-channel detection (the auditor's view)."""

import numpy as np
import pytest

from repro.os_model.covert import ObliviousReceiver, ObliviousSender
from repro.os_model.detection import (
    detect_covert_pair,
    interleaving_score,
    value_coupling_bits,
)
from repro.os_model.kernel import KernelTrace, UniprocessorKernel
from repro.os_model.scheduler import RandomScheduler, RoundRobinScheduler


def run_covert(rng, scheduler, symbols=4000):
    msg = rng.integers(0, 2, symbols)
    sender = ObliviousSender(0, msg)
    receiver = ObliviousReceiver(1)
    kernel = UniprocessorKernel([sender, receiver], scheduler)
    kernel.run(
        16 * symbols, rng, stop_condition=lambda _k: sender.done
    )
    return kernel.trace, msg, receiver.received


class TestInterleaving:
    def test_round_robin_pair_maximal(self, rng):
        trace, _w, _r = run_covert(rng, RoundRobinScheduler())
        assert interleaving_score(trace) > 0.99

    def test_random_schedule_near_half(self, rng):
        trace, _w, _r = run_covert(rng, RandomScheduler())
        assert interleaving_score(trace) == pytest.approx(0.5, abs=0.05)

    def test_empty_trace(self):
        assert interleaving_score(KernelTrace()) == 0.0

    def test_single_access(self):
        trace = KernelTrace(schedule=[0], annotations=["send"])
        assert interleaving_score(trace) == 0.0


class TestValueCoupling:
    def test_covert_pair_high_coupling(self, rng):
        _t, written, read = run_covert(rng, RoundRobinScheduler())
        mi = value_coupling_bits(written, read)
        assert mi > 0.9  # near 1 bit per symbol

    def test_independent_values_near_zero(self, rng):
        a = rng.integers(0, 2, 20_000)
        b = rng.integers(0, 2, 20_000)
        assert value_coupling_bits(a, b) < 0.01

    def test_short_sequences(self):
        assert value_coupling_bits([1], [1]) == 0.0


class TestDetector:
    def test_flags_round_robin_pair(self, rng):
        trace, written, read = run_covert(rng, RoundRobinScheduler())
        report = detect_covert_pair(trace, written, read)
        assert report.flagged
        assert "SUSPECTED" in report.summary()

    def test_flags_oblivious_pair_even_under_random_schedule(self, rng):
        """Scrambled scheduling kills the interleaving signal AND the
        naive positional pairing (the E1 alignment-collapse effect) —
        but the auditor can reconstruct the last-write-before-each-read
        pairing from the trace, and that coupling survives."""
        trace, written, read = run_covert(rng, RandomScheduler())
        # Naive positional pairing: near-zero MI (same as E1's naive
        # receiver) — the detector must NOT rely on it.
        naive = detect_covert_pair(trace, written, read)
        assert naive.interleaving < 0.6
        assert naive.coupling_bits < 0.05
        # Auditor's pairing: walk the trace, tracking the last value
        # written before each read.
        paired_writes, paired_reads = [], []
        w_pos = 0
        last_written = None
        r_pos = 0
        for note in trace.annotations:
            if note == "send":
                last_written = int(written[w_pos])
                w_pos += 1
            elif note == "recv":
                if last_written is not None:
                    paired_writes.append(last_written)
                    paired_reads.append(int(read[r_pos]))
                r_pos += 1
        report = detect_covert_pair(trace, paired_writes, paired_reads)
        assert report.coupling_bits > 0.9
        assert report.flagged

    def test_clean_workload_not_flagged(self, rng):
        """Independent processes touching the register do not trip the
        detector."""
        # Build a synthetic trace: random send/recv annotations with
        # independent random values.
        n = 10_000
        kinds = np.where(rng.random(n) < 0.5, "send", "recv")
        trace = KernelTrace(
            schedule=list(rng.integers(0, 2, n)),
            annotations=list(kinds),
        )
        written = rng.integers(0, 2, n)
        read = rng.integers(0, 2, n)
        report = detect_covert_pair(trace, written, read)
        assert not report.flagged

    def test_no_values_uses_interleaving_only(self, rng):
        trace, _w, _r = run_covert(rng, RoundRobinScheduler())
        report = detect_covert_pair(trace)
        assert report.flagged
        assert report.coupling_bits == 0.0

    def test_threshold_knobs(self, rng):
        trace, written, read = run_covert(rng, RoundRobinScheduler())
        strict = detect_covert_pair(
            trace, written, read,
            threshold_interleaving=1.1, threshold_coupling=2.0,
        )
        assert not strict.flagged
