"""MLS policy model and the §4.3 feedback-path exploit."""

import numpy as np
import pytest

from repro.core.events import ChannelParameters
from repro.os_model.mls import (
    MLSPolicy,
    SecurityLevel,
    Subject,
    exploit_with_legal_feedback,
)


HIGH = Subject("high", SecurityLevel.SECRET)
LOW = Subject("low", SecurityLevel.UNCLASSIFIED)


class TestPolicy:
    def test_legal_flow_is_upward(self):
        policy = MLSPolicy()
        assert policy.allows_flow(
            SecurityLevel.UNCLASSIFIED, SecurityLevel.SECRET
        )
        assert not policy.allows_flow(
            SecurityLevel.SECRET, SecurityLevel.UNCLASSIFIED
        )

    def test_same_level_allowed(self):
        policy = MLSPolicy()
        assert policy.allows_flow(SecurityLevel.SECRET, SecurityLevel.SECRET)

    def test_covert_direction(self):
        policy = MLSPolicy()
        assert policy.is_covert(SecurityLevel.SECRET, SecurityLevel.UNCLASSIFIED)
        assert not policy.is_covert(
            SecurityLevel.UNCLASSIFIED, SecurityLevel.SECRET
        )

    def test_feedback_legality(self):
        policy = MLSPolicy()
        # Covert high->low: feedback low->high is the legal direction.
        assert policy.feedback_is_legal(HIGH, LOW)

    def test_levels_ordered(self):
        assert SecurityLevel.UNCLASSIFIED < SecurityLevel.CONFIDENTIAL
        assert SecurityLevel.SECRET < SecurityLevel.TOP_SECRET


class TestExploit:
    def test_achieves_theoretical_rate(self, rng):
        params = ChannelParameters.from_rates(0.1, 0.05)
        m = exploit_with_legal_feedback(
            HIGH, LOW, params, rng, bits_per_symbol=2, message_symbols=80_000
        )
        assert m.empirical_information_per_slot == pytest.approx(
            m.theoretical_lower_exact, rel=0.03
        )
        assert m.empirical_information_per_slot <= m.theoretical_upper

    def test_rejects_legal_direction(self, rng):
        with pytest.raises(PermissionError):
            exploit_with_legal_feedback(
                LOW, HIGH, ChannelParameters.from_rates(0.1, 0.05), rng
            )

    def test_rejects_same_level(self, rng):
        peer = Subject("peer", SecurityLevel.SECRET)
        with pytest.raises(PermissionError):
            exploit_with_legal_feedback(
                HIGH, peer, ChannelParameters.from_rates(0.1, 0.05), rng
            )

    def test_small_run(self, rng):
        params = ChannelParameters.from_rates(0.05, 0.0)
        m = exploit_with_legal_feedback(
            HIGH, LOW, params, rng, message_symbols=500
        )
        assert m.run.symbols_delivered == 500
