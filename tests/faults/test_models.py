"""Fault models: event-stream processes and the feedback fault model."""

import numpy as np
import pytest

from repro.core.events import ChannelEvent, ChannelParameters
from repro.faults.models import (
    AckOutcome,
    DriftingParameterModel,
    FeedbackFaultModel,
    GilbertElliottModel,
    IIDEventModel,
)

GOOD = ChannelParameters.from_rates(deletion=0.1, insertion=0.05)
BAD = ChannelParameters.from_rates(deletion=0.5, insertion=0.15)


class TestIIDEventModel:
    def test_matches_nominal_frequencies(self, rng):
        model = IIDEventModel(GOOD)
        events = model.sample(200_000, rng)
        freq_d = np.mean(events == ChannelEvent.DELETION)
        freq_i = np.mean(events == ChannelEvent.INSERTION)
        assert freq_d == pytest.approx(0.1, abs=0.01)
        assert freq_i == pytest.approx(0.05, abs=0.01)

    def test_expected_parameters_is_nominal(self):
        assert IIDEventModel(GOOD).expected_parameters() is GOOD

    def test_rejects_negative_uses(self, rng):
        with pytest.raises(ValueError):
            IIDEventModel(GOOD).sample(-1, rng)


class TestGilbertElliott:
    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottModel(GOOD, BAD, p_gb=0.0, p_bg=0.1)
        with pytest.raises(ValueError):
            GilbertElliottModel(GOOD, BAD, p_gb=0.1, p_bg=1.5)

    def test_stationary_bad_fraction(self):
        model = GilbertElliottModel(GOOD, BAD, p_gb=0.01, p_bg=0.04)
        assert model.stationary_bad_fraction == pytest.approx(0.2)

    def test_bad_state_raises_deletion_rate(self, rng):
        model = GilbertElliottModel(GOOD, BAD, p_gb=0.02, p_bg=0.02)
        events = model.sample(200_000, rng)
        freq_d = np.mean(events == ChannelEvent.DELETION)
        expected = model.expected_parameters().deletion
        assert expected == pytest.approx(0.3, abs=1e-12)
        assert freq_d == pytest.approx(expected, abs=0.02)
        assert model.bad_uses > 0

    def test_burstiness(self, rng):
        """Deletions cluster: the bad state produces runs of loss that an
        i.i.d. process at the same mean rate essentially never does."""
        model = GilbertElliottModel(GOOD, BAD, p_gb=0.005, p_bg=0.02)
        events = model.sample(100_000, rng)
        deleted = (events == ChannelEvent.DELETION).astype(int)
        # Longest run of consecutive deletions.
        longest = run = 0
        for d in deleted:
            run = run + 1 if d else 0
            longest = max(longest, run)
        assert longest >= 6  # i.i.d. at P_d≈0.18: P(run of 6) ≈ 3e-5 per site

    def test_state_persists_across_blocks(self, rng):
        """sample() continues one chain; reset() restarts it."""
        model = GilbertElliottModel(GOOD, BAD, p_gb=0.05, p_bg=0.05)
        a1 = model.sample(500, np.random.default_rng(7))
        a2 = model.sample(500, np.random.default_rng(8))
        model.reset()
        b1 = model.sample(500, np.random.default_rng(7))
        assert np.array_equal(a1, b1)
        assert model.state in (model.GOOD, model.BAD)
        assert not np.array_equal(a2, b1)  # different position in the chain

    def test_empty_draw(self, rng):
        model = GilbertElliottModel(GOOD, BAD, p_gb=0.05, p_bg=0.05)
        assert model.sample(0, rng).shape == (0,)


class TestDriftingParameterModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftingParameterModel(GOOD, BAD, ramp_uses=0)

    def test_params_at_endpoints(self):
        model = DriftingParameterModel(GOOD, BAD, ramp_uses=1000)
        assert model.params_at(0).deletion == pytest.approx(GOOD.deletion)
        assert model.params_at(1000).deletion == pytest.approx(BAD.deletion)
        assert model.params_at(10_000).deletion == pytest.approx(BAD.deletion)
        assert model.params_at(500).deletion == pytest.approx(
            0.5 * (GOOD.deletion + BAD.deletion)
        )

    def test_drift_is_visible_in_frequencies(self, rng):
        model = DriftingParameterModel(GOOD, BAD, ramp_uses=50_000)
        early = model.sample(10_000, rng)
        model.t = 40_000
        late = model.sample(10_000, rng)
        rate = lambda ev: np.mean(ev == ChannelEvent.DELETION)  # noqa: E731
        assert rate(late) > rate(early) + 0.15

    def test_reset_rewinds_time(self, rng):
        model = DriftingParameterModel(GOOD, BAD, ramp_uses=100)
        model.sample(500, rng)
        assert model.t == 500
        model.reset()
        assert model.t == 0

    def test_expected_parameters_is_plateau(self):
        model = DriftingParameterModel(GOOD, BAD, ramp_uses=10)
        assert model.expected_parameters() is BAD


class TestFeedbackFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackFaultModel(ack_loss_prob=-0.1)
        with pytest.raises(ValueError):
            FeedbackFaultModel(desync_prob=1.5)
        with pytest.raises(ValueError):
            FeedbackFaultModel(
                ack_loss_prob=0.5, ack_delay_prob=0.4, ack_corrupt_prob=0.2
            )

    def test_perfect_path(self, rng):
        model = FeedbackFaultModel()
        assert model.is_perfect
        assert model.ack_failure_prob == 0.0
        assert all(
            model.ack_outcome(rng) == AckOutcome.DELIVERED for _ in range(100)
        )
        assert not any(model.desync_occurs(rng) for _ in range(100))

    def test_outcome_frequencies(self, rng):
        model = FeedbackFaultModel(
            ack_loss_prob=0.2, ack_delay_prob=0.1, ack_corrupt_prob=0.05
        )
        assert not model.is_perfect
        assert model.ack_failure_prob == pytest.approx(0.35)
        outcomes = np.array([int(model.ack_outcome(rng)) for _ in range(20_000)])
        assert np.mean(outcomes == AckOutcome.LOST) == pytest.approx(0.2, abs=0.02)
        assert np.mean(outcomes == AckOutcome.DELAYED) == pytest.approx(
            0.1, abs=0.02
        )
        assert np.mean(outcomes == AckOutcome.CORRUPTED) == pytest.approx(
            0.05, abs=0.02
        )

    def test_desync_frequency(self, rng):
        model = FeedbackFaultModel(desync_prob=0.1)
        hits = sum(model.desync_occurs(rng) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.1, abs=0.02)
