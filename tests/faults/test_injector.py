"""FaultInjector: hook installation, fault streams, and the
run-under-faults harness."""

import numpy as np
import pytest

from repro.core.events import ChannelParameters, sample_events
from repro.core.events import active_fault_injector
from repro.faults.injector import (
    FaultInjector,
    FaultLog,
    active_injector,
    run_under_faults,
)
from repro.faults.models import FeedbackFaultModel, IIDEventModel
from repro.sync.feedback import CounterProtocol

PARAMS = ChannelParameters.from_rates(deletion=0.1, insertion=0.05)
HEAVY = ChannelParameters.from_rates(deletion=0.6, insertion=0.0)


class TestFaultLog:
    def test_record_and_snapshot(self):
        log = FaultLog()
        log.record("x")
        log.record("x", 2)
        assert log.get("x") == 3
        assert log.get("missing") == 0
        snap = log.snapshot()
        log.record("x")
        assert snap == {"x": 3}  # snapshot is detached
        log.clear()
        assert log.get("x") == 0


class TestActivation:
    def test_no_injector_by_default(self):
        assert active_injector() is None
        assert active_fault_injector() is None

    def test_hook_reroutes_sample_events(self, rng):
        """Inside active(), sample_events draws from the injector's
        model — here a much heavier channel than the one requested."""
        injector = FaultInjector(IIDEventModel(HEAVY), seed=3)
        with injector.active():
            assert active_injector() is injector
            events = sample_events(PARAMS, 50_000, rng)
        assert np.mean(events == 0) == pytest.approx(0.6, abs=0.02)
        assert injector.log.get("faulted_uses") == 50_000
        assert active_injector() is None  # uninstalled on exit

    def test_no_event_model_leaves_forward_path_alone(self, rng):
        injector = FaultInjector(feedback=FeedbackFaultModel(ack_loss_prob=0.5))
        baseline = sample_events(PARAMS, 2000, np.random.default_rng(11))
        with injector.active():
            hooked = sample_events(PARAMS, 2000, np.random.default_rng(11))
        assert np.array_equal(baseline, hooked)

    def test_nesting_restores_previous(self):
        outer = FaultInjector(IIDEventModel(HEAVY), seed=1)
        inner = FaultInjector(IIDEventModel(PARAMS), seed=2)
        with outer.active():
            with inner.active():
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None


class TestFaultStreams:
    def test_feedback_stream_independent_of_protocol_rng(self, rng):
        """Drawing ack outcomes does not consume the caller's rng."""
        injector = FaultInjector(
            feedback=FeedbackFaultModel(ack_loss_prob=0.5), seed=9
        )
        state_before = rng.bit_generator.state
        for _ in range(100):
            injector.ack_outcome()
        assert rng.bit_generator.state == state_before
        assert injector.log.get("acks_lost") > 20

    def test_desync_values(self):
        injector = FaultInjector(
            feedback=FeedbackFaultModel(desync_prob=0.5), seed=4
        )
        drifts = [injector.desync() for _ in range(2000)]
        assert set(drifts) == {-1, 0, 1}
        assert injector.log.get("desyncs_injected") == sum(
            1 for d in drifts if d != 0
        )

    def test_reset_reproduces_streams(self):
        injector = FaultInjector(
            IIDEventModel(PARAMS),
            FeedbackFaultModel(ack_loss_prob=0.3, desync_prob=0.1),
            seed=21,
        )
        a = [int(injector.ack_outcome()) for _ in range(500)]
        d = [injector.desync() for _ in range(500)]
        injector.reset()
        assert [int(injector.ack_outcome()) for _ in range(500)] == a
        assert [injector.desync() for _ in range(500)] == d
        assert injector.log.get("acks_lost") == a.count(1)

    def test_abandon_guess_in_range(self):
        injector = FaultInjector(seed=5)
        guesses = [injector.abandon_guess(8) for _ in range(200)]
        assert all(0 <= g < 8 for g in guesses)
        assert len(set(guesses)) > 1


class TestRunUnderFaults:
    def test_baseline_completes_within_bound(self, rng):
        injector = FaultInjector(IIDEventModel(PARAMS), seed=0)
        proto = CounterProtocol(PARAMS, bits_per_symbol=2)
        msg = rng.integers(0, 4, 5000)
        fm = run_under_faults(proto, msg, rng, injector)
        assert fm.completed
        assert fm.within_bound
        assert fm.empirical_params.deletion == pytest.approx(0.1, abs=0.02)
        assert fm.empirical_erasure_bound == pytest.approx(
            2 * (1 - fm.empirical_params.deletion)
        )
        assert not fm.run.degraded

    def test_heavy_faults_shrink_the_bound(self, rng):
        light = FaultInjector(IIDEventModel(PARAMS), seed=0)
        heavy = FaultInjector(
            IIDEventModel(ChannelParameters.from_rates(0.5, 0.05)), seed=0
        )
        proto = CounterProtocol(PARAMS, bits_per_symbol=2)
        msg = np.random.default_rng(1).integers(0, 4, 5000)
        fm_light = run_under_faults(proto, msg, np.random.default_rng(2), light)
        fm_heavy = run_under_faults(proto, msg, np.random.default_rng(2), heavy)
        assert fm_heavy.empirical_params.deletion > 0.4
        assert fm_heavy.empirical_erasure_bound < fm_light.empirical_erasure_bound
        assert fm_heavy.within_bound

    def test_reproducible_from_seed(self):
        def one_run():
            injector = FaultInjector(
                IIDEventModel(HEAVY),
                FeedbackFaultModel(desync_prob=0.01),
                seed=13,
            )
            proto = CounterProtocol(PARAMS, bits_per_symbol=2)
            rng = np.random.default_rng(13)
            msg = rng.integers(0, 4, 3000)
            return run_under_faults(proto, msg, rng, injector)

        a, b = one_run(), one_run()
        assert np.array_equal(a.run.delivered, b.run.delivered)
        assert a.fault_counts == b.fault_counts
        assert a.information_rate_per_use == b.information_rate_per_use
