"""The named fault-scenario registry."""

import pytest

from repro.core.events import ChannelParameters
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    DriftingParameterModel,
    GilbertElliottModel,
    IIDEventModel,
)
from repro.faults.scenarios import (
    SCENARIOS,
    FaultScenario,
    build_injector,
    get_scenario,
    list_scenarios,
    register_scenario,
)

PARAMS = ChannelParameters.from_rates(deletion=0.1, insertion=0.05)

EXPECTED_NAMES = {
    "baseline",
    "bursty_loss",
    "slow_drift",
    "lossy_ack",
    "delayed_ack",
    "ack_corruption",
    "counter_desync",
    "stress",
}


def test_registry_contents():
    assert set(SCENARIOS) == EXPECTED_NAMES
    names = [s.name for s in list_scenarios()]
    assert names == sorted(names)


def test_get_scenario_unknown():
    with pytest.raises(KeyError, match="no_such"):
        get_scenario("no_such")


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_scenario(
            FaultScenario("baseline", "dup", lambda p, s: FaultInjector())
        )


def test_every_scenario_builds():
    for scenario in list_scenarios():
        injector = scenario.build(PARAMS, seed=3)
        assert isinstance(injector, FaultInjector)
        assert injector.seed == 3
        assert scenario.description


def test_build_injector_shorthand():
    a = build_injector("lossy_ack", PARAMS, seed=5)
    assert a.feedback.ack_loss_prob == pytest.approx(0.2)
    assert isinstance(a.event_model, IIDEventModel)


def test_scenario_shapes():
    assert isinstance(
        get_scenario("bursty_loss").build(PARAMS).event_model, GilbertElliottModel
    )
    assert isinstance(
        get_scenario("slow_drift").build(PARAMS).event_model,
        DriftingParameterModel,
    )
    assert get_scenario("counter_desync").build(PARAMS).feedback.desync_prob > 0
    stress = get_scenario("stress").build(PARAMS)
    assert stress.feedback.ack_failure_prob > 0.25
    assert stress.feedback.desync_prob > 0


def test_scenarios_scale_with_nominal_params():
    """Recipes are parameter-relative: a heavier nominal channel yields a
    heavier bad state."""
    light = get_scenario("bursty_loss").build(
        ChannelParameters.from_rates(0.05, 0.0)
    )
    heavy = get_scenario("bursty_loss").build(
        ChannelParameters.from_rates(0.3, 0.0)
    )
    assert heavy.event_model.bad.deletion > light.event_model.bad.deletion
    assert heavy.event_model.good.deletion == pytest.approx(0.3)


def test_bad_state_distribution_is_valid():
    for name in EXPECTED_NAMES:
        injector = get_scenario(name).build(
            ChannelParameters.from_rates(0.8, 0.1)
        )
        model = injector.event_model
        for params in (
            getattr(model, "bad", None),
            getattr(model, "end", None),
        ):
            if params is not None:
                total = params.deletion + params.insertion + params.transmission
                assert total == pytest.approx(1.0)
