"""Cross-module integration tests: the paper's end-to-end stories."""

import numpy as np
import pytest

from repro import (
    CapacityEstimator,
    ChannelParameters,
    DeletionInsertionChannel,
    erasure_upper_bound,
    feedback_lower_bound,
)
from repro.coding import ConvolutionalCode, DriftChannelModel, WatermarkCode
from repro.core.capacity import feedback_lower_bound_exact
from repro.core.events import empirical_parameters
from repro.os_model import (
    RandomScheduler,
    RoundRobinScheduler,
    run_oblivious_channel,
)
from repro.sync import CounterProtocol, ResendProtocol, measure_protocol
from repro.timing import fsm_capacity, stc_capacity


class TestEstimationPipeline:
    """§4.3 recipe: traditional estimate -> measure -> correct."""

    def test_fsm_estimate_corrected_by_measured_pd(self, rng):
        physical = fsm_capacity(1, [(0, 0, 1.0), (0, 0, 2.0)])
        channel = DeletionInsertionChannel(
            ChannelParameters.from_rates(0.15, 0.05), bits_per_symbol=1
        )
        record = channel.transmit(rng.integers(0, 2, 60_000), rng)
        measured = empirical_parameters(record.events)
        report = CapacityEstimator(
            1, physical_capacity=physical
        ).estimate(measured)
        assert report.corrected_physical == pytest.approx(
            physical * 0.85, rel=0.03
        )

    def test_scheduler_to_estimate_pipeline(self, rng):
        """Kernel trace -> event classification -> capacity report."""
        m = run_oblivious_channel(RandomScheduler(), rng, message_symbols=8000)
        assert m.report.corrected_capacity == pytest.approx(
            1 - m.params.deletion
        )
        assert 0 < m.achievable_per_quantum < 0.5


class TestProtocolVsChannelConsistency:
    """The sync protocols and the raw channel agree on statistics."""

    def test_counter_protocol_event_rates_match_channel(self, rng):
        params = ChannelParameters.from_rates(0.2, 0.15)
        proto = CounterProtocol(params, bits_per_symbol=2)
        run = proto.run(rng.integers(0, 4, 40_000), rng)
        total = run.channel_uses
        assert run.deletions / total == pytest.approx(0.2, abs=0.01)
        assert run.insertions / total == pytest.approx(0.15, abs=0.01)

    def test_bounds_sandwich_measured_rates(self, rng):
        for pd, pi in [(0.1, 0.05), (0.2, 0.2)]:
            params = ChannelParameters.from_rates(pd, pi)
            proto = CounterProtocol(params, bits_per_symbol=2)
            m = measure_protocol(proto, rng.integers(0, 4, 60_000), rng)
            assert (
                m.empirical_information_per_slot
                <= erasure_upper_bound(2, pd) + 0.05
            )
            assert m.empirical_information_per_slot == pytest.approx(
                feedback_lower_bound_exact(2, pd, pi), rel=0.05
            )


class TestFeedbackVsNoFeedback:
    """Section 4's central comparison, end to end."""

    def test_watermark_rate_below_feedback_rate(self, rng):
        pi = pd = 0.02
        channel = DriftChannelModel(pi, pd, max_drift=12)
        wm = WatermarkCode(payload_bits=36)
        result = wm.simulate_frame(channel, rng)
        assert result.bit_error_rate <= 0.15
        # Even counting only successful bits, the code rate is far
        # below what the feedback protocol sustains.
        assert wm.rate < 0.5 * feedback_lower_bound(1, pd, pi)

    def test_resend_protocol_beats_any_code_rate(self, rng):
        pd = 0.05
        proto = ResendProtocol(
            ChannelParameters.from_rates(pd, 0.0), bits_per_symbol=1
        )
        run = proto.run(rng.integers(0, 2, 50_000), rng)
        cc = ConvolutionalCode((0o23, 0o35))
        code_rate = 0.5  # rate-1/2 outer code
        assert run.throughput_per_use > code_rate


class TestSchedulerStory:
    """§3.1: round-robin is the covert pair's friend."""

    def test_round_robin_vs_random(self, rng):
        rr = run_oblivious_channel(
            RoundRobinScheduler(), rng, message_symbols=4000
        )
        rnd = run_oblivious_channel(
            RandomScheduler(), rng, message_symbols=4000
        )
        assert rr.params.deletion == 0.0
        assert rnd.params.deletion > 0.2
        assert rr.achievable_per_quantum > 2 * rnd.achievable_per_quantum


class TestTraditionalEstimatorsAgree:
    def test_stc_and_fsm_coincide_on_memoryless_channels(self):
        times = [1.0, 2.0, 3.5]
        edges = [(0, 0, t) for t in times]
        assert fsm_capacity(1, edges) == pytest.approx(
            stc_capacity(times), abs=1e-9
        )


class TestCompositionAcrossDomains:
    """Scheduler-induced channel feeding the network channel: the
    composition law predicts the end-to-end statistics."""

    def test_scheduler_then_network_composite(self, rng):
        from repro.core.composition import compose_parameters
        from repro.network.packet_channel import (
            PacketFlowConfig,
            measured_parameters,
            transmit_flow,
        )

        # Stage 1: measured scheduler channel (random scheduler).
        stage1 = run_oblivious_channel(
            RandomScheduler(), rng, message_symbols=10_000
        ).params
        # Stage 2: network with 10% loss.
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.1)
        msg = rng.integers(0, 2, 20_000)
        stage2 = measured_parameters(transmit_flow(msg, cfg, rng))

        composite = compose_parameters(
            [
                ChannelParameters.from_rates(stage1.deletion, stage1.insertion),
                ChannelParameters.from_rates(stage2.deletion, stage2.insertion),
            ]
        )
        # Survival through both stages multiplies.
        s1 = stage1.transmission / (stage1.deletion + stage1.transmission)
        s2 = stage2.transmission / (stage2.deletion + stage2.transmission)
        survival = composite.transmission / (
            composite.deletion + composite.transmission
        )
        assert survival == pytest.approx(s1 * s2, rel=1e-9)
        # The composite erasure bound is below each stage's.
        from repro.core.composition import composition_is_degrading

        assert composition_is_degrading(
            1,
            [
                ChannelParameters.from_rates(stage1.deletion, stage1.insertion),
                ChannelParameters.from_rates(stage2.deletion, stage2.insertion),
            ],
        )


class TestAdaptivePipeline:
    def test_attack_rate_close_to_oracle(self, rng):
        from repro.sync.adaptive import run_adaptive_session

        params = ChannelParameters.from_rates(0.08, 0.05)
        session = run_adaptive_session(
            params, rng, pilot_frames=2, pilot_length=120,
            payload_symbols=15_000,
        )
        assert session.effective_rate > 0.75 * session.oracle_rate
        assert session.overhead_fraction < 0.1
