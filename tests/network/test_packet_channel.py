"""Network packet-timing covert channel."""

import numpy as np
import pytest

from repro.core.events import ChannelEvent
from repro.network.packet_channel import (
    FlowRecord,
    PacketFlowConfig,
    decode_gaps,
    measured_parameters,
    transmit_flow,
)


class TestConfig:
    def test_valid(self):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.1)
        assert cfg.num_symbols == 2
        assert cfg.mean_duration == 1.5

    def test_synchronous_capacity_is_shannon(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        assert cfg.synchronous_capacity() == pytest.approx(0.6942, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([2.0, 1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 2.0], loss_prob=1.0)
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 2.0], jitter_std=-0.1)


class TestCleanNetwork:
    def test_perfect_transmission(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0])
        msg = rng.integers(0, 2, 2000)
        rec = transmit_flow(msg, cfg, rng)
        assert np.array_equal(rec.decoded, msg)
        assert np.all(rec.events == int(ChannelEvent.TRANSMISSION))
        assert rec.duration == pytest.approx(rec.observed_gaps.sum())

    def test_duration_is_sum_of_gaps(self, rng):
        cfg = PacketFlowConfig([1.0, 3.0])
        msg = np.array([0, 1, 0])
        rec = transmit_flow(msg, cfg, rng)
        assert rec.duration == pytest.approx(5.0)


class TestImpairments:
    def test_loss_rate_measured(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.15)
        msg = rng.integers(0, 2, 30_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        assert params.deletion == pytest.approx(0.15, abs=0.01)

    def test_duplication_creates_insertions(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], duplicate_prob=0.1)
        msg = rng.integers(0, 2, 30_000)
        rec = transmit_flow(msg, cfg, rng)
        params = measured_parameters(rec)
        assert params.insertion == pytest.approx(0.1, abs=0.015)
        # The receiver sees more gaps than symbols sent.
        assert rec.observed_gaps.size > msg.size

    def test_jitter_causes_substitutions_only(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], jitter_std=0.2)
        msg = rng.integers(0, 2, 20_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        assert params.deletion == 0.0
        assert params.insertion == 0.0
        assert params.substitution > 0.01

    def test_no_jitter_no_substitutions(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.1)
        msg = rng.integers(0, 2, 5000)
        rec = transmit_flow(msg, cfg, rng)
        # Losses merge gaps; merged gaps decode as (long) symbols but
        # deletions themselves are labeled exactly.
        counts = np.bincount(rec.events, minlength=4)
        assert counts[int(ChannelEvent.DELETION)] > 0

    def test_gap_merge_lengthens_observed_gap(self, rng):
        # Force the middle packet lost in a 2-symbol flow.
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.999)
        msg = np.array([0, 0])
        rec = transmit_flow(msg, cfg, np.random.default_rng(3))
        # With both interior/last packets almost surely lost, at most
        # one (merged or empty) gap remains.
        assert rec.observed_gaps.size <= 1


class TestDecodeGaps:
    def test_threshold_decoding(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        out = decode_gaps([0.9, 1.4, 1.6, 5.0], cfg)
        assert list(out) == [0, 0, 1, 1]

    def test_validation(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        with pytest.raises(ValueError):
            decode_gaps([[1.0]], cfg)
        with pytest.raises(ValueError):
            decode_gaps([-1.0], cfg)


class TestMeasurement:
    def test_empty_flow_rejected(self):
        empty = FlowRecord(
            message=np.array([], dtype=int),
            observed_gaps=np.array([]),
            decoded=np.array([], dtype=int),
            events=np.array([], dtype=int),
            duration=0.0,
        )
        with pytest.raises(ValueError):
            measured_parameters(empty)

    def test_estimation_pipeline(self, rng):
        """End to end: flow -> parameters -> corrected capacity."""
        from repro.core.estimation import CapacityEstimator

        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.2)
        msg = rng.integers(0, 2, 20_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        naive = cfg.synchronous_capacity()
        report = CapacityEstimator(1, physical_capacity=naive).estimate(params)
        assert report.corrected_physical == pytest.approx(0.8 * naive, rel=0.05)


class TestMeasurementDegeneratePaths:
    """Edge cases the E17 samplers drive through measured_parameters."""

    def _record(self, events):
        events = np.asarray(events, dtype=np.int64)
        return FlowRecord(
            message=np.zeros(events.size, dtype=np.int64),
            observed_gaps=np.array([]),
            decoded=np.array([], dtype=np.int64),
            events=events,
            duration=0.0,
        )

    def test_all_interior_packets_lost(self, rng):
        # Force a flow whose every interior packet is lost: the record
        # is all deletions and the measured parameters are the
        # degenerate-but-valid P_d = 1 corner, not NaN or a crash.
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.999999)
        record = transmit_flow(rng.integers(0, 2, 50), cfg, rng)
        assert record.observed_gaps.size == 0
        params = measured_parameters(record)
        assert params.deletion == 1.0
        assert params.insertion == 0.0
        assert params.substitution == 0.0

    def test_duplicate_of_duplicate_still_counts_insertions(self, rng):
        # With duplicate_prob high, a duplicated packet's copy lands in
        # the same gap as further duplicates: each copy must still be
        # one insertion in the event ledger.
        cfg = PacketFlowConfig([1.0, 2.0], duplicate_prob=0.9)
        msg = rng.integers(0, 2, 2000)
        record = transmit_flow(msg, cfg, rng)
        extra = record.observed_gaps.size - msg.size
        assert extra > 0
        counts = np.bincount(record.events, minlength=4)
        assert counts[int(ChannelEvent.INSERTION)] == extra
        params = measured_parameters(record)
        assert 0.0 < params.insertion < 1.0

    def test_duplicate_of_last_packet_uses_fallback_gap(self):
        # The final packet has no following gap; its duplicate lands a
        # fraction of durations[0] later and must appear as exactly one
        # insertion, not an index error.
        cfg = PacketFlowConfig([1.0, 2.0], duplicate_prob=0.999999)
        rng = np.random.default_rng(0)
        record = transmit_flow(np.array([0]), cfg, rng)
        counts = np.bincount(record.events, minlength=4)
        assert counts[int(ChannelEvent.INSERTION)] >= 1
        params = measured_parameters(record)
        assert params.insertion > 0

    def test_negative_event_code_rejected(self):
        with pytest.raises(ValueError, match="invalid event code -1"):
            measured_parameters(self._record([2, -1, 2]))

    def test_out_of_range_event_code_rejected(self):
        # Codes above 3 used to silently inflate the denominator and
        # deflate every rate; now they are named and rejected.
        with pytest.raises(ValueError, match="invalid event code 7"):
            measured_parameters(self._record([2, 7, 2]))

    def test_non_integer_events_rejected(self):
        record = FlowRecord(
            message=np.array([0]),
            observed_gaps=np.array([]),
            decoded=np.array([], dtype=np.int64),
            events=np.array([2.0, 0.5]),
            duration=0.0,
        )
        with pytest.raises(ValueError, match="integer"):
            measured_parameters(record)

    def test_empty_flow_message_names_the_problem(self):
        record = self._record([])
        with pytest.raises(ValueError, match="no channel events"):
            measured_parameters(record)
