"""Network packet-timing covert channel."""

import numpy as np
import pytest

from repro.core.events import ChannelEvent
from repro.network.packet_channel import (
    FlowRecord,
    PacketFlowConfig,
    decode_gaps,
    measured_parameters,
    transmit_flow,
)


class TestConfig:
    def test_valid(self):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.1)
        assert cfg.num_symbols == 2
        assert cfg.mean_duration == 1.5

    def test_synchronous_capacity_is_shannon(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        assert cfg.synchronous_capacity() == pytest.approx(0.6942, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([2.0, 1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 1.0])
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 2.0], loss_prob=1.0)
        with pytest.raises(ValueError):
            PacketFlowConfig([1.0, 2.0], jitter_std=-0.1)


class TestCleanNetwork:
    def test_perfect_transmission(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0])
        msg = rng.integers(0, 2, 2000)
        rec = transmit_flow(msg, cfg, rng)
        assert np.array_equal(rec.decoded, msg)
        assert np.all(rec.events == int(ChannelEvent.TRANSMISSION))
        assert rec.duration == pytest.approx(rec.observed_gaps.sum())

    def test_duration_is_sum_of_gaps(self, rng):
        cfg = PacketFlowConfig([1.0, 3.0])
        msg = np.array([0, 1, 0])
        rec = transmit_flow(msg, cfg, rng)
        assert rec.duration == pytest.approx(5.0)


class TestImpairments:
    def test_loss_rate_measured(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.15)
        msg = rng.integers(0, 2, 30_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        assert params.deletion == pytest.approx(0.15, abs=0.01)

    def test_duplication_creates_insertions(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], duplicate_prob=0.1)
        msg = rng.integers(0, 2, 30_000)
        rec = transmit_flow(msg, cfg, rng)
        params = measured_parameters(rec)
        assert params.insertion == pytest.approx(0.1, abs=0.015)
        # The receiver sees more gaps than symbols sent.
        assert rec.observed_gaps.size > msg.size

    def test_jitter_causes_substitutions_only(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], jitter_std=0.2)
        msg = rng.integers(0, 2, 20_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        assert params.deletion == 0.0
        assert params.insertion == 0.0
        assert params.substitution > 0.01

    def test_no_jitter_no_substitutions(self, rng):
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.1)
        msg = rng.integers(0, 2, 5000)
        rec = transmit_flow(msg, cfg, rng)
        # Losses merge gaps; merged gaps decode as (long) symbols but
        # deletions themselves are labeled exactly.
        counts = np.bincount(rec.events, minlength=4)
        assert counts[int(ChannelEvent.DELETION)] > 0

    def test_gap_merge_lengthens_observed_gap(self, rng):
        # Force the middle packet lost in a 2-symbol flow.
        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.999)
        msg = np.array([0, 0])
        rec = transmit_flow(msg, cfg, np.random.default_rng(3))
        # With both interior/last packets almost surely lost, at most
        # one (merged or empty) gap remains.
        assert rec.observed_gaps.size <= 1


class TestDecodeGaps:
    def test_threshold_decoding(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        out = decode_gaps([0.9, 1.4, 1.6, 5.0], cfg)
        assert list(out) == [0, 0, 1, 1]

    def test_validation(self):
        cfg = PacketFlowConfig([1.0, 2.0])
        with pytest.raises(ValueError):
            decode_gaps([[1.0]], cfg)
        with pytest.raises(ValueError):
            decode_gaps([-1.0], cfg)


class TestMeasurement:
    def test_empty_flow_rejected(self):
        empty = FlowRecord(
            message=np.array([], dtype=int),
            observed_gaps=np.array([]),
            decoded=np.array([], dtype=int),
            events=np.array([], dtype=int),
            duration=0.0,
        )
        with pytest.raises(ValueError):
            measured_parameters(empty)

    def test_estimation_pipeline(self, rng):
        """End to end: flow -> parameters -> corrected capacity."""
        from repro.core.estimation import CapacityEstimator

        cfg = PacketFlowConfig([1.0, 2.0], loss_prob=0.2)
        msg = rng.integers(0, 2, 20_000)
        params = measured_parameters(transmit_flow(msg, cfg, rng))
        naive = cfg.synchronous_capacity()
        report = CapacityEstimator(1, physical_capacity=naive).estimate(params)
        assert report.corrected_physical == pytest.approx(0.8 * naive, rel=0.05)
